"""The seeded crash-consistency corpus (docs/CRASH.md).

Four workload families, each with a correct variant (the search must
prove it clean: zero surviving crash states) and one or more seeded
buggy variants (the search must find at least one surviving state and
blame the write that caused it):

* **journaled_append** — write-ahead journal protecting a db update:
  journal the new value, commit, then update in place.  Seeded bugs:
  no barriers at all, no barrier between entry and commit (reordered
  commit), and an fsync issued *before* the data it was meant to
  cover.
* **torn_update** — in-place update; the seeded bug writes across a
  block boundary in one ``write``, which a crash can tear.
* **rename_update** — atomic update via write-temp/fsync/rename; the
  seeded bug skips the directory-level ``sync`` so a crash can lose
  the rename (published name still points at the old data).
* **block_alloc** — allocator metadata commit; the seeded bug writes a
  bitmap that frees a block still referenced (double free), an
  inconsistency that is durable *without* anything being lost.

Every plan uses tiny 8-byte blocks so searches stay small enough for
exhaustive enumeration in tests (a few dozen leaves each).
"""

from __future__ import annotations

from repro.crashsim.model import ABSENT, CrashPlan
from repro.libos.files import O_CREAT, O_RDWR

_RW = O_RDWR
_CREAT_RW = O_CREAT | O_RDWR

# ----------------------------------------------------------------------
# journaled_append: write-ahead journal protecting /db
# ----------------------------------------------------------------------

_OLD = b"A" * 8
_NEW = b"B" * 8
_ENTRY = b"B" * 8                 # journal block 0: the value to apply
_COMMIT = b"C" + bytes(7)         # journal block 1: the commit mark
_TORN_COMMIT = bytes(8) + _COMMIT  # commit landed, entry lost

#: Journal states recovery can handle: absent / empty / entry only
#: (discard) / entry + commit (replay).  A commit without its entry is
#: unrecoverable.
_JOURNAL_OK = (ABSENT, b"", _ENTRY, _ENTRY + _COMMIT)

_JOURNAL_CONSISTENT = (
    (("/db", (_OLD, _NEW)), ("/journal", _JOURNAL_OK)),
)
_JOURNAL_FINAL = (
    (("/db", (_NEW,)), ("/journal", (_ENTRY + _COMMIT,))),
)

JOURNALED_APPEND_CLEAN = CrashPlan(
    name="journaled_append_clean",
    description="Journal entry, barrier, commit, barrier, apply, barrier.",
    files=(("/db", _OLD),),
    ops=(
        ("open", "/journal", _CREAT_RW),          # fd 3
        ("pwrite", 3, 0, _ENTRY, "journal-entry"),
        ("fsync", 3),
        ("pwrite", 3, 8, _COMMIT, "journal-commit"),
        ("fsync", 3),
        ("open", "/db", _RW),                     # fd 4
        ("pwrite", 4, 0, _NEW, "db-data"),
        ("fsync", 4),
    ),
    consistent=_JOURNAL_CONSISTENT,
    final=_JOURNAL_FINAL,
    expect_bug=False,
)

JOURNALED_APPEND_MISSING_FSYNC = CrashPlan(
    name="journaled_append_missing_fsync",
    description="Same protocol with every barrier removed: nothing is "
                "durable, so the final state can lose the db update with "
                "the journal already gone.",
    files=(("/db", _OLD),),
    ops=(
        ("open", "/journal", _CREAT_RW),
        ("pwrite", 3, 0, _ENTRY, "journal-entry"),
        ("pwrite", 3, 8, _COMMIT, "journal-commit"),
        ("open", "/db", _RW),
        ("pwrite", 4, 0, _NEW, "db-data"),
    ),
    consistent=_JOURNAL_CONSISTENT,
    final=_JOURNAL_FINAL,
    expect_bug=True,
    expected_blame=frozenset(("db-data",)),
    expected_fs=frozenset(("FS001", "FS004")),
)

JOURNALED_APPEND_REORDERED_COMMIT = CrashPlan(
    name="journaled_append_reordered_commit",
    description="No barrier between entry and commit: a crash can "
                "persist the commit mark while losing the entry it "
                "covers.",
    files=(("/db", _OLD),),
    ops=(
        ("open", "/journal", _CREAT_RW),
        ("pwrite", 3, 0, _ENTRY, "journal-entry"),
        ("pwrite", 3, 8, _COMMIT, "journal-commit"),
        ("fsync", 3),
        ("open", "/db", _RW),
        ("pwrite", 4, 0, _NEW, "db-data"),
        ("fsync", 4),
    ),
    consistent=_JOURNAL_CONSISTENT,
    final=_JOURNAL_FINAL,
    expect_bug=True,
    expected_blame=frozenset(("journal-entry",)),
    expected_fs=frozenset(("FS004",)),
)

JOURNALED_APPEND_FSYNC_BEFORE_DATA = CrashPlan(
    name="journaled_append_fsync_before_data",
    description="The journal fsync is issued before the entry and "
                "commit writes, so it covers neither: the journal is "
                "never durably complete.",
    files=(("/db", _OLD),),
    ops=(
        ("open", "/journal", _CREAT_RW),
        ("fsync", 3),                 # barrier too early: covers creation only
        ("pwrite", 3, 0, _ENTRY, "journal-entry"),
        ("pwrite", 3, 8, _COMMIT, "journal-commit"),
        ("open", "/db", _RW),
        ("pwrite", 4, 0, _NEW, "db-data"),
        ("fsync", 4),
    ),
    consistent=_JOURNAL_CONSISTENT,
    final=_JOURNAL_FINAL,
    expect_bug=True,
    expected_blame=frozenset(("journal-entry",)),
    expected_fs=frozenset(("FS001", "FS003", "FS004")),
)

# ----------------------------------------------------------------------
# torn_update: in-place update across a block boundary
# ----------------------------------------------------------------------

_OLD16 = b"A" * 16
_NEW16 = b"B" * 16
_HALF_NEW = b"A" * 8 + b"B" * 8

TORN_UPDATE_CLEAN = CrashPlan(
    name="torn_update_clean",
    description="Single-block in-place update: block writes are atomic, "
                "so old and new are the only reachable states.",
    files=(("/db", _OLD16),),
    ops=(
        ("open", "/db", _RW),
        ("pwrite", 3, 8, b"B" * 8, "db-data"),   # exactly block 1
        ("fsync", 3),
    ),
    consistent=((("/db", (_OLD16, _HALF_NEW)),),),
    final=((("/db", (_HALF_NEW,)),),),
    expect_bug=False,
)

TORN_UPDATE_MULTIBLOCK = CrashPlan(
    name="torn_update_multiblock",
    description="One 16-byte write spans two blocks; a crash between "
                "the block writebacks tears it.",
    files=(("/db", _OLD16),),
    ops=(
        ("open", "/db", _RW),
        ("pwrite", 3, 0, _NEW16, "db-data"),     # blocks 0 and 1
        ("fsync", 3),
    ),
    consistent=((("/db", (_OLD16, _NEW16)),),),
    final=((("/db", (_NEW16,)),),),
    expect_bug=True,
    expected_blame=frozenset(("db-data",)),
    expected_fs=frozenset(("FS004",)),
)

# ----------------------------------------------------------------------
# rename_update: atomic update via write-temp / fsync / rename
# ----------------------------------------------------------------------

_RENAME_CONSISTENT = (
    (("/cfg", (_OLD, _NEW)), ("/cfg.tmp", (ABSENT, b"", _NEW))),
)
_RENAME_FINAL = (
    (("/cfg", (_NEW,)),),
)

RENAME_UPDATE_CLEAN = CrashPlan(
    name="rename_update_clean",
    description="Write temp, fsync it, rename over the target, sync "
                "the directory: the published name always has old or "
                "new, never a partial file.",
    files=(("/cfg", _OLD),),
    ops=(
        ("open", "/cfg.tmp", _CREAT_RW),
        ("pwrite", 3, 0, _NEW, "tmp-data"),
        ("fsync", 3),
        ("rename", "/cfg.tmp", "/cfg", "rename"),
        ("sync",),
    ),
    consistent=_RENAME_CONSISTENT,
    final=_RENAME_FINAL,
    expect_bug=False,
)

RENAME_UPDATE_NO_SYNC = CrashPlan(
    name="rename_update_no_sync",
    description="The directory sync after the rename is missing: a "
                "crash can lose the rename, leaving the old contents "
                "published after the writer believed it was done.",
    files=(("/cfg", _OLD),),
    ops=(
        ("open", "/cfg.tmp", _CREAT_RW),
        ("pwrite", 3, 0, _NEW, "tmp-data"),
        ("fsync", 3),
        ("rename", "/cfg.tmp", "/cfg", "rename"),
    ),
    consistent=_RENAME_CONSISTENT,
    final=_RENAME_FINAL,
    expect_bug=True,
    expected_blame=frozenset(("rename",)),
    expected_fs=frozenset(("FS002",)),
)

# ----------------------------------------------------------------------
# block_alloc: allocator metadata commit (double free)
# ----------------------------------------------------------------------

#: /store layout: block 0 = [generation, live-bitmap, 0...], block 1 =
#: slot 1 contents, block 2 = slot 2 contents.
_META_V1 = bytes((1, 0b01)) + bytes(6)       # gen 1: slot 1 live
_META_V2 = bytes((2, 0b11)) + bytes(6)       # gen 2: slots 1 and 2 live
_META_V2_BAD = bytes((2, 0b10)) + bytes(6)   # gen 2: frees live slot 1
_SLOT1 = b"X" * 8
_SLOT2_EMPTY = bytes(8)
_SLOT2_NEW = b"N" * 8

_STORE_OK = (
    _META_V1 + _SLOT1 + _SLOT2_EMPTY,    # before anything
    _META_V1 + _SLOT1 + _SLOT2_NEW,      # data landed, not yet committed
    _META_V2 + _SLOT1 + _SLOT2_NEW,      # committed
)

BLOCK_ALLOC_CLEAN = CrashPlan(
    name="block_alloc_clean",
    description="Write the new slot, barrier, commit the bitmap that "
                "marks it live, barrier.",
    files=(("/store", _META_V1 + _SLOT1 + _SLOT2_EMPTY),),
    ops=(
        ("open", "/store", _RW),
        ("pwrite", 3, 16, _SLOT2_NEW, "slot-data"),
        ("fsync", 3),
        ("pwrite", 3, 0, _META_V2, "meta-commit"),
        ("fsync", 3),
    ),
    consistent=((("/store", _STORE_OK),),),
    final=((("/store", (_META_V2 + _SLOT1 + _SLOT2_NEW,)),),),
    expect_bug=False,
)

BLOCK_ALLOC_DOUBLE_FREE = CrashPlan(
    name="block_alloc_double_free",
    description="The committed bitmap frees slot 1 while it is still "
                "live — a double free that is inconsistent even though "
                "no write was lost (the bug is in what was written).",
    files=(("/store", _META_V1 + _SLOT1 + _SLOT2_EMPTY),),
    ops=(
        ("open", "/store", _RW),
        ("pwrite", 3, 16, _SLOT2_NEW, "slot-data"),
        ("fsync", 3),
        ("pwrite", 3, 0, _META_V2_BAD, "meta-commit"),
        ("fsync", 3),
    ),
    consistent=((("/store", _STORE_OK),),),
    final=((("/store", (_META_V2 + _SLOT1 + _SLOT2_NEW,)),),),
    expect_bug=True,
    expected_blame=frozenset(("meta-commit",)),
    expected_fs=frozenset(("FS005",)),
)

# ----------------------------------------------------------------------

#: Every corpus plan by name (the crashfind CLI's registry).
CORPUS: dict[str, CrashPlan] = {
    plan.name: plan
    for plan in (
        JOURNALED_APPEND_CLEAN,
        JOURNALED_APPEND_MISSING_FSYNC,
        JOURNALED_APPEND_REORDERED_COMMIT,
        JOURNALED_APPEND_FSYNC_BEFORE_DATA,
        TORN_UPDATE_CLEAN,
        TORN_UPDATE_MULTIBLOCK,
        RENAME_UPDATE_CLEAN,
        RENAME_UPDATE_NO_SYNC,
        BLOCK_ALLOC_CLEAN,
        BLOCK_ALLOC_DOUBLE_FREE,
    )
}

BUGGY_PLANS = tuple(p for p in CORPUS.values() if p.expect_bug)
CLEAN_PLANS = tuple(p for p in CORPUS.values() if not p.expect_bug)
