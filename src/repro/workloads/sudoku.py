"""Sudoku as a guest program.

A Figure 1-style "single path to solution" guest: guess a digit for each
blank cell, fail on any rule violation, return the solved grid.  Used by
the E7 strategy experiments and the examples.

Grids are strings of ``size*size`` characters, ``0`` for blanks, read
row-major.  ``box_rows``/``box_cols`` define the sub-box shape (2x2 for
4x4 grids, 3x3 for 9x9).
"""

from __future__ import annotations

import random

from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL, SYS_WRITE


def sudoku_guest(sys, grid: str, size: int = 4, box_rows: int = 2,
                 box_cols: int = 2) -> str:
    """Solve *grid* with system-level backtracking; returns the solution."""
    cells = [int(ch) for ch in grid]
    if len(cells) != size * size:
        raise ValueError("grid length does not match size")

    def conflicts(index: int, value: int) -> bool:
        r, c = divmod(index, size)
        for k in range(size):
            if cells[r * size + k] == value or cells[k * size + c] == value:
                return True
        box_r = (r // box_rows) * box_rows
        box_c = (c // box_cols) * box_cols
        for dr in range(box_rows):
            for dc in range(box_cols):
                if cells[(box_r + dr) * size + (box_c + dc)] == value:
                    return True
        return False

    for index in range(size * size):
        if cells[index] != 0:
            continue
        value = sys.guess(size) + 1
        if conflicts(index, value):
            sys.fail()
        cells[index] = value
    return "".join(str(v) for v in cells)


def sudoku_asm(grid: str, size: int = 4, box_rows: int = 2,
               box_cols: int = 2) -> str:
    """Generate the assembly guest that solves *grid*.

    Same search as :func:`sudoku_guest`, compiled for the machine engine:
    one ``sys_guess(size)`` per blank cell, with the row/column/box
    conflict checks unrolled against that cell's peer indices (the grid
    is known at generation time, so the peer sets are constants).  Each
    solved grid is printed and the path exits, so engines enumerate
    every completion of the puzzle.
    """
    cells = [int(ch) for ch in grid]
    if len(cells) != size * size:
        raise ValueError("grid length does not match size")
    if size > 9:
        raise ValueError("single-digit printing limits size to 9")

    def peers(index: int) -> list[int]:
        r, c = divmod(index, size)
        box_r = (r // box_rows) * box_rows
        box_c = (c // box_cols) * box_cols
        out = {r * size + k for k in range(size)}
        out |= {k * size + c for k in range(size)}
        out |= {
            (box_r + dr) * size + (box_c + dc)
            for dr in range(box_rows)
            for dc in range(box_cols)
        }
        out.discard(index)
        return sorted(out)

    body = []
    for index in range(size * size):
        if cells[index] != 0:
            continue
        checks = "\n".join(
            f"""
        movb  r9, [r8 + {p}]
        cmp   r9, r12
        je    fail"""
            for p in peers(index)
        )
        body.append(f"""
    cell_{index}:                       ; guess cells[{index}]
        mov   rax, {SYS_GUESS:#x}
        mov   rdi, {size}
        syscall
        mov   r12, rax
        inc   r12                   ; value = guess + 1
        mov   r8, cells
        {checks}
        movb  [r8 + {index}], r12""")

    ncells = size * size
    # A fully solved input has no guesses and thus no path to `fail`;
    # emitting the epilogue anyway would be provably unreachable code.
    fail_block = f"""
    fail:
        mov   rax, {SYS_GUESS_FAIL:#x}
        syscall
    """ if body else ""
    return f"""
    ; sudoku via system-level backtracking, {size}x{size}
    .data
    cells: .byte {', '.join(str(v) for v in cells)}
    buf:   .zero {ncells + 1}

    .text
    _start:
        {''.join(body)}

    solved:                         ; print the grid as digits
        mov   rbx, 0
        mov   r8, cells
        mov   r9, buf
    print_loop:
        cmp   rbx, {ncells}
        jge   print_done
        movb  r10, [r8 + rbx]
        add   r10, '0'
        movb  [r9 + rbx], r10
        inc   rbx
        jmp   print_loop
    print_done:
        mov   r10, 10               ; newline
        movb  [r9 + {ncells}], r10
        mov   rax, {SYS_WRITE}
        mov   rdi, 1
        mov   rsi, buf
        mov   rdx, {ncells + 1}
        syscall
        mov   rax, {SYS_EXIT}
        mov   rdi, 0
        syscall
    {fail_block}"""


def is_valid_solution(grid: str, size: int = 4, box_rows: int = 2,
                      box_cols: int = 2) -> bool:
    """Check a completed grid for row/column/box validity."""
    cells = [int(ch) for ch in grid]
    want = set(range(1, size + 1))
    for r in range(size):
        if {cells[r * size + c] for c in range(size)} != want:
            return False
    for c in range(size):
        if {cells[r * size + c] for r in range(size)} != want:
            return False
    for box_r in range(0, size, box_rows):
        for box_c in range(0, size, box_cols):
            box = {
                cells[(box_r + dr) * size + (box_c + dc)]
                for dr in range(box_rows)
                for dc in range(box_cols)
            }
            if box != want:
                return False
    return True


def make_puzzle(blanks: int, seed: int = 0, size: int = 4, box_rows: int = 2,
                box_cols: int = 2) -> str:
    """Generate a 4x4 puzzle by blanking cells of a shuffled solution."""
    rng = random.Random(seed)
    base = _solved_grid(size, box_rows, box_cols, rng)
    cells = list(base)
    for index in rng.sample(range(size * size), blanks):
        cells[index] = "0"
    return "".join(cells)


def _solved_grid(size: int, box_rows: int, box_cols: int,
                 rng: random.Random) -> str:
    """A random valid solved grid via the pattern construction."""
    digits = list(range(1, size + 1))
    rng.shuffle(digits)

    def pattern(r: int, c: int) -> int:
        return (box_cols * (r % box_rows) + r // box_rows + c) % size

    rows = []
    for r in range(size):
        rows.append("".join(str(digits[pattern(r, c)]) for c in range(size)))
    return "".join(rows)
