"""Random deterministic guest programs (differential-testing workload).

Generates structured random assembly guests: a handful of levels, each
optionally mutating guest memory, guessing with a random fan-out, and
pruning some branches based on the guess and the accumulated state.
Every generated program is deterministic given the guess outcomes, so
all engines (snapshot, replay, parallel, eager, ...) must produce the
same solution multiset — the differential-testing property used by the
engine equivalence tests.

A Python reference implementation (:func:`reference_solutions`) computes
the expected solution set independently of any engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.sysno import SYS_EXIT, SYS_GUESS, SYS_GUESS_FAIL

_CELLS = 8  # 64-bit state cells at DATA_BASE
_DATA = 0x60_0000


@dataclass
class _Level:
    fanout: int
    #: cell mutated before the guess: (index, multiplier, addend)
    pre: tuple[int, int, int]
    #: prune rule: fail if (guess + cell[idx]) % mod == rem
    prune: tuple[int, int, int]  # (cell index, mod, rem)
    #: cell absorbing the guess: cell[idx] = cell[idx]*3 + guess
    absorb: int


@dataclass
class RandomProgram:
    seed: int
    levels: list[_Level] = field(default_factory=list)

    @property
    def source(self) -> str:
        return generate_source(self)


def make_program(seed: int, max_depth: int = 4, max_fanout: int = 3) -> RandomProgram:
    """Build a random program description from *seed*."""
    rng = random.Random(seed)
    depth = rng.randint(1, max_depth)
    levels = []
    for _ in range(depth):
        levels.append(
            _Level(
                fanout=rng.randint(1, max_fanout),
                pre=(rng.randrange(_CELLS), rng.randint(1, 5), rng.randint(0, 9)),
                prune=(rng.randrange(_CELLS), rng.randint(2, 4),
                       rng.randint(0, 3)),
                absorb=rng.randrange(_CELLS),
            )
        )
    return RandomProgram(seed=seed, levels=levels)


def generate_source(program: RandomProgram) -> str:
    """Emit the program as assembly for the machine engines."""
    lines = [f"; random guest, seed={program.seed}", "mov r15, 0"]
    for i, level in enumerate(program.levels):
        pre_idx, mul, add = level.pre
        prune_idx, mod, rem = level.prune
        lines += [
            f"; --- level {i} ---",
            f"mov r8, {_DATA + 8 * pre_idx}",
            "mov r9, [r8]",
            f"imul r9, {mul}",
            f"add r9, {add}",
            "mov [r8], r9",
            f"mov rax, {SYS_GUESS:#x}",
            f"mov rdi, {level.fanout}",
            "syscall",
            "mov r12, rax",
            f"mov r8, {_DATA + 8 * prune_idx}",
            "mov r9, [r8]",
            "add r9, r12",
            f"mov r10, {mod}",
            "umod r9, r10",
            f"cmp r9, {rem}",
            f"jne level{i}_ok",
            f"mov rax, {SYS_GUESS_FAIL:#x}",
            "syscall",
            f"level{i}_ok:",
            f"mov r8, {_DATA + 8 * level.absorb}",
            "mov r9, [r8]",
            "imul r9, 3",
            "add r9, r12",
            "mov [r8], r9",
            "imul r15, 7",
            "add r15, r12",
        ]
    lines += [
        "mov rdi, r15",
        f"mov rax, {SYS_EXIT}",
        "syscall",
    ]
    return "\n".join(lines)


def reference_solutions(program: RandomProgram) -> list[tuple[tuple[int, ...], int]]:
    """Engine-free reference: enumerate (path, exit code) by recursion."""
    out: list[tuple[tuple[int, ...], int]] = []

    def walk(level_index: int, cells: tuple[int, ...], acc: int,
             path: tuple[int, ...]) -> None:
        if level_index == len(program.levels):
            # acc stays tiny (max fanout 3, depth 4), far below the
            # 32-bit exit-status truncation boundary.
            out.append((path, acc))
            return
        level = program.levels[level_index]
        pre_idx, mul, add = level.pre
        mutated = list(cells)
        mutated[pre_idx] = (mutated[pre_idx] * mul + add) & ((1 << 64) - 1)
        for guess in range(level.fanout):
            prune_idx, mod, rem = level.prune
            if (mutated[prune_idx] + guess) % mod == rem:
                continue  # pruned branch
            absorbed = list(mutated)
            absorbed[level.absorb] = (
                absorbed[level.absorb] * 3 + guess
            ) & ((1 << 64) - 1)
            walk(
                level_index + 1,
                tuple(absorbed),
                (acc * 7 + guess) & ((1 << 64) - 1),
                path + (guess,),
            )

    walk(0, (0,) * _CELLS, 0, ())
    return out
