"""Snapshot-tree bookkeeping (the vertices of the search graph).

The libOS "manages the internal structures of the search graph" (§4): the
partial candidates are snapshots, the unevaluated extensions are edges.
:class:`SnapshotTree` tracks the tree shape, supports pruning of exhausted
interior snapshots, and reports structural statistics used by the E2/E6
footprint experiments.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.obs import events
from repro.obs.trace import TRACER
from repro.snapshot.snapshot import Snapshot, SnapshotManager


class SnapshotTree:
    """The tree of live partial candidates for one search session."""

    def __init__(self, manager: SnapshotManager):
        self.manager = manager
        self.root: Optional[Snapshot] = None
        self._by_id: dict[int, Snapshot] = {}
        #: Reference counts of *pending work*: how many unevaluated
        #: extensions (or running evaluations) still need each snapshot.
        self._pins: dict[int, int] = {}
        #: Snapshots discarded by pin-exhaustion pruning (frontier
        #: hygiene, as opposed to explicit engine discards).
        self._pruned = manager.registry.counter("snapshot.pruned")

    # ------------------------------------------------------------------

    def add(self, snap: Snapshot) -> None:
        """Register a snapshot; the first one becomes the root."""
        if snap.sid in self._by_id:
            raise ValueError(f"snapshot {snap.sid} already in tree")
        self._by_id[snap.sid] = snap
        if self.root is None and snap.parent is None:
            self.root = snap

    def get(self, sid: int) -> Snapshot:
        """Look up a snapshot by id (KeyError if unknown)."""
        return self._by_id[sid]

    def __contains__(self, snap: Snapshot) -> bool:
        return snap.sid in self._by_id

    def __len__(self) -> int:
        return sum(1 for s in self._by_id.values() if s.alive)

    def walk(self) -> Iterator[Snapshot]:
        """Yield live snapshots in depth-first preorder from the root."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.alive:
                yield node
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------
    # Pin-based pruning
    # ------------------------------------------------------------------

    def pin(self, snap: Snapshot, count: int = 1) -> None:
        """Record *count* pending uses of *snap* (unevaluated extensions)."""
        self._pins[snap.sid] = self._pins.get(snap.sid, 0) + count

    def unpin(self, snap: Snapshot) -> None:
        """Release one pending use; prunes the snapshot when exhausted.

        A snapshot with zero pins and zero live children holds no future
        value for the search and is discarded, recursively unpinning its
        parent.  This keeps the live tree limited to the *frontier* plus
        its ancestors with remaining work — the pruning DESIGN.md §5 calls
        out.
        """
        sid = snap.sid
        remaining = self._pins.get(sid, 0) - 1
        if remaining > 0:
            self._pins[sid] = remaining
            return
        self._pins.pop(sid, None)
        self._maybe_prune(snap)

    def _maybe_prune(self, snap: Snapshot) -> None:
        while (
            snap is not None
            and snap.alive
            and not snap.children
            and self._pins.get(snap.sid, 0) == 0
        ):
            parent = snap.parent
            if TRACER.enabled:
                TRACER.emit(events.SNAPSHOT_PRUNE, sid=snap.sid, depth=snap.depth)
            self.manager.discard(snap)
            self._pruned.inc()
            del self._by_id[snap.sid]
            if snap is self.root:
                self.root = None
            snap = parent  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def live_count(self) -> int:
        return len(self)

    def max_depth(self) -> int:
        """Depth of the deepest live snapshot (root = 0; -1 if empty)."""
        return max((s.depth for s in self.walk()), default=-1)

    def total_private_pages(self) -> int:
        """Sum of unshared pages across live snapshots (delta encoding
        effectiveness: low numbers mean the tree shares well)."""
        return sum(s.private_pages() for s in self.walk())

    def apply(self, fn: Callable[[Snapshot], None]) -> None:
        """Apply *fn* to every live snapshot."""
        for snap in list(self.walk()):
            fn(snap)

    def to_dot(self, label: Optional[Callable[[Snapshot], str]] = None) -> str:
        """Render the live tree in Graphviz DOT format.

        *label* maps a snapshot to its node caption (default: sid, depth,
        recorded path metadata if the engine attached one).
        """

        def default_label(snap: Snapshot) -> str:
            path = snap.meta.get("path")
            suffix = f"\\npath={path}" if path is not None else ""
            return f"s{snap.sid} d{snap.depth}{suffix}"

        label = label or default_label
        lines = ["digraph snapshots {", "  node [shape=box];"]
        for snap in self.walk():
            pins = self._pins.get(snap.sid, 0)
            style = ' style="filled" fillcolor="lightyellow"' if pins else ""
            lines.append(f'  n{snap.sid} [label="{label(snap)}"{style}];')
            if snap.parent is not None and snap.parent.alive:
                lines.append(f"  n{snap.parent.sid} -> n{snap.sid};")
        lines.append("}")
        return "\n".join(lines)
