"""Lightweight immutable execution snapshots.

The paper's central abstraction: a snapshot is the combination of an
immutable register file, an immutable logical copy of an entire address
space, and immutable logical copies of open files (§3.1).  Snapshots form
a tree (each has an immutable relationship with its parent) and are
designed to be taken and restored at very high frequency.

* :class:`Snapshot` -- one immutable partial candidate.
* :class:`SnapshotManager` -- takes, restores and discards snapshots
  against a shared frame pool, with full accounting.
* :class:`SnapshotTree` -- the bookkeeping structure for the search graph
  of partial candidates.
"""

from repro.snapshot.snapshot import Snapshot, SnapshotManager, SnapshotStats
from repro.snapshot.tree import SnapshotTree

__all__ = ["Snapshot", "SnapshotManager", "SnapshotStats", "SnapshotTree"]
