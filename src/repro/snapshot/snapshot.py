"""Snapshot objects and the snapshot manager.

A :class:`Snapshot` owns a *frozen* logical copy of an address space (plus
register file and file-table copies).  Nothing ever writes through a
snapshot's address space, so its immutability is a protocol invariant on
top of the page-level copy-on-write machinery: executing extensions write
through their own forked space, and the first write to any shared page
copies it away from the snapshot.

Cost model (matching §4 of the paper):

* ``take``    -- O(1): page-table root sharing + register copy.
* ``restore`` -- O(1): fork the snapshot's space, copy registers, flush
  the TLB.  Subsequent writes pay per-page COW faults.
* ``discard`` -- O(private pages): releases only the frames the snapshot
  does not share with its relatives.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.core.errors import SnapshotDiscardedError
from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.obs import events
from repro.obs.registry import MetricsRegistry, metric_view
from repro.obs.trace import TRACER

_snapshot_ids = itertools.count(1)


class SnapshotStats:
    """Lifecycle counters for a :class:`SnapshotManager`.

    The counts live in a :class:`repro.obs.registry.MetricsRegistry`
    under ``snapshot.*``; the historical attributes (``taken``,
    ``restored``, ``discarded``, ``live``, ``peak_live``) are views over
    those metrics, so both spellings read and write the same numbers.
    ``live`` is a gauge whose own high-water mark backs ``peak_live``.
    """

    taken = metric_view("taken")
    restored = metric_view("restored")
    discarded = metric_view("discarded")
    live = metric_view("live")
    peak_live = metric_view("peak_live")

    def __init__(
        self,
        taken: int = 0,
        restored: int = 0,
        discarded: int = 0,
        live: int = 0,
        peak_live: int = 0,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "snapshot",
    ):
        self.registry = registry if registry is not None else MetricsRegistry(prefix)
        self._metrics = {
            "taken": self.registry.counter(f"{prefix}.taken"),
            "restored": self.registry.counter(f"{prefix}.restored"),
            "discarded": self.registry.counter(f"{prefix}.discarded"),
            "live": self.registry.gauge(f"{prefix}.live"),
            "peak_live": self.registry.gauge(f"{prefix}.peak_live"),
        }
        for metric in self._metrics.values():
            metric.reset()
        self.taken = taken
        self.restored = restored
        self.discarded = discarded
        self.live = live
        self.peak_live = peak_live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotStats(taken={self.taken}, restored={self.restored}, "
            f"discarded={self.discarded}, live={self.live}, "
            f"peak_live={self.peak_live})"
        )


class Snapshot:
    """One lightweight immutable execution snapshot (a partial candidate).

    Attributes
    ----------
    sid:
        Unique snapshot id (monotonically increasing).
    regs:
        An immutable register-file value (opaque to this layer; the CPU
        package supplies frozen register tuples, the pure-Python engine
        may store any picklable value or None).
    space:
        The frozen :class:`AddressSpace`.  Never written through.
    files:
        An immutable file-table value (opaque; forked via ``fork_cow`` if
        it provides one).
    parent:
        The parent snapshot, or None for a root.
    meta:
        Free-form metadata (e.g. the guess fan-out recorded at creation).
    """

    __slots__ = (
        "sid",
        "regs",
        "space",
        "files",
        "parent",
        "children",
        "depth",
        "meta",
        "alive",
    )

    def __init__(
        self,
        regs: Any,
        space: AddressSpace,
        files: Any = None,
        parent: Optional["Snapshot"] = None,
    ):
        self.sid = next(_snapshot_ids)
        self.regs = regs
        self.space = space
        self.files = files
        self.parent = parent
        self.children: list[Snapshot] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self.meta: dict = {}
        self.alive = True
        if parent is not None:
            parent.children.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"Snapshot(sid={self.sid}, depth={self.depth}, {state})"

    def private_pages(self) -> int:
        """Pages whose frame no other space or snapshot references."""
        return self.space.resident_private_pages()

    def delta_pages(self, other: "Snapshot") -> int:
        """Pages whose physical frame differs from *other*'s mapping.

        The paper's §3.1 notes the parent relationship "can be leveraged
        to encode the state in a space-efficient manner"; this measures
        that encoding directly: a child's cost over its parent is its
        delta, not its size.
        """
        other_frames = {vpn: pte.frame for vpn, pte in other.space.table.items()}
        delta = 0
        for vpn, pte in self.space.table.items():
            if other_frames.get(vpn) is not pte.frame:
                delta += 1
        delta += sum(1 for vpn in other_frames
                     if not self.space.table.is_mapped(vpn))
        return delta

    def ancestry(self) -> list["Snapshot"]:
        """Return the path from the root snapshot down to this one."""
        path: list[Snapshot] = []
        node: Optional[Snapshot] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path


class SnapshotManager:
    """Creates, restores and discards snapshots over a shared frame pool.

    One manager corresponds to one backtracking session: all snapshots it
    creates share the session's physical frame pool, so page sharing and
    footprint accounting are global across the snapshot tree.
    """

    def __init__(
        self,
        pool: Optional[FramePool] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.pool = pool if pool is not None else FramePool()
        self.registry = registry if registry is not None else MetricsRegistry("snapshot")
        self.stats = SnapshotStats(registry=self.registry)

    # ------------------------------------------------------------------

    def take(
        self,
        space: AddressSpace,
        regs: Any = None,
        files: Any = None,
        parent: Optional[Snapshot] = None,
    ) -> Snapshot:
        """Snapshot the current execution state.

        *space* remains the mutable, running address space; the snapshot
        receives an O(1) copy-on-write fork of it.  If *files* provides a
        ``fork_cow`` method it is forked the same way, otherwise it is
        stored as-is (callers pass immutable values).
        """
        if space.pool is not self.pool:
            raise ValueError("address space does not belong to this manager's pool")
        frozen_space = space.fork_cow(name=f"snap-of-{space.name}")
        frozen_files = files.fork_cow() if hasattr(files, "fork_cow") else files
        snap = Snapshot(regs, frozen_space, frozen_files, parent)
        self._note_take(snap)
        return snap

    def _note_take(self, snap: Snapshot) -> None:
        """Account one successful take (shared with the baselines)."""
        self.stats.taken += 1
        self.stats.live += 1
        self.stats.peak_live = max(self.stats.peak_live, self.stats.live)
        if TRACER.enabled:
            TRACER.emit(
                events.SNAPSHOT_TAKE,
                sid=snap.sid,
                parent=snap.parent.sid if snap.parent is not None else None,
                live=self.stats.live,
                depth=snap.depth,
            )

    def restore(self, snap: Snapshot) -> tuple[Any, AddressSpace, Any]:
        """Materialise a fresh mutable execution state from *snap*.

        Returns ``(regs, space, files)``: the register value (immutable —
        callers copy into their own mutable register file), a mutable COW
        fork of the snapshot's address space, and a fork of its file
        table.  The snapshot itself is untouched and may be restored any
        number of times.
        """
        if not snap.alive:
            raise SnapshotDiscardedError(snap.sid, "restore")
        space = snap.space.fork_cow(name=f"restore-{snap.sid}")
        files = (
            snap.files.fork_cow() if hasattr(snap.files, "fork_cow") else snap.files
        )
        self._note_restore(snap, space)
        return snap.regs, space, files

    def _note_restore(self, snap: Snapshot, space: AddressSpace) -> None:
        """Account one successful restore (shared with the baselines).

        The restore event records the fresh space's asid: later
        ``mem.cow_fault`` events carry the same asid, which is how a
        trace report attributes COW work back to the restore that
        incurred it.
        """
        self.stats.restored += 1
        if TRACER.enabled:
            TRACER.emit(
                events.SNAPSHOT_RESTORE, sid=snap.sid, asid=space.asid
            )

    def discard(self, snap: Snapshot) -> None:
        """Release *snap*'s resources.

        Only pages not shared with relatives are actually freed (the
        refcounted page table takes care of that).  Children keep working:
        they hold their own references to every frame they share.

        Discarding an already-discarded snapshot raises
        :class:`repro.core.errors.SnapshotDiscardedError`: a double
        discard means the caller's liveness bookkeeping is wrong, and
        silently ignoring it is how use-after-free bugs hide.  Callers
        that legitimately race lifecycle decisions check ``snap.alive``
        first (as :class:`repro.snapshot.tree.SnapshotTree` does).
        """
        if not snap.alive:
            raise SnapshotDiscardedError(snap.sid, "discard")
        private = snap.space.resident_private_pages() if TRACER.enabled else 0
        snap.alive = False
        snap.space.free()
        if hasattr(snap.files, "free"):
            snap.files.free()
        if snap.parent is not None and snap in snap.parent.children:
            snap.parent.children.remove(snap)
        self.stats.discarded += 1
        self.stats.live -= 1
        if TRACER.enabled:
            TRACER.emit(
                events.SNAPSHOT_DISCARD,
                sid=snap.sid,
                private_pages=private,
                live=self.stats.live,
            )

    def discard_subtree(self, snap: Snapshot) -> int:
        """Discard *snap* and every live descendant; returns the count."""
        count = 0
        stack = [snap]
        while stack:
            node = stack.pop()
            stack.extend(node.children)
            if node.alive:
                self.discard(node)
                count += 1
        return count

    # ------------------------------------------------------------------

    @property
    def live_snapshots(self) -> int:
        return self.stats.live

    def footprint_frames(self) -> int:
        """Total live frames in the shared pool (all snapshots + spaces)."""
        return self.pool.live_frames
