"""Externally-controlled exploration (§3.1's last strategy class).

"In addition, we can support externally controlled search strategies
where an external entity can generate new extension steps for any given
partial candidates, and schedule their execution."

:class:`InteractiveSearch` hands exactly that control to the caller: it
exposes the pending extension steps of the search graph and evaluates
only the ones the caller selects, in the caller's order.  Candidates the
caller never schedules stay live (their snapshots pinned) until the
session is closed — the engine mechanism is identical to the autonomous
engines; only the policy moved outside the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.machine import MachineEngine, _Candidate
from repro.core.result import SearchStats, Solution
from repro.cpu.assembler import Program
from repro.interpose.policy import InterpositionPolicy
from repro.libos.files import HostFS
from repro.search import ExternalStrategy


@dataclass(frozen=True)
class PendingExtension:
    """A schedulable extension step, as shown to the external entity."""

    seq: int
    path: tuple[int, ...]  # path of the parent partial candidate
    number: int
    depth: int
    hint: Optional[float]


@dataclass(frozen=True)
class StepOutcome:
    """What happened when a selected extension ran."""

    outcome: str  # "guess" | "exit" | "fail" | "kill"
    #: Extensions newly created by this evaluation (empty unless "guess").
    created: tuple[PendingExtension, ...] = ()
    #: The solution produced (only for "exit").
    solution: Optional[Solution] = None


class InteractiveSearch:
    """Step-driven system-level backtracking for machine guests.

    >>> from repro.core.sysno import SYS_GUESS, SYS_EXIT
    >>> src = f'''
    ...     mov rax, {SYS_GUESS:#x}
    ...     mov rdi, 2
    ...     syscall
    ...     mov rdi, rax
    ...     mov rax, {SYS_EXIT}
    ...     syscall
    ... '''
    >>> search = InteractiveSearch(src)
    >>> [p.number for p in search.pending()]
    [0, 1]
    >>> search.run(search.pending()[1].seq).solution.value[0]
    1
    """

    def __init__(
        self,
        guest: Union[str, Program],
        policy: Optional[InterpositionPolicy] = None,
        hostfs: Optional[HostFS] = None,
        max_steps_per_extension: int = 5_000_000,
    ):
        self._external = ExternalStrategy()
        self._engine = MachineEngine(
            strategy=self._external,
            policy=policy,
            hostfs=hostfs,
            max_steps_per_extension=max_steps_per_extension,
        )
        # The external entity owns scheduling; guests may still call
        # sys_guess_strategy (it succeeds) but it does not take over.
        self._engine.allow_guest_strategy = False
        self._stats = SearchStats()
        self.solutions: list[Solution] = []
        self._closed = False
        # Boot: run the root path to its first boundary.
        program = guest
        state, regs = self._engine.libos.load(
            program if isinstance(program, Program)
            else __import__("repro.cpu", fromlist=["assemble"]).assemble(program),
            self._engine.pool,
        )
        self._engine.vcpu.regs.load(regs.frozen())
        from repro.core.machine import _Pending

        self._stats.evaluations += 1
        self._engine._run_pending(_Pending(state, (), None), self._stats,
                                  self.solutions)

    # ------------------------------------------------------------------

    def pending(self) -> list[PendingExtension]:
        """The unevaluated extension steps, oldest first."""
        views = []
        for seq in sorted(self._external.pending):
            ext = self._external.pending[seq]
            cand: _Candidate = ext.candidate
            views.append(
                PendingExtension(
                    seq=seq, path=cand.path, number=ext.number,
                    depth=ext.depth, hint=ext.hint,
                )
            )
        return views

    def run(self, seq: int) -> StepOutcome:
        """Evaluate the pending extension with sequence number *seq*.

        Raises :class:`~repro.core.errors.InputExhaustedError` when
        *seq* names no pending extension (already evaluated, or never
        existed); the session stays usable afterwards.
        """
        if self._closed:
            raise RuntimeError("search session is closed")
        before = {p.seq for p in self.pending()}
        before_solutions = len(self.solutions)
        self._external.select(seq)
        ext = self._external.next()
        assert ext is not None
        self._stats.evaluations += 1
        outcome = self._engine._run_pending(
            self._engine._start_extension(ext), self._stats, self.solutions
        )
        created = tuple(
            p for p in self.pending() if p.seq not in before and p.seq != seq
        )
        solution = (
            self.solutions[-1] if len(self.solutions) > before_solutions else None
        )
        return StepOutcome(outcome=outcome, created=created, solution=solution)

    def run_all(self, depth_first: bool = True) -> list[Solution]:
        """Drive the rest of the search automatically (for convenience)."""
        while True:
            pending = self.pending()
            if not pending:
                break
            choice = pending[-1] if depth_first else pending[0]
            self.run(choice.seq)
        return self.solutions

    @property
    def stats(self) -> SearchStats:
        return self._stats

    def close(self) -> None:
        """Discard every live snapshot and end the session."""
        if self._closed:
            return
        self._closed = True
        # Unpin by draining: each parked extension holds one pin.
        for seq in sorted(self._external.pending):
            ext = self._external.pending[seq]
            cand: _Candidate = ext.candidate
            self._engine.tree.unpin(cand.snapshot)
        self._external.pending.clear()
        self._external.drain()

    def __enter__(self) -> "InteractiveSearch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
