"""System-call numbers for guest binaries.

The POSIX-ish numbers follow the Linux x86-64 convention the paper's
Dune-based libOS would interpose on; the guess calls live in a private
range (0x1000+) as new system calls added by the backtracking libOS
(§3.1, "New system calls").
"""

# POSIX-ish calls the libOS interposes on (Linux x86-64 numbering).
SYS_READ = 0
SYS_WRITE = 1
SYS_OPEN = 2
SYS_CLOSE = 3
SYS_LSEEK = 8
SYS_MMAP = 9
SYS_MUNMAP = 11
SYS_BRK = 12
SYS_EXIT = 60
#: Persistence barriers over the versioned file layer (docs/CRASH.md).
#: fsync is a per-inode barrier (data blocks + creation record); sync is
#: a global barrier that also flushes renames.
SYS_FSYNC = 74
SYS_RENAME = 82
SYS_SYNC = 162
#: Nondeterministic host services (Linux numbering).  Interposed by the
#: libOS and routed through the record/replay recorder when one is
#: attached; without a recorder they read the live host clock/entropy.
SYS_TIME = 201          # clock_gettime-ish: wall-clock ns in rax
SYS_GETRANDOM = 318     # fills rdi..rdi+rsi with entropy

# New system calls introduced by the paper (§3.1).
SYS_GUESS = 0x1000
SYS_GUESS_FAIL = 0x1001
SYS_GUESS_STRATEGY = 0x1002
#: Extended guess: like SYS_GUESS but with a pointer to a vector of
#: goal-distance hints for informed strategies (A*, SM-A*).
SYS_GUESS_HINT = 0x1003

#: Crash-simulation calls (0x1100+): enumerate and materialise the legal
#: on-disk states after a crash, so a guest can fork over them with
#: sys_guess and run its recovery/checker code against each image
#: (docs/CRASH.md).  select(c) prepares a crash at log index c and
#: returns the number of persistence dimensions; opts(i) the number of
#: legal choices for dimension i; set(i, k) fixes one; commit()
#: rebases the file table onto the chosen image.
SYS_CRASH_SELECT = 0x1100
SYS_CRASH_OPTS = 0x1101
SYS_CRASH_SET = 0x1102
SYS_CRASH_COMMIT = 0x1103

#: Human-readable names per syscall number (trace events and reports).
SYSCALL_NAMES = {
    SYS_READ: "read",
    SYS_WRITE: "write",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_LSEEK: "lseek",
    SYS_MMAP: "mmap",
    SYS_MUNMAP: "munmap",
    SYS_BRK: "brk",
    SYS_EXIT: "exit",
    SYS_FSYNC: "fsync",
    SYS_RENAME: "rename",
    SYS_SYNC: "sync",
    SYS_TIME: "time",
    SYS_GETRANDOM: "getrandom",
    SYS_GUESS: "guess",
    SYS_GUESS_FAIL: "guess_fail",
    SYS_GUESS_STRATEGY: "guess_strategy",
    SYS_GUESS_HINT: "guess_hint",
    SYS_CRASH_SELECT: "crash_select",
    SYS_CRASH_OPTS: "crash_opts",
    SYS_CRASH_SET: "crash_set",
    SYS_CRASH_COMMIT: "crash_commit",
}


def syscall_name(number: int) -> str:
    """Name for *number*, or ``sys_<n>`` for unknown calls."""
    return SYSCALL_NAMES.get(number, f"sys_{number}")


#: Strategy ids for SYS_GUESS_STRATEGY's argument (guest-visible ABI).
STRATEGY_IDS = {
    "dfs": 0,
    "bfs": 1,
    "astar": 2,
    "sma": 3,
    "best": 4,
    "random": 5,
    "coverage": 6,
    "external": 7,
}

#: Reverse map: id -> registry name.
STRATEGY_NAMES = {v: k for k, v in STRATEGY_IDS.items()}
