"""Search results and exploration statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.registry import MetricsRegistry, metric_view


@dataclass(frozen=True)
class Solution:
    """One completed path through the search space.

    Attributes
    ----------
    value:
        What the guest produced: the return value for Python guests, the
        (exit_code, stdout) pair for machine guests.
    path:
        The sequence of guess outcomes that leads to this solution — the
        "single path to solution" the guest appeared to execute.
    depth:
        Number of guesses along the path.
    """

    value: Any
    path: tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.path)


class SearchStats:
    """Counters describing one exploration run.

    Registry-backed under ``search.*``; attributes are live views over
    the registry metrics (see :mod:`repro.obs.registry`), so engines can
    keep incrementing ``stats.fails`` while reports enumerate the same
    numbers as ``search.fails``.

    Fields:

    * ``candidates`` — partial candidates created (snapshots taken /
      choice points found).
    * ``evaluations`` — candidate extension steps evaluated.
    * ``fails`` — extension steps that ended in ``sys_guess_fail``.
    * ``completions`` — extension steps that produced a solution.
    * ``replayed_decisions`` — for the replay engine: guesses answered
      from recorded prefixes (pure re-execution overhead; the machine
      engine keeps this at 0).
    * ``kills`` — extension steps terminated by the libOS (runaway step
      budgets, unhandled faults) rather than by the guest itself.
    * ``peak_frontier`` — peak unevaluated extensions in the frontier.
    * ``extra`` — engine-specific extras dict (VM exits, pages copied…).
    """

    candidates = metric_view("candidates")
    evaluations = metric_view("evaluations")
    fails = metric_view("fails")
    completions = metric_view("completions")
    replayed_decisions = metric_view("replayed_decisions")
    kills = metric_view("kills")
    peak_frontier = metric_view("peak_frontier")

    def __init__(
        self,
        candidates: int = 0,
        evaluations: int = 0,
        fails: int = 0,
        completions: int = 0,
        replayed_decisions: int = 0,
        kills: int = 0,
        peak_frontier: int = 0,
        extra: Optional[dict] = None,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "search",
    ):
        self.registry = registry if registry is not None else MetricsRegistry(prefix)
        self._metrics = {
            "candidates": self.registry.counter(f"{prefix}.candidates"),
            "evaluations": self.registry.counter(f"{prefix}.evaluations"),
            "fails": self.registry.counter(f"{prefix}.fails"),
            "completions": self.registry.counter(f"{prefix}.completions"),
            "replayed_decisions": self.registry.counter(
                f"{prefix}.replayed_decisions"
            ),
            "kills": self.registry.counter(f"{prefix}.kills"),
            "peak_frontier": self.registry.gauge(f"{prefix}.peak_frontier"),
        }
        for metric in self._metrics.values():
            metric.reset()
        self.candidates = candidates
        self.evaluations = evaluations
        self.fails = fails
        self.completions = completions
        self.replayed_decisions = replayed_decisions
        self.kills = kills
        self.peak_frontier = peak_frontier
        self.extra: dict = extra if extra is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchStats(candidates={self.candidates}, "
            f"evaluations={self.evaluations}, fails={self.fails}, "
            f"completions={self.completions}, "
            f"peak_frontier={self.peak_frontier})"
        )


@dataclass
class SearchResult:
    """The outcome of exploring a guest program's search space."""

    solutions: list[Solution]
    stats: SearchStats
    strategy: str
    #: True if the frontier emptied; False if a budget stopped the search.
    exhausted: bool
    #: Why the search stopped early, if it did.
    stop_reason: Optional[str] = None

    @property
    def solution_values(self) -> list[Any]:
        """Just the guest-produced values, in discovery order."""
        return [s.value for s in self.solutions]

    @property
    def first(self) -> Optional[Solution]:
        """The first solution found, or None."""
        return self.solutions[0] if self.solutions else None

    def __bool__(self) -> bool:
        return bool(self.solutions)

    def summary(self) -> str:
        """One-line human-readable description."""
        s = self.stats
        return (
            f"{len(self.solutions)} solution(s) via {self.strategy}: "
            f"{s.candidates} candidates, {s.evaluations} evaluations, "
            f"{s.fails} fails"
            + ("" if self.exhausted else f" (stopped: {self.stop_reason})")
        )
