"""Search results and exploration statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Solution:
    """One completed path through the search space.

    Attributes
    ----------
    value:
        What the guest produced: the return value for Python guests, the
        (exit_code, stdout) pair for machine guests.
    path:
        The sequence of guess outcomes that leads to this solution — the
        "single path to solution" the guest appeared to execute.
    depth:
        Number of guesses along the path.
    """

    value: Any
    path: tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.path)


@dataclass
class SearchStats:
    """Counters describing one exploration run."""

    #: Partial candidates created (snapshots taken / choice points found).
    candidates: int = 0
    #: Candidate extension steps evaluated.
    evaluations: int = 0
    #: Extension steps that ended in ``sys_guess_fail``.
    fails: int = 0
    #: Extension steps that completed (produced a solution).
    completions: int = 0
    #: For the replay engine: guesses answered from recorded prefixes
    #: (pure re-execution overhead; the machine engine keeps this at 0).
    replayed_decisions: int = 0
    #: Peak number of unevaluated extensions in the strategy frontier.
    peak_frontier: int = 0
    #: Engine-specific extras (VM exits, pages copied, ...).
    extra: dict = field(default_factory=dict)


@dataclass
class SearchResult:
    """The outcome of exploring a guest program's search space."""

    solutions: list[Solution]
    stats: SearchStats
    strategy: str
    #: True if the frontier emptied; False if a budget stopped the search.
    exhausted: bool
    #: Why the search stopped early, if it did.
    stop_reason: Optional[str] = None

    @property
    def solution_values(self) -> list[Any]:
        """Just the guest-produced values, in discovery order."""
        return [s.value for s in self.solutions]

    @property
    def first(self) -> Optional[Solution]:
        """The first solution found, or None."""
        return self.solutions[0] if self.solutions else None

    def __bool__(self) -> bool:
        return bool(self.solutions)

    def summary(self) -> str:
        """One-line human-readable description."""
        s = self.stats
        return (
            f"{len(self.solutions)} solution(s) via {self.strategy}: "
            f"{s.candidates} candidates, {s.evaluations} evaluations, "
            f"{s.fails} fails"
            + ("" if self.exhausted else f" (stopped: {self.stop_reason})")
        )
