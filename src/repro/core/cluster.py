"""Process-parallel exploration with replay-based rehydration.

§3 contrasts sequential DFS with "a parallel depth-first-search strategy
[that] might simply fork without waiting", and Figure 2 draws one
extension-evaluation box per CPU core.  :class:`ProcessParallelEngine`
realises that architecture with real OS processes:

* a **coordinator** owns a frontier of :class:`~repro.search.shard.PrefixTask`
  subtree roots — decision prefixes, not snapshots, because page tables
  must never cross a process boundary;
* N **workers**, each owning a full engine stack (libOS, frame pool,
  snapshot manager, vCPU), rehydrate an assigned task by deterministically
  replaying its guess prefix from the program start (the record/replay
  lever of user-space replay systems), then explore the whole subtree
  under it *locally* with lightweight snapshots — amortizing the replay
  cost over every extension inside the subtree;
* when a worker exceeds its depth or step budget it converts its local
  snapshot frontier back into prefix tasks and **spills** them to the
  coordinator, which shards them to idle workers.

Robustness: a per-task wall-clock timeout, worker-crash detection with
bounded retry of the lost tasks, and graceful shutdown.  Observability:
per-worker registry snapshots are merged into the coordinator's registry
(:meth:`~repro.obs.registry.MetricsRegistry.merge_state`), and the
coordinator emits ``parallel.*`` trace events.

Within one worker the semantics are exactly :class:`MachineEngine`'s;
across workers the solution *set* is identical while discovery order is
nondeterministic — the differential suite pins this down.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import time
import warnings
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Optional, Union

from repro.core.errors import GuessError, ReplayDivergenceError
from repro.core.result import SearchResult, SearchStats, Solution
from repro.cpu.assembler import Program, assemble
from repro.libos.libos import ExecState, LibOS
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)
from repro.mem.frames import FramePool
from repro.obs import events as _events
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TRACER as _TRACER, MemorySink
from repro.search import get_strategy
from repro.search.extension import Extension
from repro.search.shard import PrefixTask, TaskFrontier, spill_extension
from repro.snapshot.snapshot import Snapshot, SnapshotManager
from repro.snapshot.tree import SnapshotTree
from repro.vmm.vcpu import VCpu


#: Root span ids for cluster runs: every run gets a fresh id, every task
#: of the run carries it, so multiple runs recorded into one trace file
#: stay separable.
_run_spans = itertools.count(1)


class WorkerError(RuntimeError):
    """A worker process reported an unrecoverable guest/engine error."""

    def __init__(self, worker_id: int, detail: str):
        self.worker_id = worker_id
        self.detail = detail
        super().__init__(f"worker {worker_id}: {detail}")


@dataclass(frozen=True)
class ClusterConfig:
    """Picklable knobs shipped to every worker process."""

    strategy: str = "dfs"
    max_steps_per_extension: int = 5_000_000
    #: Spill choice points deeper than this many guesses below the task
    #: root (None = no depth limit; rely on the step budget).
    subtree_depth: Optional[int] = None
    #: Guest instructions of *new* exploration per task before the local
    #: frontier is spilled back (replay of the prefix is not charged).
    task_step_budget: Optional[int] = 25_000
    #: Test hook, called as ``fault_hook(task)`` in the worker before
    #: each task — fault-injection tests crash or stall here.
    fault_hook: Optional[Callable[[PrefixTask], None]] = None
    #: Workers buffer their trace events per task and ship the segment
    #: back with the result, so the coordinator can merge one causally
    #: ordered trace.  Off by default; the engine switches it on for a
    #: run whenever the coordinator's tracer has a sink attached.
    collect_trace: bool = False
    #: ``(pc, lint_id)`` sites the static analyzer flagged as sources of
    #: nondeterminism; ``None`` when the engine ran with ``verify="off"``
    #: (no analysis), ``()`` when the program was certified.  Workers
    #: cite the matching verdict when a replayed prefix diverges at
    #: runtime.
    nondet_sites: Optional[tuple[tuple[int, str], ...]] = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _Candidate:
    """Worker-local partial candidate: snapshot + full path + fanouts.

    Unlike :class:`MachineEngine`'s candidate, this one keeps the fanout
    chain so any unevaluated extension can be converted back into a
    replayable :class:`PrefixTask` at spill time — local snapshot state
    is always *rebuildable*, which is what makes it safe to throw away.
    """

    __slots__ = ("snapshot", "path", "fanouts", "n", "console")

    def __init__(self, snapshot: Snapshot, path: tuple[int, ...],
                 fanouts: tuple[int, ...], n: int, console):
        self.snapshot = snapshot
        self.path = path
        self.fanouts = fanouts
        self.n = n
        self.console = console


@dataclass
class _Pending:
    """The extension step currently executing in the worker."""

    state: ExecState
    path: tuple[int, ...]
    fanouts: tuple[int, ...]
    parent: Optional[_Candidate]
    steps_used: int = 0
    #: Guest instructions of ``steps_used`` spent replaying the task
    #: prefix (the rest is fresh exploration; the split is what the
    #: profiler charges as rehydration overhead).
    replay_steps: int = 0
    #: Guess outcomes still to feed from the task prefix (replay mode
    #: while nonzero remain).
    replay_pos: int = 0


class _SubtreeWorker:
    """One worker's engine stack: rehydrate a task, explore its subtree.

    Created once per worker process; :meth:`explore` is called per task.
    All snapshot state is torn down at the end of every task, so frames
    never accumulate across tasks and the registry gauges return to
    zero between result messages (which is what makes delta-shipping the
    registry sound).
    """

    def __init__(self, program: Program, config: ClusterConfig):
        self.program = program
        self.config = config
        self.libos = LibOS()
        self.pool = FramePool()
        self.registry = MetricsRegistry("cluster-worker")
        self.manager = SnapshotManager(self.pool, registry=self.registry)
        self.vcpu = VCpu()
        self.stats = SearchStats(registry=self.registry)
        self._steps_counter = self.registry.counter("parallel.guest_steps")
        self._replay_counter = self.registry.counter("parallel.replay_steps")
        self._task_timer = self.registry.timer("parallel.task_time")
        # FramePool keeps its stats on the pool object, not in a registry;
        # ship per-task deltas so the coordinator sees copy totals.
        self._frames_copied = self.registry.counter("mem.frames_copied")
        self._last_copied = 0

    def _divergence_verdict(self, pc: int) -> Optional[str]:
        """The static analyzer's take on a replay divergence at *pc*."""
        sites = self.config.nondet_sites
        if sites is None:
            return None  # engine ran with verify="off": no analysis
        for site_pc, lint_id in sites:
            if site_pc == pc:
                return (
                    f"{lint_id} flagged this syscall site as "
                    "nondeterministic at analysis time"
                )
        if sites:
            listed = ", ".join(f"{lid}@{spc:#x}" for spc, lid in sites[:4])
            return f"program was not certified deterministic ({listed})"
        return (
            "program was certified deterministic — divergence indicates "
            "an engine or snapshot bug, not guest nondeterminism"
        )

    # -- public entry point --------------------------------------------

    def explore(self, task: PrefixTask, solutions_budget: Optional[int]):
        """Run one task to completion; returns (solutions, spilled).

        ``solutions`` is a list of ``(path, status, text)`` triples;
        ``spilled`` the prefix tasks for subtrees this worker did not
        enter (budget exceedances and solution-budget early stops).
        """
        with self._task_timer.time():
            return self._explore(task, solutions_budget)

    def _explore(self, task: PrefixTask, solutions_budget: Optional[int]):
        cfg = self.config
        strategy = get_strategy(cfg.strategy)
        tree = SnapshotTree(self.manager)
        solutions: list[tuple[tuple[int, ...], int, str]] = []
        spilled: list[PrefixTask] = []
        explore_steps = 0

        state, regs = self.libos.load(self.program, self.pool)
        self.vcpu.regs.load(regs.frozen())
        self.stats.evaluations += 1
        pending = _Pending(state, task.prefix, task.fanouts, None)

        def over_budget() -> bool:
            return (
                cfg.task_step_budget is not None
                and explore_steps >= cfg.task_step_budget
            )

        def finish(pending: _Pending) -> None:
            pending.state.free()
            if pending.parent is not None:
                tree.unpin(pending.parent.snapshot)

        def handle_guess(action: GuessAction, pending: _Pending) -> None:
            n = action.n
            if action.hints is not None and len(action.hints) != n:
                raise GuessError("hint vector length does not match fan-out")
            if n == 0:
                self.stats.fails += 1
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_FAIL, depth=len(pending.path),
                        path=list(pending.path),
                        steps=pending.steps_used - pending.replay_steps,
                        replay_steps=pending.replay_steps,
                    )
                finish(pending)
                return
            hints = tuple(action.hints) if action.hints is not None else None
            local_depth = len(pending.path) - task.depth
            if (
                (cfg.subtree_depth is not None
                 and local_depth >= cfg.subtree_depth)
                or over_budget()
                or (solutions_budget is not None
                    and len(solutions) >= solutions_budget)
            ):
                # Outside this task's budget: hand the whole choice point
                # back to the coordinator as replayable subtree roots.
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_SPILL, depth=len(pending.path), n=n,
                        path=list(pending.path),
                        steps=pending.steps_used - pending.replay_steps,
                        replay_steps=pending.replay_steps,
                    )
                spilled.extend(
                    spill_extension(pending.path, pending.fanouts, n, hints,
                                    span=task.span)
                )
                finish(pending)
                return
            parent_snap = pending.parent.snapshot if pending.parent else None
            snap = self.manager.take(
                pending.state.space,
                regs=self.vcpu.regs.frozen(),
                files=pending.state.files,
                parent=parent_snap if parent_snap and parent_snap.alive else None,
            )
            cand = _Candidate(snap, pending.path, pending.fanouts, n,
                              pending.state.console.fork_cow())
            tree.add(snap)
            tree.pin(snap, n)
            self.stats.candidates += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_GUESS, n=n, depth=len(pending.path),
                    sid=snap.sid, path=list(pending.path),
                    steps=pending.steps_used - pending.replay_steps,
                    replay_steps=pending.replay_steps,
                )
            strategy.add(
                Extension(
                    cand,
                    number=i,
                    hint=hints[i] if hints is not None else None,
                    depth=len(pending.path),
                )
                for i in range(n)
            )
            finish(pending)

        def run_pending(pending: _Pending) -> None:
            nonlocal explore_steps
            prefix = task.prefix
            replaying = pending.replay_pos < len(prefix)
            while True:
                budget = self.config.max_steps_per_extension - pending.steps_used
                self.vcpu.attach(pending.state.space)
                exit_event = self.vcpu.enter(max_steps=max(budget, 1))
                pending.steps_used += exit_event.steps
                if replaying:
                    self._replay_counter.inc(exit_event.steps)
                    pending.replay_steps += exit_event.steps
                else:
                    self._steps_counter.inc(exit_event.steps)
                    explore_steps += exit_event.steps
                action = self.libos.handle_exit(exit_event, self.vcpu,
                                                pending.state)
                if isinstance(action, ContinueAction):
                    if pending.steps_used >= self.config.max_steps_per_extension:
                        self.stats.kills += 1
                        if _TRACER.enabled:
                            _TRACER.emit(
                                _events.SEARCH_KILL, depth=len(pending.path),
                                path=list(pending.path),
                                steps=pending.steps_used - pending.replay_steps,
                                replay_steps=pending.replay_steps,
                            )
                        finish(pending)
                        return
                    continue
                if isinstance(action, StrategyAction):
                    # Guest strategy selection is coordinator policy in
                    # the cluster engine; acknowledge and ignore.
                    continue
                if isinstance(action, GuessAction):
                    if pending.replay_pos < len(prefix):
                        pos = pending.replay_pos
                        if action.n != pending.fanouts[pos]:
                            # rip already points past the 1-byte SYSCALL.
                            pc = self.vcpu.regs.rip - 1
                            raise ReplayDivergenceError(
                                "nondeterministic guest: replayed guess "
                                f"had fan-out {pending.fanouts[pos]}, "
                                f"now {action.n}",
                                prefix=prefix,
                                position=pos,
                                pc=pc,
                                expected=pending.fanouts[pos],
                                actual=action.n,
                                verdict=self._divergence_verdict(pc),
                            )
                        self.vcpu.regs.rax = prefix[pos]
                        pending.replay_pos = pos + 1
                        self.stats.replayed_decisions += 1
                        replaying = pending.replay_pos < len(prefix)
                        continue
                    handle_guess(action, pending)
                    return
                if pending.replay_pos < len(prefix):
                    pc = self.vcpu.regs.rip - 1
                    raise ReplayDivergenceError(
                        "nondeterministic guest: path ended during "
                        f"replay of a prefix of length {len(prefix)}",
                        prefix=prefix,
                        position=pending.replay_pos,
                        pc=pc,
                        verdict=self._divergence_verdict(pc),
                    )
                if isinstance(action, GuessFailAction):
                    self.stats.fails += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_FAIL, depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    finish(pending)
                    return
                if isinstance(action, ExitAction):
                    self.stats.completions += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_SOLUTION,
                            depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    solutions.append(
                        (pending.path, action.status,
                         pending.state.console.text)
                    )
                    finish(pending)
                    return
                if isinstance(action, KillAction):
                    self.stats.kills += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_KILL, depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    finish(pending)
                    return
                raise AssertionError(f"unhandled action {action!r}")  # pragma: no cover

        run_pending(pending)
        while True:
            if (
                solutions_budget is not None
                and len(solutions) >= solutions_budget
            ) or over_budget():
                break
            ext = strategy.next()
            if ext is None:
                break
            self.stats.evaluations += 1
            cand: _Candidate = ext.candidate
            regs2, space, files = self.manager.restore(cand.snapshot)
            self.vcpu.regs.load(regs2)
            self.vcpu.regs.rax = ext.number
            run_pending(
                _Pending(
                    ExecState(space, files, cand.console.fork_cow()),
                    cand.path + (ext.number,),
                    cand.fanouts + (cand.n,),
                    cand,
                    replay_pos=len(task.prefix),
                )
            )

        # Convert whatever local frontier remains into replayable tasks
        # and unwind its pins so the snapshot tree (and its frames) die.
        while True:
            ext = strategy.next()
            if ext is None:
                break
            cand = ext.candidate
            spilled.append(
                PrefixTask(
                    prefix=cand.path + (ext.number,),
                    fanouts=cand.fanouts + (cand.n,),
                    hint=ext.hint,
                    span=task.span,
                )
            )
            tree.unpin(cand.snapshot)
        # Worker-local frontier peaks are per-task numbers; summing them
        # through the gauge merge would be meaningless, so the engine's
        # peak_frontier reports the coordinator task frontier instead.
        self._frames_copied.inc(self.pool.stats.copied - self._last_copied)
        self._last_copied = self.pool.stats.copied
        return solutions, spilled


def _worker_main(worker_id: int, conn, program: Program,
                 config: ClusterConfig) -> None:
    """Worker process body: serve task batches until the poison pill."""
    # Under the ``fork`` start method this process inherited the
    # coordinator's tracer sinks (including any open trace file); writing
    # through them from here would interleave with the coordinator, so
    # forget them and collect into a private buffer instead.
    _TRACER.reset_sinks()
    _TRACER.set_context(worker=worker_id)
    collector = _TRACER.attach(MemorySink()) if config.collect_trace else None
    worker = _SubtreeWorker(program, config)
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            batch, solutions_budget = msg
            for task in batch:
                if config.fault_hook is not None:
                    config.fault_hook(task)
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_BEGIN, worker=worker_id,
                        task=list(task.prefix), depth=task.depth,
                        span=task.span, attempt=task.attempt,
                    )
                try:
                    solutions, spilled = worker.explore(task, solutions_budget)
                except Exception as exc:  # engine/guest error: report and die
                    conn.send(("error", worker_id,
                               f"{type(exc).__name__}: {exc}"))
                    return
                if solutions_budget is not None:
                    solutions_budget = max(
                        0, solutions_budget - len(solutions)
                    )
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_END, worker=worker_id,
                        task=list(task.prefix), span=task.span,
                        solutions=len(solutions), spilled=len(spilled),
                        explore_steps=worker._steps_counter.value,
                        replay_steps=worker._replay_counter.value,
                        task_s=worker._task_timer.total_s,
                    )
                state = worker.registry.state_dict()
                worker.registry.reset()
                segment = collector.drain() if collector is not None else None
                conn.send(
                    ("task", worker_id, task.key(), solutions, spilled, state,
                     segment)
                )
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # coordinator went away or shut us down hard
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _WorkerHandle:
    __slots__ = ("wid", "proc", "conn", "pending", "last_progress")

    def __init__(self, wid: int, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        #: Tasks dispatched and not yet reported back, in worker order.
        self.pending: list[PrefixTask] = []
        self.last_progress = 0.0

    @property
    def busy(self) -> bool:
        return bool(self.pending)


class ProcessParallelEngine:
    """Shard the extension frontier across real worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (Figure 2 draws four).
    strategy:
        Frontier discipline, ``"dfs"`` or ``"bfs"``; applied both to the
        coordinator's task frontier and to each worker's local subtree
        exploration.  The solution *set* is identical either way.
    batch_size:
        Tasks per dispatch; batching amortizes IPC, at the price of
        coarser work distribution.
    subtree_depth / task_step_budget:
        How much of a subtree a worker explores before spilling the
        remainder back (see :class:`ClusterConfig`).
    task_timeout:
        Per-task wall-clock limit in seconds.  A worker that makes no
        progress for this long is killed and its unreported tasks are
        retried elsewhere (None disables the timeout).
    max_task_retries:
        How many times a task lost to a crash or timeout is re-dispatched
        before being dropped (a drop marks the result not exhausted).
    mp_context:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast worker startup), else ``spawn``.
    fault_hook:
        Test-only fault injector run in workers (see :class:`ClusterConfig`).
    collect_trace:
        Whether workers buffer their trace events and ship them back for
        merging into the coordinator's trace.  ``None`` (the default)
        follows the coordinator's tracer: collection is on exactly when
        a sink is attached at :meth:`run` time.  Passing ``False`` while
        the coordinator traces drops every worker-side event — the
        engine then warns and counts the losses in
        ``parallel.trace_dropped`` rather than losing them silently.
    verify:
        Static-analysis gate run on each guest before sharding: ``"off"``
        (default), ``"warn"`` or ``"strict"``.  Strict mode refuses
        uncertified programs — worker rehydration replays decision
        prefixes, so an uncertified guest can diverge mid-replay.  In
        every analyzed mode the analyzer's nondeterminism sites are
        shipped to the workers, so a runtime
        :class:`~repro.core.errors.ReplayDivergenceError` cites the
        static verdict for the diverging site.
    """

    def __init__(
        self,
        workers: int = 4,
        strategy: str = "dfs",
        batch_size: int = 4,
        subtree_depth: Optional[int] = None,
        task_step_budget: Optional[int] = 25_000,
        max_steps_per_extension: int = 5_000_000,
        max_solutions: Optional[int] = None,
        task_timeout: Optional[float] = 30.0,
        max_task_retries: int = 2,
        mp_context: Optional[str] = None,
        fault_hook: Optional[Callable[[PrefixTask], None]] = None,
        collect_trace: Optional[bool] = None,
        verify: str = "off",
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if verify not in ("off", "warn", "strict"):
            raise ValueError(
                f"verify must be 'off', 'warn' or 'strict', got {verify!r}"
            )
        self.verify = verify
        #: Analysis report of the last verified guest (None under "off").
        self.last_report = None
        self.num_workers = workers
        self.strategy_name = strategy  # TaskFrontier validates the name
        self.batch_size = batch_size
        self.max_solutions = max_solutions
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.collect_trace = collect_trace
        self.config = ClusterConfig(
            strategy=strategy,
            max_steps_per_extension=max_steps_per_extension,
            subtree_depth=subtree_depth,
            task_step_budget=task_step_budget,
            fault_hook=fault_hook,
        )
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.registry = MetricsRegistry("cluster-engine")
        self._next_wid = 0

    # ------------------------------------------------------------------

    def run(self, guest: Union[str, Program]) -> SearchResult:
        program = assemble(guest) if isinstance(guest, str) else guest
        sites: Optional[tuple[tuple[int, str], ...]] = None
        if self.verify != "off":
            from repro.analysis.verifier import nondet_sites, verify_program

            self.last_report = verify_program(program, self.verify)
            sites = nondet_sites(self.last_report)
        self.registry.reset()
        stats = SearchStats(registry=self.registry)
        reg = self.registry
        c_dispatches = reg.counter("parallel.dispatches")
        c_tasks = reg.counter("parallel.tasks_dispatched")
        c_done = reg.counter("parallel.tasks_completed")
        c_spilled = reg.counter("parallel.tasks_spilled")
        c_crashes = reg.counter("parallel.worker_crashes")
        c_timeouts = reg.counter("parallel.task_timeouts")
        c_retries = reg.counter("parallel.tasks_retried")
        c_dropped = reg.counter("parallel.tasks_dropped")
        c_trace_merged = reg.counter("parallel.trace_events_merged")
        c_trace_dropped = reg.counter("parallel.trace_dropped")
        g_workers = reg.gauge("parallel.workers")

        # Trace propagation: workers collect iff the coordinator traces,
        # unless explicitly overridden.  An override to False while a
        # sink is attached means worker events are lost — make that loud.
        collect = (
            _TRACER.enabled if self.collect_trace is None
            else self.collect_trace
        )
        run_config = dataclasses.replace(
            self.config, collect_trace=collect, nondet_sites=sites
        )
        if _TRACER.enabled and not collect:
            warnings.warn(
                "tracing is enabled on the coordinator but workers are not "
                "collecting (collect_trace=False): worker-side trace events "
                "will be dropped",
                RuntimeWarning,
                stacklevel=2,
            )

        span = next(_run_spans)
        frontier = TaskFrontier(order=self.strategy_name)
        frontier.push(PrefixTask(span=span))
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None
        error: Optional[WorkerError] = None
        poll = 0.02 if self.task_timeout is None else min(
            0.02, self.task_timeout / 4
        )

        handles = [
            self._spawn(program, run_config) for _ in range(self.num_workers)
        ]
        g_workers.set(len(handles))

        def fail_worker(handle: _WorkerHandle, kind: str) -> None:
            """Kill *handle*, requeue its unreported tasks, respawn."""
            nonlocal error
            if kind == "timeout":
                c_timeouts.inc()
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_TIMEOUT, worker=handle.wid)
            else:
                c_crashes.inc()
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_CRASH, worker=handle.wid)
            try:
                handle.conn.close()
            except OSError:
                pass
            if handle.proc.is_alive():
                handle.proc.terminate()
            handle.proc.join(timeout=5.0)
            retried, dropped = [], 0
            for task in handle.pending:
                if task.attempt >= self.max_task_retries:
                    dropped += 1
                else:
                    retried.append(task.retried())
            if retried:
                c_retries.inc(len(retried))
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_RETRY, worker=handle.wid,
                                 tasks=len(retried))
                # Requeue lost tasks ahead of everything else so retries
                # bound the damage a flaky worker can do to latency.
                for task in retried:
                    frontier.push(task)
            if dropped:
                c_dropped.inc(dropped)
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_DROP, tasks=dropped)
            handle.pending = []
            handles[handles.index(handle)] = self._spawn(program, run_config)

        try:
            while True:
                if (
                    self.max_solutions is not None
                    and len(solutions) >= self.max_solutions
                ):
                    stop_reason = "max_solutions"
                    break

                # Idle workers steal the next batch off the frontier.
                for handle in list(handles):
                    if handle.busy or not frontier:
                        continue
                    if not handle.proc.is_alive():
                        fail_worker(handle, "crash")
                        continue
                    batch = frontier.take_batch(self.batch_size)
                    remaining = (
                        None if self.max_solutions is None
                        else max(self.max_solutions - len(solutions), 0)
                    )
                    handle.pending = list(batch)
                    handle.last_progress = time.monotonic()
                    try:
                        handle.conn.send((batch, remaining))
                    except (OSError, ValueError):
                        fail_worker(handle, "crash")
                        continue
                    c_dispatches.inc()
                    c_tasks.inc(len(batch))
                    if _TRACER.enabled:
                        _TRACER.emit(_events.PARALLEL_DISPATCH,
                                     worker=handle.wid, tasks=len(batch))

                busy = [h for h in handles if h.busy]
                if not busy and not frontier:
                    break  # frontier exhausted, nothing in flight
                if not busy:
                    continue  # tasks just requeued by a failure

                ready = mp_connection.wait(
                    [h.conn for h in busy], timeout=poll
                )
                now = time.monotonic()
                for conn in ready:
                    handle = next(h for h in handles if h.conn is conn)
                    try:
                        msg = handle.conn.recv()
                    except (EOFError, OSError):
                        fail_worker(handle, "crash")
                        continue
                    if msg[0] == "error":
                        error = WorkerError(msg[1], msg[2])
                        raise error
                    _kind, _wid, key, task_solutions, spilled, state, segment = msg
                    handle.last_progress = now
                    for i, task in enumerate(handle.pending):
                        if task.key() == key:
                            del handle.pending[i]
                            break
                    c_done.inc()
                    c_spilled.inc(len(spilled))
                    reg.merge_state(state)
                    frontier.extend(spilled)
                    for path, status, text in task_solutions:
                        solutions.append(
                            Solution(value=(status, text), path=path)
                        )
                    if _TRACER.enabled:
                        # Splice the worker's buffered segment in between
                        # its dispatch and its result event, so the merged
                        # stream stays causally ordered.
                        if segment:
                            c_trace_merged.inc(
                                _TRACER.ingest(segment, worker=handle.wid)
                            )
                        elif segment is None:
                            # The worker never collected: its events for
                            # this task are gone.  Count the loss.
                            c_trace_dropped.inc()
                        _TRACER.emit(
                            _events.PARALLEL_RESULT, worker=handle.wid,
                            solutions=len(task_solutions),
                            spilled=len(spilled),
                        )
                for handle in busy:
                    if handle not in handles or not handle.busy:
                        continue  # replaced or drained earlier this sweep
                    if not handle.proc.is_alive():
                        fail_worker(handle, "crash")
                    elif (
                        self.task_timeout is not None
                        and now - handle.last_progress > self.task_timeout
                    ):
                        fail_worker(handle, "timeout")
        finally:
            self._shutdown(handles)
            g_workers.set(0)

        dropped_total = c_dropped.value
        if stop_reason is None and dropped_total:
            stop_reason = "task_retries_exhausted"
        if self.max_solutions is not None:
            del solutions[self.max_solutions:]
        stats.peak_frontier = max(stats.peak_frontier, frontier.peak)
        stats.extra.update({
            "workers": self.num_workers,
            "strategy_order": self.strategy_name,
            "tasks_dispatched": c_tasks.value,
            "tasks_completed": c_done.value,
            "tasks_spilled": c_spilled.value,
            "tasks_retried": c_retries.value,
            "tasks_dropped": dropped_total,
            "worker_crashes": c_crashes.value,
            "task_timeouts": c_timeouts.value,
            "peak_task_frontier": frontier.peak,
            "replay_steps": reg.counter("parallel.replay_steps").value,
            "guest_instructions": reg.counter("parallel.guest_steps").value,
            "trace_events_merged": c_trace_merged.value,
            "trace_dropped": c_trace_dropped.value,
            "trace_span": span,
            "snapshots_taken": reg.counter("snapshot.taken").value,
            "snapshots_restored": reg.counter("snapshot.restored").value,
            "frames_copied": reg.counter("mem.frames_copied").value,
        })
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self.strategy_name,
            exhausted=stop_reason is None,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------

    def _spawn(self, program: Program,
               config: Optional[ClusterConfig] = None) -> _WorkerHandle:
        wid = self._next_wid
        self._next_wid += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, program,
                  config if config is not None else self.config),
            daemon=True,
            name=f"repro-cluster-w{wid}",
        )
        proc.start()
        child_conn.close()  # the child owns its end now
        handle = _WorkerHandle(wid, proc, parent_conn)
        handle.last_progress = time.monotonic()
        return handle

    def _shutdown(self, handles: list[_WorkerHandle]) -> None:
        """Stop every worker: politely when idle, hard when mid-task."""
        for handle in handles:
            if handle.proc.is_alive() and not handle.busy:
                try:
                    handle.conn.send(None)
                except (OSError, ValueError):
                    pass
        for handle in handles:
            if handle.busy and handle.proc.is_alive():
                handle.proc.terminate()
            handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():  # pragma: no cover - last resort
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
