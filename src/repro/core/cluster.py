"""Process-parallel exploration with replay-based rehydration.

§3 contrasts sequential DFS with "a parallel depth-first-search strategy
[that] might simply fork without waiting", and Figure 2 draws one
extension-evaluation box per CPU core.  :class:`ProcessParallelEngine`
realises that architecture with real OS processes:

* a **coordinator** owns a frontier of :class:`~repro.search.shard.PrefixTask`
  subtree roots — decision prefixes, not snapshots, because page tables
  must never cross a process boundary;
* N **workers**, each owning a full engine stack (libOS, frame pool,
  snapshot manager, vCPU), rehydrate an assigned task by deterministically
  replaying its guess prefix from the program start (the record/replay
  lever of user-space replay systems), then explore the whole subtree
  under it *locally* with lightweight snapshots — amortizing the replay
  cost over every extension inside the subtree;
* when a worker exceeds its depth or step budget it converts its local
  snapshot frontier back into prefix tasks and **spills** them to the
  coordinator, which shards them to idle workers.

Scheduling is **work-stealing**: idle workers announce their capacity
(``steal``) and pull batches off the coordinator's shared frontier;
spilled subtrees re-enter that steal pool.  The wire underneath is a
pluggable :mod:`~repro.core.transport`: duplex pipes for local pools
(bit-compatible with the original protocol) or framed TCP for elastic
pools whose workers join and leave mid-run.  Because a TCP "death" is
only ever a suspicion (a partitioned worker keeps computing), every
dispatch carries a lease with a monotonic fencing token
(:mod:`~repro.core.lease`): late results under a stale fence are
counted (``parallel.fenced_stale``) and discarded wholesale, so the
solution multiset and the exact work-conservation invariant hold even
when a presumed-dead worker resurfaces.

Robustness: a per-task wall-clock timeout, worker-crash detection with
bounded retry of the lost tasks, lease expiry re-dispatch, and graceful
shutdown.  Observability: per-worker registry snapshots are merged into
the coordinator's registry
(:meth:`~repro.obs.registry.MetricsRegistry.merge_state`), and the
coordinator emits ``parallel.*`` trace events.

Within one worker the semantics are exactly :class:`MachineEngine`'s;
across workers the solution *set* is identical while discovery order is
nondeterministic — the differential suite pins this down.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.errors import GuessError, ReplayDivergenceError
from repro.core.lease import LeaseTable
from repro.core.transport import (
    EndpointDown,
    PipeTransport,
    TcpTransport,
    TcpWorkerConnection,
)
from repro.core.recorder import NondetLog, Recorder
from repro.core.journal import (
    JOURNAL_VERSION,
    FSYNC_POLICIES,
    JournalWriter,
    check_resume,
    program_digest,
    recover,
)
from repro.core.result import SearchResult, SearchStats, Solution
from repro.core.supervisor import (
    SlotState,
    SupervisorPolicy,
    WorkerSupervisor,
)
from repro.cpu.assembler import Program, assemble
from repro.libos.files import HostFS
from repro.libos.libos import ExecState, LibOS
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)
from repro.mem.frames import FramePool
from repro.obs import events as _events
from repro.obs.live import (
    FlightRecorder,
    HeartbeatEmitter,
    RingSink,
    StatusLogger,
    StatusServer,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.status import HeartbeatRecord, RunStatus
from repro.obs.trace import TRACER as _TRACER, MemorySink
from repro.search import get_strategy
from repro.search.extension import Extension
from repro.search.shard import PrefixTask, TaskFrontier, spill_extension
from repro.snapshot.snapshot import Snapshot, SnapshotManager
from repro.snapshot.tree import SnapshotTree
from repro.vmm.vcpu import VCpu


#: Root span ids for cluster runs: every run gets a fresh id, every task
#: of the run carries it, so multiple runs recorded into one trace file
#: stay separable.
_run_spans = itertools.count(1)


class WorkerError(RuntimeError):
    """A worker process reported an unrecoverable guest/engine error."""

    def __init__(self, worker_id: int, detail: str):
        self.worker_id = worker_id
        self.detail = detail
        super().__init__(f"worker {worker_id}: {detail}")


@dataclass(frozen=True)
class ClusterConfig:
    """Picklable knobs shipped to every worker process."""

    strategy: str = "dfs"
    max_steps_per_extension: int = 5_000_000
    #: Spill choice points deeper than this many guesses below the task
    #: root (None = no depth limit; rely on the step budget).
    subtree_depth: Optional[int] = None
    #: Guest instructions of *new* exploration per task before the local
    #: frontier is spilled back (replay of the prefix is not charged).
    task_step_budget: Optional[int] = 25_000
    #: Test hook, called as ``fault_hook(task)`` in the worker before
    #: each task — fault-injection tests and the chaos harness crash or
    #: stall here.
    fault_hook: Optional[Callable[[PrefixTask], None]] = None
    #: Chaos seam in the pipe protocol, called as ``pipe_hook(conn,
    #: task)`` in the worker just before a task result is sent — the
    #: chaos harness writes garbage bytes into the result pipe here to
    #: exercise the coordinator's protocol-corruption handling.
    pipe_hook: Optional[Callable] = None
    #: Workers buffer their trace events per task and ship the segment
    #: back with the result, so the coordinator can merge one causally
    #: ordered trace.  Off by default; the engine switches it on for a
    #: run whenever the coordinator's tracer has a sink attached.
    collect_trace: bool = False
    #: ``(pc, lint_id)`` sites the static analyzer flagged as sources of
    #: nondeterminism; ``None`` when the engine ran with ``verify="off"``
    #: (no analysis), ``()`` when the program was certified.  Workers
    #: cite the matching verdict when a replayed prefix diverges at
    #: runtime.
    nondet_sites: Optional[tuple[tuple[int, str], ...]] = None
    #: Record/replay mode (``"off"``, ``"record"``, ``"strict"``).  When
    #: active, every worker owns a :class:`~repro.core.recorder.Recorder`
    #: over a worker-lifetime log: the coordinator ships the recorded
    #: events relevant to each task batch, workers replay them during
    #: rehydration and subtree exploration, and freshly recorded events
    #: ride back with the task result.
    replay_mode: str = "off"
    #: Scripted stdin bytes for guests that read fd 0 (each worker gets
    #: its own :class:`~repro.libos.console.InputSource` over them).
    input_script: Optional[bytes] = None
    #: Backing files for guests that ``open`` host paths, shipped as a
    #: picklable snapshot; each worker rebuilds its own
    #: :class:`~repro.libos.files.HostFS` over them.  The store is
    #: immutable, so every worker sees the same initial durable state
    #: and crash tasks shard like any other prefix.
    hostfs_files: Optional[tuple[tuple[str, bytes], ...]] = None
    #: Persistence granularity of the workers' file layer (must match
    #: the coordinator's, or crash-dimension numbering would diverge).
    hostfs_block_size: int = 4096
    #: Seconds between worker heartbeat records shipped over the result
    #: pipe alongside task results (None disables heartbeats — the
    #: engine enables them whenever any live-telemetry surface is on).
    heartbeat_interval: Optional[float] = None
    #: Capacity of the per-worker flight-recorder ring of recent trace
    #: events, shipped inside heartbeats (0 disables the ring).
    flight_events: int = 0
    #: Tasks a worker asks for per ``steal`` announcement (the engine
    #: sets it to its batch_size; the coordinator may fulfil with less).
    steal_batch: int = 4


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _Candidate:
    """Worker-local partial candidate: snapshot + full path + fanouts.

    Unlike :class:`MachineEngine`'s candidate, this one keeps the fanout
    chain so any unevaluated extension can be converted back into a
    replayable :class:`PrefixTask` at spill time — local snapshot state
    is always *rebuildable*, which is what makes it safe to throw away.
    """

    __slots__ = ("snapshot", "path", "fanouts", "n", "console")

    def __init__(self, snapshot: Snapshot, path: tuple[int, ...],
                 fanouts: tuple[int, ...], n: int, console):
        self.snapshot = snapshot
        self.path = path
        self.fanouts = fanouts
        self.n = n
        self.console = console


@dataclass
class _Pending:
    """The extension step currently executing in the worker."""

    state: ExecState
    path: tuple[int, ...]
    fanouts: tuple[int, ...]
    parent: Optional[_Candidate]
    steps_used: int = 0
    #: Guest instructions of ``steps_used`` spent replaying the task
    #: prefix (the rest is fresh exploration; the split is what the
    #: profiler charges as rehydration overhead).
    replay_steps: int = 0
    #: Guess outcomes still to feed from the task prefix (replay mode
    #: while nonzero remain).
    replay_pos: int = 0


class _SubtreeWorker:
    """One worker's engine stack: rehydrate a task, explore its subtree.

    Created once per worker process; :meth:`explore` is called per task.
    All snapshot state is torn down at the end of every task, so frames
    never accumulate across tasks and the registry gauges return to
    zero between result messages (which is what makes delta-shipping the
    registry sound).
    """

    def __init__(self, program: Program, config: ClusterConfig,
                 replay_log: Optional[NondetLog] = None):
        self.program = program
        self.config = config
        input_source = None
        if config.input_script is not None:
            from repro.libos.console import InputSource

            input_source = InputSource(config.input_script)
        hostfs = None
        if config.hostfs_files is not None:
            hostfs = HostFS(dict(config.hostfs_files),
                            block_size=config.hostfs_block_size)
        self.libos = LibOS(hostfs=hostfs, input=input_source)
        if config.replay_mode != "off":
            self.recorder: Optional[Recorder] = Recorder(
                config.replay_mode, log=replay_log
            )
        else:
            self.recorder = None
        self.libos.dispatcher.nondet = self.recorder
        self.pool = FramePool()
        self.registry = MetricsRegistry("cluster-worker")
        self.manager = SnapshotManager(self.pool, registry=self.registry)
        self.vcpu = VCpu()
        self.stats = SearchStats(registry=self.registry)
        self._steps_counter = self.registry.counter("parallel.guest_steps")
        self._replay_counter = self.registry.counter("parallel.replay_steps")
        self._task_timer = self.registry.timer("parallel.task_time")
        # FramePool keeps its stats on the pool object, not in a registry;
        # ship per-task deltas so the coordinator sees copy totals.
        self._frames_copied = self.registry.counter("mem.frames_copied")
        self._spills_counter = self.registry.counter("parallel.worker_spills")
        self._last_copied = 0
        #: Heartbeat hook called between extension evaluations (set by
        #: ``_worker_main`` when live telemetry is on; it is rate-limited
        #: internally, so calling it often is cheap).
        self.heartbeat: Optional[Callable[[], None]] = None

    def sync_frame_stats(self) -> None:
        """Mirror the pool's copy count into the registry.

        Called at every task end and before every heartbeat, so mid-task
        uncommitted registry states carry the COW work done so far.
        """
        copied = self.pool.stats.copied
        if copied != self._last_copied:
            self._frames_copied.inc(copied - self._last_copied)
            self._last_copied = copied

    def _divergence_verdict(self, pc: int) -> Optional[str]:
        """The static analyzer's take on a replay divergence at *pc*."""
        sites = self.config.nondet_sites
        if sites is None:
            return None  # engine ran with verify="off": no analysis
        for site_pc, lint_id in sites:
            if site_pc == pc:
                return (
                    f"{lint_id} flagged this syscall site as "
                    "nondeterministic at analysis time"
                )
        if sites:
            listed = ", ".join(f"{lid}@{spc:#x}" for spc, lid in sites[:4])
            return f"program was not certified deterministic ({listed})"
        return (
            "program was certified deterministic — divergence indicates "
            "an engine or snapshot bug, not guest nondeterminism"
        )

    # -- public entry point --------------------------------------------

    def explore(self, task: PrefixTask, solutions_budget: Optional[int]):
        """Run one task to completion; returns (solutions, spilled).

        ``solutions`` is a list of ``(path, status, text)`` triples;
        ``spilled`` the prefix tasks for subtrees this worker did not
        enter (budget exceedances and solution-budget early stops).
        """
        with self._task_timer.time():
            return self._explore(task, solutions_budget)

    def _explore(self, task: PrefixTask, solutions_budget: Optional[int]):
        cfg = self.config
        strategy = get_strategy(cfg.strategy)
        tree = SnapshotTree(self.manager)
        solutions: list[tuple[tuple[int, ...], int, str]] = []
        spilled: list[PrefixTask] = []
        explore_steps = 0

        state, regs = self.libos.load(self.program, self.pool)
        self.vcpu.regs.load(regs.frozen())
        if self.recorder is not None:
            # Rehydration restarts at the root segment; nondet events
            # recorded along the prefix replay under their original keys.
            self.recorder.begin_segment(())
        self.stats.evaluations += 1
        pending = _Pending(state, task.prefix, task.fanouts, None)

        def over_budget() -> bool:
            return (
                cfg.task_step_budget is not None
                and explore_steps >= cfg.task_step_budget
            )

        def finish(pending: _Pending) -> None:
            pending.state.free()
            if pending.parent is not None:
                tree.unpin(pending.parent.snapshot)

        def handle_guess(action: GuessAction, pending: _Pending) -> None:
            n = action.n
            if action.hints is not None and len(action.hints) != n:
                raise GuessError("hint vector length does not match fan-out")
            if n == 0:
                self.stats.fails += 1
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_FAIL, depth=len(pending.path),
                        path=list(pending.path),
                        steps=pending.steps_used - pending.replay_steps,
                        replay_steps=pending.replay_steps,
                    )
                finish(pending)
                return
            hints = tuple(action.hints) if action.hints is not None else None
            local_depth = len(pending.path) - task.depth
            if (
                (cfg.subtree_depth is not None
                 and local_depth >= cfg.subtree_depth)
                or over_budget()
                or (solutions_budget is not None
                    and len(solutions) >= solutions_budget)
            ):
                # Outside this task's budget: hand the whole choice point
                # back to the coordinator as replayable subtree roots.
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_SPILL, depth=len(pending.path), n=n,
                        path=list(pending.path),
                        steps=pending.steps_used - pending.replay_steps,
                        replay_steps=pending.replay_steps,
                    )
                spilled.extend(
                    spill_extension(pending.path, pending.fanouts, n, hints,
                                    span=task.span)
                )
                finish(pending)
                return
            parent_snap = pending.parent.snapshot if pending.parent else None
            snap = self.manager.take(
                pending.state.space,
                regs=self.vcpu.regs.frozen(),
                files=pending.state.files,
                parent=parent_snap if parent_snap and parent_snap.alive else None,
            )
            cand = _Candidate(snap, pending.path, pending.fanouts, n,
                              pending.state.console.fork_cow())
            tree.add(snap)
            tree.pin(snap, n)
            self.stats.candidates += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_GUESS, n=n, depth=len(pending.path),
                    sid=snap.sid, path=list(pending.path),
                    steps=pending.steps_used - pending.replay_steps,
                    replay_steps=pending.replay_steps,
                )
            strategy.add(
                Extension(
                    cand,
                    number=i,
                    hint=hints[i] if hints is not None else None,
                    depth=len(pending.path),
                )
                for i in range(n)
            )
            finish(pending)

        def run_pending(pending: _Pending) -> None:
            nonlocal explore_steps
            prefix = task.prefix
            replaying = pending.replay_pos < len(prefix)
            while True:
                budget = self.config.max_steps_per_extension - pending.steps_used
                self.vcpu.attach(pending.state.space)
                exit_event = self.vcpu.enter(max_steps=max(budget, 1))
                pending.steps_used += exit_event.steps
                if replaying:
                    self._replay_counter.inc(exit_event.steps)
                    pending.replay_steps += exit_event.steps
                else:
                    self._steps_counter.inc(exit_event.steps)
                    explore_steps += exit_event.steps
                action = self.libos.handle_exit(exit_event, self.vcpu,
                                                pending.state)
                if isinstance(action, ContinueAction):
                    if pending.steps_used >= self.config.max_steps_per_extension:
                        self.stats.kills += 1
                        if _TRACER.enabled:
                            _TRACER.emit(
                                _events.SEARCH_KILL, depth=len(pending.path),
                                path=list(pending.path),
                                steps=pending.steps_used - pending.replay_steps,
                                replay_steps=pending.replay_steps,
                            )
                        finish(pending)
                        return
                    if self.heartbeat is not None:
                        self.heartbeat()
                    continue
                if isinstance(action, StrategyAction):
                    # Guest strategy selection is coordinator policy in
                    # the cluster engine; acknowledge and ignore.
                    continue
                if isinstance(action, GuessAction):
                    if pending.replay_pos < len(prefix):
                        pos = pending.replay_pos
                        if action.n != pending.fanouts[pos]:
                            # rip already points past the 1-byte SYSCALL.
                            pc = self.vcpu.regs.rip - 1
                            raise ReplayDivergenceError(
                                "nondeterministic guest: replayed guess "
                                f"had fan-out {pending.fanouts[pos]}, "
                                f"now {action.n}",
                                prefix=prefix,
                                position=pos,
                                pc=pc,
                                expected=pending.fanouts[pos],
                                actual=action.n,
                                verdict=self._divergence_verdict(pc),
                            )
                        self.vcpu.regs.rax = prefix[pos]
                        pending.replay_pos = pos + 1
                        self.stats.replayed_decisions += 1
                        if self.recorder is not None:
                            self.recorder.begin_segment(prefix[:pos + 1])
                        replaying = pending.replay_pos < len(prefix)
                        continue
                    handle_guess(action, pending)
                    return
                if pending.replay_pos < len(prefix):
                    pc = self.vcpu.regs.rip - 1
                    raise ReplayDivergenceError(
                        "nondeterministic guest: path ended during "
                        f"replay of a prefix of length {len(prefix)}",
                        prefix=prefix,
                        position=pending.replay_pos,
                        pc=pc,
                        verdict=self._divergence_verdict(pc),
                    )
                if isinstance(action, GuessFailAction):
                    self.stats.fails += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_FAIL, depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    finish(pending)
                    return
                if isinstance(action, ExitAction):
                    self.stats.completions += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_SOLUTION,
                            depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    solutions.append(
                        (pending.path, action.status,
                         pending.state.console.text)
                    )
                    finish(pending)
                    return
                if isinstance(action, KillAction):
                    self.stats.kills += 1
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_KILL, depth=len(pending.path),
                            path=list(pending.path),
                            steps=pending.steps_used - pending.replay_steps,
                            replay_steps=pending.replay_steps,
                        )
                    finish(pending)
                    return
                raise AssertionError(f"unhandled action {action!r}")  # pragma: no cover

        run_pending(pending)
        while True:
            if self.heartbeat is not None:
                self.heartbeat()
            if (
                solutions_budget is not None
                and len(solutions) >= solutions_budget
            ) or over_budget():
                break
            ext = strategy.next()
            if ext is None:
                break
            self.stats.evaluations += 1
            cand: _Candidate = ext.candidate
            regs2, space, files = self.manager.restore(cand.snapshot)
            self.vcpu.regs.load(regs2)
            self.vcpu.regs.rax = ext.number
            if self.recorder is not None:
                self.recorder.begin_segment(cand.path + (ext.number,))
            run_pending(
                _Pending(
                    ExecState(space, files, cand.console.fork_cow()),
                    cand.path + (ext.number,),
                    cand.fanouts + (cand.n,),
                    cand,
                    replay_pos=len(task.prefix),
                )
            )

        # Convert whatever local frontier remains into replayable tasks
        # and unwind its pins so the snapshot tree (and its frames) die.
        while True:
            ext = strategy.next()
            if ext is None:
                break
            cand = ext.candidate
            spilled.append(
                PrefixTask(
                    prefix=cand.path + (ext.number,),
                    fanouts=cand.fanouts + (cand.n,),
                    hint=ext.hint,
                    span=task.span,
                )
            )
            tree.unpin(cand.snapshot)
        # Worker-local frontier peaks are per-task numbers; summing them
        # through the gauge merge would be meaningless, so the engine's
        # peak_frontier reports the coordinator task frontier instead.
        self.sync_frame_stats()
        if spilled:
            self._spills_counter.inc(len(spilled))
        return solutions, spilled


#: Seconds between an idle worker's re-announcements of its steal
#: capacity.  Over a pipe the first announcement always arrives; over a
#: chaos-injected network a ``steal`` (or the ``work`` answering it) can
#: be dropped, and the periodic re-announcement is what un-wedges the
#: run: the coordinator treats a steal from a worker it believes busy as
#: proof the worker's results were lost, reclaims the leases, and
#: re-dispatches.
_STEAL_REANNOUNCE_S = 1.0


def _worker_main(worker_id: int, conn, program: Program,
                 config: ClusterConfig) -> None:
    """Worker process body: steal and serve batches until the pill."""
    # Under the ``fork`` start method this process inherited the
    # coordinator's tracer sinks (including any open trace file); writing
    # through them from here would interleave with the coordinator, so
    # forget them and collect into a private buffer instead.
    _TRACER.reset_sinks()
    _TRACER.set_context(worker=worker_id)
    collector = _TRACER.attach(MemorySink()) if config.collect_trace else None
    worker = _SubtreeWorker(program, config)
    emitter: Optional[HeartbeatEmitter] = None
    if config.heartbeat_interval is not None:
        # The flight ring is a tracer sink of its own: attaching it
        # enables event emission in this worker even when the
        # coordinator is not collecting a full trace — the ring bounds
        # the cost to the N most recent events.
        ring = (
            _TRACER.attach(RingSink(config.flight_events))
            if config.flight_events > 0 else None
        )
        emitter = HeartbeatEmitter(
            conn, worker_id, worker.registry, config.heartbeat_interval,
            ring=ring, sync=worker.sync_frame_stats,
        )
    try:
        conn.send(("steal", worker_id, config.steal_batch))
        last_steal = time.monotonic()
        while True:
            # Wait for work; heartbeat through idle waits (so the
            # coordinator can tell "idle and healthy" from "gone") and
            # periodically re-announce the steal in case it was lost.
            while True:
                timeout = _STEAL_REANNOUNCE_S
                if emitter is not None:
                    timeout = min(timeout, emitter.poll_timeout())
                if conn.poll(timeout):
                    break
                if emitter is not None:
                    emitter.beat(phase="idle", force=True)
                now = time.monotonic()
                if now - last_steal >= _STEAL_REANNOUNCE_S:
                    conn.send(("steal", worker_id, config.steal_batch))
                    last_steal = now
            msg = conn.recv()
            if msg is None:
                break
            if not (isinstance(msg, tuple) and len(msg) == 4
                    and msg[0] == "work"):
                continue  # duplicated/unknown control frame: ignore
            _, batch, solutions_budget, shipped_events = msg
            if worker.recorder is not None and shipped_events:
                worker.recorder.log.merge(shipped_events)
            for task in batch:
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_BEGIN, worker=worker_id,
                        task=list(task.prefix), depth=task.depth,
                        span=task.span, attempt=task.attempt,
                    )
                if emitter is not None:
                    # Force a beat before the fault hook can kill us:
                    # the shipped ring (with task.begin) is what the
                    # flight recorder dumps for this death.
                    worker.heartbeat = (
                        lambda t=task: emitter.beat(task=t.prefix, span=t.span)
                    )
                    emitter.beat(task=task.prefix, span=task.span, force=True)
                if config.fault_hook is not None:
                    config.fault_hook(task)
                try:
                    solutions, spilled = worker.explore(task, solutions_budget)
                except Exception as exc:  # engine/guest error: report and die
                    conn.send(("error", worker_id,
                               f"{type(exc).__name__}: {exc}"))
                    return
                if solutions_budget is not None:
                    solutions_budget = max(
                        0, solutions_budget - len(solutions)
                    )
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_END, worker=worker_id,
                        task=list(task.prefix), span=task.span,
                        solutions=len(solutions), spilled=len(spilled),
                        explore_steps=worker._steps_counter.value,
                        replay_steps=worker._replay_counter.value,
                        task_s=worker._task_timer.total_s,
                    )
                state = worker.registry.state_dict()
                if emitter is not None:
                    worker.heartbeat = None
                    # Bank the lifetime counters this reset will zero.
                    emitter.note_task_result(state)
                worker.registry.reset()
                segment = collector.drain() if collector is not None else None
                fresh_events = (
                    worker.recorder.drain_fresh()
                    if worker.recorder is not None else []
                )
                if config.pipe_hook is not None:
                    config.pipe_hook(conn, task)
                conn.send(
                    ("task", worker_id, task.key(), task.fence, solutions,
                     spilled, state, segment, fresh_events)
                )
            conn.send(("steal", worker_id, config.steal_batch))
            last_steal = time.monotonic()
    except (EOFError, OSError, KeyboardInterrupt, ConnectionError):
        pass  # coordinator went away or shut us down hard
    finally:
        conn.close()


def _tcp_worker_entry(address, wid: Optional[int] = None) -> None:
    """Process body of a TCP worker: dial the coordinator and serve.

    Used both for coordinator-spawned local workers (*wid* preassigned)
    and for external joiners (``run_guest --connect``; *wid* None, the
    coordinator assigns one in the welcome).  The program and config
    arrive over the wire in the handshake, so a joining host needs
    nothing but the address.
    """
    try:
        conn = TcpWorkerConnection(address, wid=wid)
    except (ConnectionError, OSError):
        return  # coordinator already gone; nothing to serve
    _worker_main(conn.wid, conn, conn.program, conn.config)


def tcp_worker(host: str, port: int) -> None:
    """Join a running TCP coordinator as a worker (blocks until done).

    The public entry behind ``run_guest --connect HOST:PORT``.
    """
    _tcp_worker_entry((host, port), wid=None)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _WorkerHandle:
    __slots__ = ("ep", "slot_index", "pending", "last_progress", "want")

    def __init__(self, ep, slot_index: int):
        #: The transport endpoint this worker is reached through.
        self.ep = ep
        #: Index of the supervisor slot this worker occupies.
        self.slot_index = slot_index
        #: Leased tasks dispatched and not yet settled, in worker order
        #: (each carries the fence it travelled under).
        self.pending: list[PrefixTask] = []
        self.last_progress = 0.0
        #: Outstanding steal capacity (0 = no unfulfilled steal).
        self.want = 0

    @property
    def wid(self) -> int:
        return self.ep.wid

    @property
    def busy(self) -> bool:
        return bool(self.pending)


class ProcessParallelEngine:
    """Shard the extension frontier across real worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (Figure 2 draws four).
    strategy:
        Frontier discipline, ``"dfs"`` or ``"bfs"``; applied both to the
        coordinator's task frontier and to each worker's local subtree
        exploration.  The solution *set* is identical either way.
    batch_size:
        Tasks per dispatch; batching amortizes IPC, at the price of
        coarser work distribution.
    subtree_depth / task_step_budget:
        How much of a subtree a worker explores before spilling the
        remainder back (see :class:`ClusterConfig`).
    task_timeout:
        Per-task wall-clock limit in seconds.  A worker that makes no
        progress for this long is killed and its unreported tasks are
        retried elsewhere (None disables the timeout).
    max_task_retries:
        How many times a task lost to a crash or timeout is re-dispatched
        before being dropped (a drop marks the result not exhausted).
    mp_context:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast worker startup), else ``spawn``.
    fault_hook:
        Test-only fault injector run in workers (see :class:`ClusterConfig`).
    collect_trace:
        Whether workers buffer their trace events and ship them back for
        merging into the coordinator's trace.  ``None`` (the default)
        follows the coordinator's tracer: collection is on exactly when
        a sink is attached at :meth:`run` time.  Passing ``False`` while
        the coordinator traces drops every worker-side event — the
        engine then warns and counts the losses in
        ``parallel.trace_dropped`` rather than losing them silently.
    verify:
        Static-analysis gate run on each guest before sharding: ``"off"``
        (default), ``"warn"`` or ``"strict"``.  Strict mode refuses
        uncertified programs — worker rehydration replays decision
        prefixes, so an uncertified guest can diverge mid-replay.  In
        every analyzed mode the analyzer's nondeterminism sites are
        shipped to the workers, so a runtime
        :class:`~repro.core.errors.ReplayDivergenceError` cites the
        static verdict for the diverging site.
    journal:
        Path of a write-ahead run journal (see
        :mod:`repro.core.journal`).  Every dispatch, completion, spill,
        solution and quarantine is logged durably, making the run
        resumable after the *coordinator* dies — the frontier and found
        solutions are rebuilt from decision prefixes, and only the
        missing subtrees are re-explored.  ``None`` disables journaling.
    resume:
        Resume an interrupted run from *journal* instead of starting
        fresh.  The journaled program digest and analyzer certificate
        state must match the program being run
        (:class:`~repro.core.errors.ResumeMismatchError` otherwise).
    fsync:
        Journal durability policy: ``"always"``, ``"batch"`` (default)
        or ``"off"``.
    min_workers:
        Graceful-degradation floor: when the supervisor can no longer
        keep at least this many worker slots serviceable, the remaining
        frontier is finished on an in-process engine instead of
        aborting the run.
    supervisor:
        Full :class:`~repro.core.supervisor.SupervisorPolicy`
        (respawn backoff, poison threshold, slot failure limit).  When
        given it wins over the *min_workers* convenience parameter.
    chaos:
        A :class:`~repro.chaos.FaultPlan` wired into the three
        injection seams (worker fault hook, result-pipe hook, journal
        writer hook).  An explicitly passed *fault_hook* keeps
        precedence over the plan's worker faults.
    replay_mode:
        Record/replay of nondeterministic syscall outcomes: ``"off"``
        (default), ``"record"`` (record fresh outcomes, replay known
        ones) or ``"strict"`` (replay only).  In record mode an
        uncertified guest whose only nondeterminism is recordable
        (console input, clock, entropy — see
        :data:`repro.analysis.verifier.RECORDABLE_LINTS`) passes the
        strict verification gate, because the recorder makes its
        re-executions exact.  Recorded events are journaled (when a
        journal is configured) and the coordinator's merged log is
        exposed as :attr:`replay_log` after the run.
    replay_log:
        A :class:`~repro.core.recorder.NondetLog` of previously
        recorded events to seed the run with (e.g. recorded by a
        sequential engine, or loaded from a ``--replay-log`` file).
    input_script:
        Scripted stdin bytes for guests that read fd 0.
    hostfs:
        Backing files for guests that ``open`` host paths.  The store's
        snapshot is shipped to every worker, which rebuilds an
        identical :class:`~repro.libos.files.HostFS` — the store is
        immutable, so rehydrated prefixes (including ``sys_crash_*``
        enumeration prefixes) replay over the same initial durable
        state on every worker.
    status_port:
        Serve live run status over HTTP on ``127.0.0.1:<port>`` for the
        duration of :meth:`run`: ``GET /status`` returns the JSON
        :meth:`~repro.obs.status.RunStatus.snapshot`, ``GET /metrics``
        Prometheus text exposition.  ``0`` picks a free port (read
        ``engine.status_server.url``); ``None`` disables the server.
    status_log:
        Append periodic ``status.sample`` JSONL records (one full
        status snapshot each) to this path, consumable by
        ``repro.tools.top --status-log`` and ``trace_report``.
    status_interval:
        Seconds between status-log samples (and the floor of the
        coordinator's internal status refresh cadence).
    heartbeat_interval:
        Seconds between worker heartbeats.  ``None`` (default) means
        0.25 whenever any telemetry surface above is enabled, else off.
        Heartbeats also defer the per-task timeout while a worker's
        step counter demonstrably grows — a stalled worker cannot beat,
        so stalls still time out.
    flight_dir:
        Directory for flight-recorder post-mortems: each worker's most
        recent *flight_events* trace events (shipped inside heartbeats,
        so they survive ``kill -9``) are dumped to a JSONL file when
        the supervisor observes that worker crash or stall.
    flight_events:
        Ring capacity per worker for *flight_dir* (default 256).
    transport:
        The wire between coordinator and workers: ``"pipe"`` (default;
        local worker processes over duplex multiprocessing pipes) or
        ``"tcp"`` (framed sockets via an asyncio acceptor; workers may
        additionally join elastically from other hosts/processes with
        ``run_guest --connect``).  Scheduling, supervision, journaling
        and chaos semantics are identical across transports — the
        differential battery pins that down.
    listen:
        TCP only: ``(host, port)`` to accept workers on.  Defaults to
        ``("127.0.0.1", 0)`` — loopback, ephemeral port; read
        :attr:`transport_address` once :meth:`run` is underway.
    lease_timeout:
        Seconds a dispatched task's lease lives without observed
        progress before the coordinator re-dispatches it (the late
        result, if any, is fenced off and discarded).  ``None``
        (default) derives 1.5 × *task_timeout* — the stall detector
        fires first and remains the primary recovery path; the lease is
        the backstop for results lost in flight and for partitioned
        workers that still look healthy.  When *task_timeout* is None,
        leases never expire (fencing still applies).
    heartbeat_timeout:
        TCP only: seconds of per-connection silence (workers ping ~1/s)
        after which the transport declares a connection half-open and
        reports the worker down.
    """

    def __init__(
        self,
        workers: int = 4,
        strategy: str = "dfs",
        batch_size: int = 4,
        subtree_depth: Optional[int] = None,
        task_step_budget: Optional[int] = 25_000,
        max_steps_per_extension: int = 5_000_000,
        max_solutions: Optional[int] = None,
        task_timeout: Optional[float] = 30.0,
        max_task_retries: int = 2,
        mp_context: Optional[str] = None,
        fault_hook: Optional[Callable[[PrefixTask], None]] = None,
        collect_trace: Optional[bool] = None,
        verify: str = "off",
        journal: Optional[str] = None,
        resume: bool = False,
        fsync: str = "batch",
        min_workers: int = 1,
        supervisor: Optional[SupervisorPolicy] = None,
        chaos=None,
        replay_mode: str = "off",
        replay_log: Optional[NondetLog] = None,
        input_script: Optional[bytes] = None,
        hostfs: Optional[HostFS] = None,
        status_port: Optional[int] = None,
        status_log: Optional[str] = None,
        status_interval: float = 0.5,
        heartbeat_interval: Optional[float] = None,
        flight_dir: Optional[str] = None,
        flight_events: int = 256,
        transport: str = "pipe",
        listen: Optional[tuple] = None,
        lease_timeout: Optional[float] = None,
        heartbeat_timeout: float = 5.0,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if transport not in ("pipe", "tcp"):
            raise ValueError(
                f"transport must be 'pipe' or 'tcp', got {transport!r}"
            )
        if listen is not None and transport != "tcp":
            raise ValueError("listen requires transport='tcp'")
        if lease_timeout is not None and lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0")
        if verify not in ("off", "warn", "strict"):
            raise ValueError(
                f"verify must be 'off', 'warn' or 'strict', got {verify!r}"
            )
        if replay_mode not in ("off", "record", "strict"):
            raise ValueError(
                f"replay_mode must be 'off', 'record' or 'strict', "
                f"got {replay_mode!r}"
            )
        if replay_log is not None and replay_mode == "off":
            raise ValueError("replay_log requires replay_mode != 'off'")
        if resume and journal is None:
            raise ValueError("resume=True requires a journal path")
        if status_interval <= 0:
            raise ValueError("status_interval must be > 0")
        if heartbeat_interval is not None and heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if flight_events < 1:
            raise ValueError("flight_events must be >= 1")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.verify = verify
        #: Analysis report of the last verified guest (None under "off").
        self.last_report = None
        self.transport_name = transport
        self.listen = tuple(listen) if listen is not None else None
        #: ``(host, port)`` the TCP acceptor is bound to, set as soon as
        #: :meth:`run` starts listening (None for pipe transport) — what
        #: an external worker passes to ``run_guest --connect``.
        self.transport_address: Optional[tuple] = None
        self.lease_timeout = lease_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.num_workers = workers
        self.strategy_name = strategy  # TaskFrontier validates the name
        self.batch_size = batch_size
        self.max_solutions = max_solutions
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.collect_trace = collect_trace
        self.journal_path = journal
        self.resume = resume
        self.fsync = fsync
        self.chaos = chaos
        self.replay_mode = replay_mode
        #: After :meth:`run`: the merged nondet-event log of the whole
        #: run (seed events + everything workers recorded); None when
        #: replay is off.
        self.replay_log = (
            replay_log.copy() if replay_log is not None
            else (NondetLog() if replay_mode != "off" else None)
        )
        self.supervisor_policy = (
            supervisor if supervisor is not None
            else SupervisorPolicy(min_workers=min_workers)
        )
        self.status_port = status_port
        self.status_log = status_log
        self.status_interval = status_interval
        self.flight_dir = flight_dir
        #: True when any live-telemetry surface was requested; gates the
        #: coordinator's refresh work so telemetry-off runs pay nothing.
        self._telemetry = (
            status_port is not None or status_log is not None
            or flight_dir is not None or heartbeat_interval is not None
        )
        hb_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else (0.25 if self._telemetry else None)
        )
        #: Live model of the current/last :meth:`run` (always set by
        #: run; finalized to the exact end-of-run registry state).
        self.status: Optional[RunStatus] = None
        #: The HTTP exporter of the current run (``status_port`` only).
        self.status_server: Optional[StatusServer] = None
        #: The flight recorder of the current run (``flight_dir`` only);
        #: ``flight_recorder.dumps`` lists post-mortems written.
        self.flight_recorder: Optional[FlightRecorder] = None
        if chaos is not None and fault_hook is None:
            fault_hook = chaos.worker_hook
        self.config = ClusterConfig(
            strategy=strategy,
            max_steps_per_extension=max_steps_per_extension,
            subtree_depth=subtree_depth,
            task_step_budget=task_step_budget,
            fault_hook=fault_hook,
            pipe_hook=chaos.pipe_hook if chaos is not None else None,
            replay_mode=replay_mode,
            input_script=input_script,
            hostfs_files=(
                tuple(sorted(hostfs.snapshot_files().items()))
                if hostfs is not None else None
            ),
            hostfs_block_size=(
                hostfs.block_size if hostfs is not None
                else ClusterConfig.hostfs_block_size
            ),
            heartbeat_interval=hb_interval,
            flight_events=(
                flight_events
                if flight_dir is not None and hb_interval is not None else 0
            ),
            steal_batch=batch_size,
        )
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.registry = MetricsRegistry("cluster-engine")
        self._next_wid = 0

    # ------------------------------------------------------------------

    def run(self, guest: Union[str, Program]) -> SearchResult:
        program = assemble(guest) if isinstance(guest, str) else guest
        sites: Optional[tuple[tuple[int, str], ...]] = None
        if self.verify != "off":
            from repro.analysis.verifier import nondet_sites, verify_program

            self.last_report = verify_program(
                program, self.verify, replay_mode=self.replay_mode
            )
            sites = nondet_sites(self.last_report)
        self.registry.reset()
        stats = SearchStats(registry=self.registry)
        reg = self.registry
        c_dispatches = reg.counter("parallel.dispatches")
        c_tasks = reg.counter("parallel.tasks_dispatched")
        c_done = reg.counter("parallel.tasks_completed")
        c_spilled = reg.counter("parallel.tasks_spilled")
        c_crashes = reg.counter("parallel.worker_crashes")
        c_timeouts = reg.counter("parallel.task_timeouts")
        c_retries = reg.counter("parallel.tasks_retried")
        c_dropped = reg.counter("parallel.tasks_dropped")
        c_trace_merged = reg.counter("parallel.trace_events_merged")
        c_trace_dropped = reg.counter("parallel.trace_dropped")
        c_respawns = reg.counter("parallel.respawns")
        c_poisoned = reg.counter("parallel.poisoned_tasks")
        c_degraded = reg.counter("parallel.degraded_runs")
        c_proto = reg.counter("parallel.protocol_errors")
        c_resume_filtered = reg.counter("parallel.resume_spills_filtered")
        c_heartbeats = reg.counter("telemetry.heartbeats")
        c_flight = reg.counter("telemetry.flight_dumps")
        c_steals = reg.counter("parallel.steals")
        c_lease_expired = reg.counter("parallel.leases_expired")
        c_fenced = reg.counter("parallel.fenced_stale")
        c_joins = reg.counter("parallel.worker_joins")
        g_workers = reg.gauge("parallel.workers")

        # Trace propagation: workers collect iff the coordinator traces,
        # unless explicitly overridden.  An override to False while a
        # sink is attached means worker events are lost — make that loud.
        collect = (
            _TRACER.enabled if self.collect_trace is None
            else self.collect_trace
        )
        run_config = dataclasses.replace(
            self.config, collect_trace=collect, nondet_sites=sites
        )
        if _TRACER.enabled and not collect:
            warnings.warn(
                "tracing is enabled on the coordinator but workers are not "
                "collecting (collect_trace=False): worker-side trace events "
                "will be dropped",
                RuntimeWarning,
                stacklevel=2,
            )

        span = next(_run_spans)
        run_status = RunStatus(
            workers=self.num_workers, span=span, strategy=self.strategy_name,
        )
        self.status = run_status
        server: Optional[StatusServer] = None
        logger: Optional[StatusLogger] = None
        flight: Optional[FlightRecorder] = None
        if self.status_port is not None:
            server = StatusServer(run_status, port=self.status_port).start()
        self.status_server = server
        if self.flight_dir is not None and run_config.flight_events > 0:
            flight = FlightRecorder(
                self.flight_dir, capacity=run_config.flight_events,
            )
        self.flight_recorder = flight
        frontier = TaskFrontier(order=self.strategy_name)
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None
        degraded = False
        #: Task keys already completed in the journaled run: a resumed
        #: coordinator drops re-spills of these so a re-explored parent
        #: (its own completion record lost to corruption) can never
        #: double-count a child's already-durable solutions.
        resume_completed: set[tuple[int, ...]] = set()
        poisoned: list[tuple[PrefixTask, list]] = []
        recovered = None
        journal: Optional[JournalWriter] = None
        digest = program_digest(program)
        jhook = self.chaos.journal_hook if self.chaos is not None else None
        sup = WorkerSupervisor(self.num_workers, self.supervisor_policy)

        nlog = self.replay_log  # coordinator's merged nondet-event log

        if self.resume:
            recovered = recover(self.journal_path)
            check_resume(recovered, digest, sites,
                         replay_mode=self.replay_mode)
            if nlog is not None and recovered.nondet_events:
                nlog.merge_records(recovered.nondet_events)
            journal = JournalWriter(
                self.journal_path, fsync=self.fsync,
                start_epoch=recovered.last_epoch + 1,
                truncate_to=recovered.valid_bytes,
                fault_hook=jhook, registry=reg,
            )
            for spath, status, text in recovered.solutions:
                solutions.append(Solution(value=(status, text), path=spath))
            resume_completed = set(recovered.completed_keys)
            for task, evidence in recovered.poisoned:
                sup.quarantine(task.key())
                poisoned.append((task, evidence))
            frontier.extend(recovered.pending)
            journal.append(
                "resume", span=span, pending=len(recovered.pending),
                solutions=len(solutions), skipped=recovered.skipped,
                torn=recovered.torn,
            )
        else:
            root = PrefixTask(span=span)
            if self.journal_path is not None:
                journal = JournalWriter(
                    self.journal_path, fsync=self.fsync,
                    fault_hook=jhook, registry=reg,
                )
                journal.append(
                    "run_begin",
                    version=JOURNAL_VERSION,
                    program=digest,
                    span=span,
                    strategy=self.strategy_name,
                    workers=self.num_workers,
                    batch_size=self.batch_size,
                    subtree_depth=self.config.subtree_depth,
                    task_step_budget=self.config.task_step_budget,
                    max_steps=self.config.max_steps_per_extension,
                    max_solutions=self.max_solutions,
                    replay_mode=self.replay_mode,
                    transport=self.transport_name,
                    lease_timeout=self.lease_timeout,
                    certified=(None if sites is None else not sites),
                    nondet_sites=(
                        None if sites is None
                        else [[pc, lint] for pc, lint in sites]
                    ),
                    root=root.to_record(),
                )
            frontier.push(root)

        poll = 0.02 if self.task_timeout is None else min(
            0.02, self.task_timeout / 4
        )

        # -- transport, leases, steal pool ------------------------------
        if self.transport_name == "tcp":
            host, port = self.listen if self.listen is not None else (
                "127.0.0.1", 0,
            )
            net_hook = (
                self.chaos.net_hook
                if self.chaos is not None
                and getattr(self.chaos, "has_net_faults", False)
                else None
            )
            transport = TcpTransport(
                self._ctx, host=host, port=port,
                worker_entry=_tcp_worker_entry, net_hook=net_hook,
                heartbeat_timeout=self.heartbeat_timeout,
                start_wid=self._next_wid,
            )
        else:
            transport = PipeTransport(
                self._ctx, _worker_main, start_wid=self._next_wid,
            )
        transport.start(program, run_config)
        self.transport_address = transport.address
        #: Wire-level observations (chaos net faults) arrive from the
        #: transport's loop thread; the tracer is single-threaded, so
        #: they are buffered here and drained into the trace by the
        #: coordinator loop.  deque.append is atomic under the GIL.
        wire_events: deque = deque()
        if self.transport_name == "tcp" and _TRACER.enabled:
            transport.on_wire_event = (
                lambda kind, **f: wire_events.append((kind, f))
            )

        #: Leases expire a bit *after* the stall detector would have
        #: fired: the stall path (which kills the worker) stays primary;
        #: lease expiry is the backstop for results lost in flight and
        #: for partitioned workers that still look healthy.
        lease_s = self.lease_timeout
        if lease_s is None and self.task_timeout is not None:
            lease_s = self.task_timeout * 1.5
        leases = LeaseTable(
            duration=lease_s,
            start_fence=(
                recovered.last_fence + 1 if recovered is not None else 1
            ),
        )
        #: Every task key settled this run (superset of the resumed
        #: completed set): the second line of defence against double
        #: counting, behind fence matching.
        completed_keys: set[tuple[int, ...]] = set(resume_completed)
        #: wids with unfulfilled steal announcements, FIFO.
        steal_queue: deque[int] = deque()
        by_wid: dict[int, _WorkerHandle] = {}

        def make_handle(ep, slot_index: int) -> _WorkerHandle:
            handle = _WorkerHandle(ep, slot_index)
            handle.last_progress = time.monotonic()
            by_wid[ep.wid] = handle
            return handle

        handles: list[Optional[_WorkerHandle]] = [
            make_handle(transport.spawn(), i)
            for i in range(self.num_workers)
        ]
        g_workers.set(self.num_workers)

        track_status = self._telemetry
        status_every = min(0.25, self.status_interval)
        last_refresh = 0.0

        def worker_health() -> list[dict]:
            health = sup.health()
            for entry in health:
                handle = handles[entry["slot"]]
                entry["worker"] = handle.wid if handle is not None else None
                entry["busy"] = bool(handle is not None and handle.busy)
            return health

        def maybe_refresh(force: bool = False) -> None:
            nonlocal last_refresh
            if not track_status:
                return
            now = time.monotonic()
            if not force and now - last_refresh < status_every:
                return
            last_refresh = now
            run_status.refresh(
                reg.state_dict(),
                pending=len(frontier),
                in_flight=sum(
                    len(h.pending) for h in handles if h is not None
                ),
                solutions=len(solutions),
                health=worker_health(),
            )

        maybe_refresh(force=True)
        if self.status_log is not None:
            logger = StatusLogger(
                run_status, self.status_log, interval=self.status_interval,
            ).start()

        def journal_append(rtype: str, **fields) -> None:
            if journal is not None:
                journal.append(rtype, **fields)

        def solutions_payload(task_solutions) -> list:
            return [
                [list(path), status, text]
                for path, status, text in task_solutions
            ]

        def batch_events(batch) -> list:
            """Recorded events every task in *batch* may replay through."""
            if nlog is None:
                return []
            picked: dict = {}
            for task in batch:
                for event in nlog.events_for_task(task.prefix):
                    picked[event.key()] = event
            return list(picked.values())

        def absorb_events(fresh_events) -> None:
            """Merge worker-recorded events and make them durable.

            The ``nondet`` record must land *before* the task's
            ``complete`` record: if the completion is later lost, the
            re-explored subtree replays these events and reproduces the
            durable solutions instead of re-rolling them.
            """
            if nlog is None or not fresh_events:
                return
            nlog.merge(fresh_events)
            journal_append(
                "nondet", events=[e.to_record() for e in fresh_events]
            )

        def push_tasks(tasks) -> None:
            for task in tasks:
                key = task.key()
                if key in completed_keys:
                    if key in resume_completed:
                        c_resume_filtered.inc()
                    continue
                if sup.is_poisoned(key):
                    continue  # quarantined: never re-dispatched
                frontier.push(task)

        def reclaim(handle: _WorkerHandle, reason: str) -> None:
            """Revoke *handle*'s leases, requeue the tasks (no blame).

            Used when the worker is believed healthy but its results
            were lost in flight (it announced a steal while the
            coordinator still held leases for it): the revocation
            fences off any late duplicate, the requeue re-executes.
            """
            tasks, handle.pending = list(handle.pending), []
            for task in tasks:
                lease = leases.revoke(task.key())
                if lease is None or lease.fence != task.fence:
                    continue  # superseded already (expired, re-granted)
                c_lease_expired.inc()
                journal_append("expire", task=task.to_record(),
                               fence=task.fence, worker=handle.wid,
                               reason=reason)
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.PARALLEL_LEASE_EXPIRED,
                        task=list(task.prefix), fence=task.fence,
                        worker=handle.wid,
                    )
                if (task.key() in completed_keys
                        or sup.is_poisoned(task.key())):
                    continue
                if task.attempt >= self.max_task_retries:
                    c_dropped.inc()
                    journal_append("drop", task=task.to_record())
                    if _TRACER.enabled:
                        _TRACER.emit(_events.PARALLEL_DROP, tasks=1)
                    continue
                c_retries.inc()
                frontier.push(task.retried())

        def fail_worker(slot, handle: _WorkerHandle, kind: str,
                        detail: str = "") -> None:
            """Account one worker death: blame, requeue, schedule respawn."""
            if flight is not None:
                flight.record_failure(
                    handle.wid, kind, detail,
                    task=(
                        list(handle.pending[0].prefix)
                        if handle.pending else None
                    ),
                )
                c_flight.inc()
            run_status.on_worker_failed(handle.wid)
            if kind == "timeout":
                c_timeouts.inc()
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_TIMEOUT, worker=handle.wid)
            else:
                c_crashes.inc()
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_CRASH, worker=handle.wid)
            # Sever trust in the endpoint.  For pipes this also
            # terminates the process; for TCP it only disconnects — a
            # partitioned worker cannot be signalled either, and its
            # possible resurfacing (with now-stale fences) is exactly
            # the case the lease table exists for.
            handle.ep.kill()
            # Fence off everything the worker still owed us: whatever
            # it delivers from here on settles as stale.
            leases.revoke_worker(handle.wid)
            # Workers run their batch in dispatch order and report per
            # task, so the first unreported task is the one that was
            # executing: the suspect.  Batch-mates are requeued without
            # an attempt bump — they are collateral, not culprits.
            suspect = handle.pending[0] if handle.pending else None
            decision = sup.record_failure(
                slot, handle.wid, kind,
                suspect.key() if suspect is not None else None, detail,
            )
            requeue: list[PrefixTask] = []
            if suspect is not None:
                if decision.poison:
                    c_poisoned.inc()
                    poisoned.append((suspect, decision.evidence))
                    journal_append("poisoned", task=suspect.to_record(),
                                   evidence=decision.evidence)
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.PARALLEL_POISONED,
                            task=list(suspect.prefix),
                            kills=len(decision.evidence),
                        )
                elif suspect.attempt >= self.max_task_retries:
                    c_dropped.inc()
                    journal_append("drop", task=suspect.to_record())
                    if _TRACER.enabled:
                        _TRACER.emit(_events.PARALLEL_DROP, tasks=1)
                else:
                    requeue.append(suspect.retried())
                requeue.extend(handle.pending[1:])
            handle.pending = []
            handles[slot.index] = None
            if by_wid.get(handle.wid) is handle:
                del by_wid[handle.wid]
            if requeue:
                c_retries.inc(len(requeue))
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_RETRY, worker=handle.wid,
                                 tasks=len(requeue))
                # Requeue lost tasks ahead of everything else so retries
                # bound the damage a flaky worker can do to latency.
                for task in requeue:
                    frontier.push(task)

        def register_join(ep, detail: str = "") -> None:
            """An external (or resurfaced) worker completed the
            handshake: give it a non-respawnable slot and let it steal."""
            slot = sup.add_slot(respawnable=False)
            handles.append(make_handle(ep, slot.index))
            c_joins.inc()
            g_workers.set(
                sum(1 for h in handles if h is not None)
            )
            journal_append("join", worker=ep.wid, detail=detail)
            if _TRACER.enabled:
                _TRACER.emit(_events.PARALLEL_JOIN, worker=ep.wid,
                             detail=detail)

        def run_degraded() -> None:
            """Finish the frontier in-process after pool collapse.

            The in-process engine is the same :class:`_SubtreeWorker`
            stack the workers run, so semantics are identical; fault
            and pipe hooks are stripped (injected worker faults would
            kill the coordinator, and there is no pipe).
            """
            local_config = dataclasses.replace(
                run_config, fault_hook=None, pipe_hook=None,
                collect_trace=False,
            )
            # The in-process worker records straight into the
            # coordinator's log; drained fresh events are journaled the
            # same way a remote worker's shipped events are.
            local = _SubtreeWorker(program, local_config, replay_log=nlog)
            while frontier:
                if (
                    self.max_solutions is not None
                    and len(solutions) >= self.max_solutions
                ):
                    break
                task = frontier.pop()
                journal_append("dispatch", task=task.to_record(), worker=-1)
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_BEGIN, worker=-1,
                        task=list(task.prefix), depth=task.depth,
                        span=task.span, attempt=task.attempt,
                    )
                remaining = (
                    None if self.max_solutions is None
                    else max(self.max_solutions - len(solutions), 0)
                )
                task_solutions, spilled = local.explore(task, remaining)
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.TASK_END, worker=-1,
                        task=list(task.prefix), span=task.span,
                        solutions=len(task_solutions), spilled=len(spilled),
                        explore_steps=local._steps_counter.value,
                        replay_steps=local._replay_counter.value,
                        task_s=local._task_timer.total_s,
                    )
                reg.merge_state(local.registry.state_dict())
                local.registry.reset()
                c_done.inc()
                c_spilled.inc(len(spilled))
                run_status.on_task_complete(
                    -1, task.fanouts, len(task_solutions),
                    [t.fanouts for t in spilled],
                )
                push_tasks(spilled)
                maybe_refresh()
                if local.recorder is not None:
                    fresh = local.recorder.drain_fresh()
                    if fresh:  # already merged: it records into nlog
                        journal_append(
                            "nondet",
                            events=[e.to_record() for e in fresh],
                        )
                journal_append(
                    "complete", task=task.to_record(),
                    solutions=solutions_payload(task_solutions),
                    spilled=[t.to_record() for t in spilled],
                )
                for spath, status, text in task_solutions:
                    solutions.append(Solution(value=(status, text), path=spath))

        try:
            while True:
                if (
                    self.max_solutions is not None
                    and len(solutions) >= self.max_solutions
                ):
                    stop_reason = "max_solutions"
                    break
                maybe_refresh()

                now = time.monotonic()
                for slot in sup.respawn_ready(now):
                    replacement = make_handle(transport.spawn(), slot.index)
                    handles[slot.index] = replacement
                    sup.mark_running(slot)
                    c_respawns.inc()
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.PARALLEL_RESPAWN, worker=replacement.wid,
                            slot=slot.index, failures=slot.failures,
                        )

                if sup.collapsed() and (
                    frontier
                    or any(h is not None and h.busy for h in handles)
                ):
                    degraded = True
                    break

                # Fulfil steal announcements off the frontier.  Workers
                # *pull*: an idle worker announces capacity and the
                # coordinator grants it a leased batch — nothing is
                # pushed unsolicited, so a slow worker never queues work
                # it cannot start while a fast one sits idle.
                while steal_queue and frontier:
                    wid = steal_queue.popleft()
                    handle = by_wid.get(wid)
                    if handle is None or handle.busy:
                        continue  # died or was re-dispatched meanwhile
                    slot = sup.slots[handle.slot_index]
                    if slot.state is not SlotState.RUNNING:
                        continue
                    if not handle.ep.alive():
                        fail_worker(slot, handle, "crash",
                                    "worker died while idle")
                        continue
                    want = max(1, min(handle.want, self.batch_size))
                    handle.want = 0
                    batch = frontier.take_batch(want)
                    remaining = (
                        None if self.max_solutions is None
                        else max(self.max_solutions - len(solutions), 0)
                    )
                    granted = [
                        leases.grant(task, handle.wid).task for task in batch
                    ]
                    handle.pending = list(granted)
                    handle.last_progress = time.monotonic()
                    try:
                        handle.ep.send(("work", granted, remaining,
                                        batch_events(granted)))
                    except EndpointDown:
                        fail_worker(slot, handle, "crash",
                                    "dispatch channel closed")
                        continue
                    c_dispatches.inc()
                    c_tasks.inc(len(granted))
                    for task in granted:
                        journal_append("dispatch", task=task.to_record(),
                                       worker=handle.wid)
                    if _TRACER.enabled:
                        _TRACER.emit(_events.PARALLEL_DISPATCH,
                                     worker=handle.wid, tasks=len(granted))

                busy_count = sum(
                    1 for h in handles if h is not None and h.busy
                )
                if not busy_count and not frontier:
                    break  # frontier exhausted, nothing in flight
                timeout = poll
                if not busy_count:
                    # Everything runnable is mid-backoff (or tasks were
                    # just requeued): wait to the nearest respawn
                    # deadline instead of spinning.  The transport still
                    # gets polled — a TCP pool can gain an external
                    # joiner while every local slot is down.
                    due = sup.next_respawn_due()
                    if due is not None:
                        timeout = min(poll, max(0.0, due - time.monotonic()))

                events = transport.poll(max(0.0, timeout))
                now = time.monotonic()
                while wire_events:
                    kind, f = wire_events.popleft()
                    if kind == "net_fault" and _TRACER.enabled:
                        _TRACER.emit(
                            _events.CHAOS_NET_FAULT,
                            action=f.get("kind"),
                            direction=f.get("direction"),
                            worker=f.get("worker"), seq=f.get("seq"),
                        )
                for ev in events:
                    if ev.kind == "join":
                        register_join(ev.endpoint, ev.detail)
                        continue
                    handle = by_wid.get(ev.endpoint.wid)
                    if handle is None or handle.ep is not ev.endpoint:
                        continue  # failed/replaced earlier this sweep
                    slot = sup.slots[handle.slot_index]
                    if ev.kind == "down":
                        if ev.protocol_error:
                            c_proto.inc()
                        fail_worker(slot, handle, ev.fail_kind or "crash",
                                    ev.detail)
                        continue
                    msg = ev.payload
                    if (
                        not isinstance(msg, tuple)
                        or len(msg) < 3
                        or msg[0] not in ("task", "error", "hb", "steal")
                        or (msg[0] == "task" and len(msg) != 9)
                        or (msg[0] == "hb"
                            and not (len(msg) == 3
                                     and isinstance(msg[2], HeartbeatRecord)))
                        or (msg[0] == "steal"
                            and not (len(msg) == 3
                                     and isinstance(msg[2], int)))
                    ):
                        c_proto.inc()
                        fail_worker(slot, handle, "crash",
                                    f"malformed result message {msg!r}"[:200])
                        continue
                    if msg[0] == "steal":
                        if handle.busy:
                            # The worker says it is idle while the
                            # coordinator still holds leases for it: its
                            # results were lost in flight (dropped
                            # frames, a reconnect).  Reclaim eagerly —
                            # the requeue re-executes, and the revoked
                            # fences turn any late duplicate delivery
                            # into a discarded stale.
                            reclaim(handle, "steal while leases held")
                        handle.want = msg[2]
                        if handle.wid not in steal_queue:
                            steal_queue.append(handle.wid)
                            c_steals.inc()
                            if _TRACER.enabled:
                                _TRACER.emit(
                                    _events.PARALLEL_STEAL,
                                    worker=handle.wid, want=msg[2],
                                )
                        continue
                    if msg[0] == "hb":
                        record: HeartbeatRecord = msg[2]
                        c_heartbeats.inc()
                        progressed = run_status.observe_heartbeat(record)
                        if flight is not None and record.events:
                            flight.extend(handle.wid, record.events)
                        if progressed and handle.busy:
                            # The worker's step counter grew: its task
                            # is alive, defer the stall timeout.  (A
                            # stalled worker cannot beat, so real
                            # stalls still trip it.)  Leases ride the
                            # same signal — observed progress renews
                            # ownership.
                            handle.last_progress = now
                            leases.extend_worker(handle.wid, now)
                        continue
                    if msg[0] == "error":
                        if str(msg[2]).startswith(
                            "ReplayDivergenceError:"
                        ):
                            # Surface a worker's replay divergence as
                            # itself: callers catch the typed error the
                            # same way whichever engine detected it.
                            raise ReplayDivergenceError(
                                f"worker {msg[1]}: {msg[2]}"
                            )
                        raise WorkerError(msg[1], msg[2])
                    (_kind, _wid, key, fence, task_solutions, spilled,
                     state, segment, fresh_events) = msg
                    key = tuple(key)
                    handle.last_progress = now
                    if leases.settle(key, fence) == "stale":
                        # A fenced-off result: the lease expired (or the
                        # worker was declared down) and the task was
                        # re-dispatched, or this is a duplicated
                        # delivery.  Discard it *wholesale* — no
                        # registry merge, no solutions, no spills, no
                        # journal complete — so the accepted execution
                        # remains the only accounting of this subtree.
                        c_fenced.inc()
                        journal_append(
                            "stale", task={"prefix": list(key)},
                            fence=fence, worker=handle.wid,
                        )
                        if _TRACER.enabled:
                            _TRACER.emit(
                                _events.PARALLEL_FENCED_STALE,
                                worker=handle.wid, task=list(key),
                                fence=fence,
                            )
                        for i, task in enumerate(handle.pending):
                            if task.key() == key and task.fence == fence:
                                handle.pending.pop(i)
                                break
                        continue
                    completed: Optional[PrefixTask] = None
                    for i, task in enumerate(handle.pending):
                        if task.key() == key:
                            completed = handle.pending.pop(i)
                            break
                    completed_keys.add(key)
                    sup.record_success(slot)
                    c_done.inc()
                    c_spilled.inc(len(spilled))
                    reg.merge_state(state)
                    run_status.on_task_complete(
                        handle.wid,
                        completed.fanouts if completed is not None else (),
                        len(task_solutions),
                        [t.fanouts for t in spilled],
                    )
                    push_tasks(spilled)
                    absorb_events(fresh_events)
                    journal_append(
                        "complete",
                        task=(
                            completed.to_record() if completed is not None
                            else {"prefix": list(key), "fanouts": []}
                        ),
                        worker=handle.wid,
                        solutions=solutions_payload(task_solutions),
                        spilled=[t.to_record() for t in spilled],
                    )
                    for spath, status, text in task_solutions:
                        solutions.append(
                            Solution(value=(status, text), path=spath)
                        )
                    if _TRACER.enabled:
                        # Splice the worker's buffered segment in between
                        # its dispatch and its result event, so the merged
                        # stream stays causally ordered.
                        if segment:
                            c_trace_merged.inc(
                                _TRACER.ingest(segment, worker=handle.wid)
                            )
                        elif segment is None:
                            # The worker never collected: its events for
                            # this task are gone.  Count the loss.
                            c_trace_dropped.inc()
                        _TRACER.emit(
                            _events.PARALLEL_RESULT, worker=handle.wid,
                            solutions=len(task_solutions),
                            spilled=len(spilled),
                        )
                for slot in sup.slots:
                    handle = handles[slot.index]
                    if handle is None or not handle.busy:
                        continue  # failed or drained earlier this sweep
                    if not handle.ep.alive():
                        fail_worker(slot, handle, "crash",
                                    "worker process died")
                    elif (
                        self.task_timeout is not None
                        and now - handle.last_progress > self.task_timeout
                    ):
                        fail_worker(
                            slot, handle, "timeout",
                            f"no progress for {self.task_timeout:.1f}s",
                        )

                # Lease expiry is the *backstop* behind the stall
                # detector above (leases outlive the task timeout by
                # design): it fires when results were lost in flight or
                # a partitioned worker still looks alive.  The expired
                # fence is retired, the task requeued under a fresh one;
                # whatever the old holder eventually delivers settles
                # stale.
                for lease in leases.expired(now):
                    c_lease_expired.inc()
                    journal_append(
                        "expire", task=lease.task.to_record(),
                        fence=lease.fence, worker=lease.wid,
                        reason="lease expired",
                    )
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.PARALLEL_LEASE_EXPIRED,
                            task=list(lease.key), fence=lease.fence,
                            worker=lease.wid,
                        )
                    holder = by_wid.get(lease.wid)
                    if holder is not None:
                        holder.pending = [
                            t for t in holder.pending
                            if not (t.key() == lease.key
                                    and t.fence == lease.fence)
                        ]
                    if (lease.key in completed_keys
                            or sup.is_poisoned(lease.key)):
                        continue
                    if lease.task.attempt >= self.max_task_retries:
                        c_dropped.inc()
                        journal_append("drop", task=lease.task.to_record())
                        if _TRACER.enabled:
                            _TRACER.emit(_events.PARALLEL_DROP, tasks=1)
                        continue
                    c_retries.inc()
                    frontier.push(lease.task.retried())

            if degraded:
                # Reclaim in-flight tasks, drop the dead pool, and
                # finish what remains on an in-process engine.  Every
                # live lease is drained with it: from here the
                # coordinator is the only executor, so any late remote
                # result is stale by construction.
                for slot in sup.slots:
                    handle = handles[slot.index]
                    if handle is not None and handle.pending:
                        frontier.extend(handle.pending)
                        handle.pending = []
                leases.drain()
                self._shutdown([h for h in handles if h is not None])
                handles = [None] * len(handles)
                by_wid.clear()
                steal_queue.clear()
                g_workers.set(0)
                c_degraded.inc()
                if _TRACER.enabled:
                    _TRACER.emit(_events.PARALLEL_DEGRADED,
                                 pending=len(frontier))
                journal_append("degraded", pending=len(frontier))
                run_degraded()

            # Normal completion: seal the journal.  Any exception path
            # (worker error, chaos kill) skips this, leaving the journal
            # resumable.
            if (
                stop_reason is None
                and self.max_solutions is not None
                and len(solutions) >= self.max_solutions
            ):
                stop_reason = "max_solutions"
            if stop_reason is None and poisoned:
                stop_reason = "tasks_poisoned"
            if stop_reason is None and c_dropped.value:
                stop_reason = "task_retries_exhausted"
            if self.max_solutions is not None:
                del solutions[self.max_solutions:]
            journal_append(
                "run_end", stop_reason=stop_reason,
                exhausted=stop_reason is None, solutions=len(solutions),
            )
        finally:
            self._shutdown([h for h in handles if h is not None])
            transport.close()
            # Worker ids stay unique across a coordinator's runs even
            # though each run builds a fresh transport.
            self._next_wid = transport._next_wid
            g_workers.set(0)
            if journal is not None:
                journal.close()
            # Seal the status on every exit path (exceptions included):
            # uncommitted heartbeat states are dropped, so from here the
            # status metrics mirror the engine registry.
            run_status.finalize(
                reg.state_dict(), pending=len(frontier),
                solutions=len(solutions), health=worker_health(),
                stop_reason=stop_reason, degraded=degraded,
            )
            if logger is not None:
                logger.stop()
            if server is not None:
                server.stop()

        stats.peak_frontier = max(stats.peak_frontier, frontier.peak)
        stats.extra.update({
            "workers": self.num_workers,
            "transport": self.transport_name,
            "strategy_order": self.strategy_name,
            "tasks_dispatched": c_tasks.value,
            "tasks_completed": c_done.value,
            "tasks_spilled": c_spilled.value,
            "tasks_retried": c_retries.value,
            "tasks_dropped": c_dropped.value,
            "tasks_poisoned": len(poisoned),
            "worker_crashes": c_crashes.value,
            "task_timeouts": c_timeouts.value,
            "respawns": c_respawns.value,
            "protocol_errors": c_proto.value,
            "degraded": bool(c_degraded.value),
            "min_workers": self.supervisor_policy.min_workers,
            "steals": c_steals.value,
            "leases_expired": c_lease_expired.value,
            "fenced_stale": c_fenced.value,
            "worker_joins": c_joins.value,
            "lease_timeout": lease_s,
            "peak_task_frontier": frontier.peak,
            "replay_steps": reg.counter("parallel.replay_steps").value,
            "guest_instructions": reg.counter("parallel.guest_steps").value,
            "trace_events_merged": c_trace_merged.value,
            "trace_dropped": c_trace_dropped.value,
            "trace_span": span,
            "snapshots_taken": reg.counter("snapshot.taken").value,
            "snapshots_restored": reg.counter("snapshot.restored").value,
            "frames_copied": reg.counter("mem.frames_copied").value,
        })
        if self.transport_name == "tcp":
            stats.extra["transport_stats"] = dict(transport.stats)
        if nlog is not None:
            stats.extra.update({
                "replay_mode": self.replay_mode,
                "nondet_events": len(nlog),
                "nondet_conflicts": nlog.conflicts,
            })
        if self.journal_path is not None:
            stats.extra.update({
                "journal": self.journal_path,
                "journal_records": reg.counter("journal.records").value,
                "journal_fsyncs": reg.counter("journal.fsyncs").value,
                "resumed": recovered is not None,
                "resume_pending": len(recovered.pending) if recovered else 0,
                "resume_solutions": (
                    len(recovered.solutions) if recovered else 0
                ),
                "journal_skipped": recovered.skipped if recovered else 0,
                "journal_torn": recovered.torn if recovered else 0,
                "resume_spills_filtered": c_resume_filtered.value,
            })
        if poisoned:
            stats.extra["poisoned_tasks"] = [
                {"task": task.to_record(), "evidence": evidence}
                for task, evidence in poisoned
            ]
        if track_status:
            stats.extra["heartbeats"] = c_heartbeats.value
            if server is not None:
                stats.extra["status_url"] = server.url
            if self.status_log is not None:
                stats.extra["status_log"] = self.status_log
            if flight is not None:
                stats.extra["flight_dumps"] = list(flight.dumps)
        # Re-seal after the peak_frontier gauge write above, so the
        # status metrics equal the registry's true final state exactly.
        run_status.finalize(
            reg.state_dict(), pending=len(frontier),
            solutions=len(solutions), health=worker_health(),
            stop_reason=stop_reason, degraded=degraded,
        )
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self.strategy_name,
            exhausted=stop_reason is None,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------

    def _shutdown(self, handles: list[_WorkerHandle],
                  grace: float = 2.0) -> None:
        """Stop every worker; escalate poison -> terminate -> kill.

        Idle workers get the poison pill; busy ones are terminated at
        once (their tasks are lost by construction).  Each escalation
        stage shares one deadline across the pool, so shutdown latency
        is bounded by ~2 * grace however many workers are stuck, and
        the final blocking ``join`` after SIGKILL guarantees every
        local child is reaped — no zombies survive this call.
        External (joined) TCP workers have no local process: poisoning
        them asks them to exit and closing the endpoint severs the
        connection, which is all a remote peer can be given.
        """
        for handle in handles:
            if handle.ep.alive() and not handle.busy:
                handle.ep.poison()
            else:
                # No trusted connection (or mid-task): go straight to
                # the signal.  terminate() checks the local process
                # itself — endpoint-level trust is irrelevant here, a
                # distrusted-but-running worker must still be stopped.
                handle.ep.terminate()
        deadline = time.monotonic() + grace
        for handle in handles:
            handle.ep.join(timeout=max(0.0, deadline - time.monotonic()))
        for handle in handles:
            handle.ep.terminate()
        deadline = time.monotonic() + grace
        for handle in handles:
            handle.ep.join(timeout=max(0.0, deadline - time.monotonic()))
        for handle in handles:
            handle.ep.kill_hard()
        for handle in handles:
            # SIGKILL cannot be caught: this join terminates, and it is
            # what actually reaps the local child (no zombie left
            # behind).  Endpoint close severs any remaining connection.
            handle.ep.join()
            handle.ep.close()
