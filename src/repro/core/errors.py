"""Exception types shared by all backtracking engines."""

from __future__ import annotations


class SearchError(Exception):
    """Base class for engine-level errors."""


class GuessFail(Exception):
    """Raised inside a guest by ``sys.fail()``; never caught by guests.

    Like Prolog's ``fail``, it "simply discards the currently executing
    extension step and never returns" (§3.1).  Guests must let it
    propagate — catching it would break the single-path illusion.
    """


class GuessError(SearchError):
    """Misuse of the guess API (bad fan-out, strategy change mid-search,
    hint-length mismatch, nondeterministic guest detected, ...)."""


class BudgetExceeded(SearchError):
    """An exploration budget (evaluations, solutions, depth) was hit.

    Engines catch this internally and mark the result as truncated; it is
    exposed for callers driving an engine step by step.
    """
