"""Exception types shared by all backtracking engines."""

from __future__ import annotations


class SearchError(Exception):
    """Base class for engine-level errors."""


class GuessFail(Exception):
    """Raised inside a guest by ``sys.fail()``; never caught by guests.

    Like Prolog's ``fail``, it "simply discards the currently executing
    extension step and never returns" (§3.1).  Guests must let it
    propagate — catching it would break the single-path illusion.
    """


class GuessError(SearchError):
    """Misuse of the guess API (bad fan-out, strategy change mid-search,
    hint-length mismatch, nondeterministic guest detected, ...)."""


class SnapshotError(SearchError):
    """Base class for snapshot lifecycle violations."""


class SnapshotDiscardedError(SnapshotError, ValueError):
    """An operation targeted a snapshot that was already discarded.

    Raised by ``SnapshotManager.restore`` (restoring freed state would
    read freed frames) and by ``SnapshotManager.discard`` on a double
    discard (the classic use-after-free shape the Silhouette snapshot-bug
    corpus catalogues; silently ignoring it hides refcount bugs).
    Subclasses ``ValueError`` for compatibility with callers that caught
    the old untyped error.
    """

    def __init__(self, sid: int, operation: str):
        self.sid = sid
        self.operation = operation
        super().__init__(f"{operation} of discarded snapshot {sid}")


class BudgetExceeded(SearchError):
    """An exploration budget (evaluations, solutions, depth) was hit.

    Engines catch this internally and mark the result as truncated; it is
    exposed for callers driving an engine step by step.
    """
