"""Exception types shared by all backtracking engines."""

from __future__ import annotations


class SearchError(Exception):
    """Base class for engine-level errors."""


class GuessFail(Exception):
    """Raised inside a guest by ``sys.fail()``; never caught by guests.

    Like Prolog's ``fail``, it "simply discards the currently executing
    extension step and never returns" (§3.1).  Guests must let it
    propagate — catching it would break the single-path illusion.
    """


class GuessError(SearchError):
    """Misuse of the guess API (bad fan-out, strategy change mid-search,
    hint-length mismatch, nondeterministic guest detected, ...)."""


class SnapshotError(SearchError):
    """Base class for snapshot lifecycle violations."""


class SnapshotDiscardedError(SnapshotError, ValueError):
    """An operation targeted a snapshot that was already discarded.

    Raised by ``SnapshotManager.restore`` (restoring freed state would
    read freed frames) and by ``SnapshotManager.discard`` on a double
    discard (the classic use-after-free shape the Silhouette snapshot-bug
    corpus catalogues; silently ignoring it hides refcount bugs).
    Subclasses ``ValueError`` for compatibility with callers that caught
    the old untyped error.
    """

    def __init__(self, sid: int, operation: str):
        self.sid = sid
        self.operation = operation
        super().__init__(f"{operation} of discarded snapshot {sid}")


class VerificationError(SearchError):
    """Static verification of a guest program failed under strict mode.

    Raised before any guest instruction executes: the analyzer found
    error-severity lints or could not certify the program deterministic,
    so an engine configured with ``verify="strict"`` refuses to run (and
    in particular refuses to shard it across replaying workers).
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class ReplayDivergenceError(GuessError):
    """A replayed decision prefix diverged from the original execution.

    Raised during task rehydration in the process-parallel engine when
    the guest's guess sequence no longer matches the recorded prefix —
    the signature of a nondeterministic guest.  Carries enough context
    to debug the divergence and, when the program was analyzed, the
    static nondeterminism verdict for the offending site.
    """

    def __init__(
        self,
        message: str,
        *,
        prefix: tuple[int, ...] = (),
        position: int | None = None,
        pc: int | None = None,
        expected: int | None = None,
        actual: int | None = None,
        verdict: str | None = None,
    ):
        self.prefix = tuple(prefix)
        self.position = position
        self.pc = pc
        self.expected = expected
        self.actual = actual
        self.verdict = verdict
        details = [message]
        if prefix:
            shown = ",".join(str(d) for d in self.prefix[:16])
            if len(self.prefix) > 16:
                shown += ",..."
            details.append(f"decision prefix [{shown}]")
        if position is not None:
            details.append(f"diverged at depth {position}")
        if pc is not None:
            details.append(f"guest pc {pc:#x}")
        if verdict:
            details.append(f"analyzer verdict: {verdict}")
        super().__init__("; ".join(details))


class InputExhaustedError(SearchError):
    """An input source ran dry while the consumer still needed data.

    Raised by :class:`repro.libos.console.InputSource` (``on_exhausted=
    "error"``) when a guest reads past the scripted stdin, and by
    :class:`repro.core.interactive.InteractiveSearch` when the driver
    feeds a sequence number with no pending extension — both are the
    same shape of bug (the consumer asked for input nobody supplied) and
    both used to surface as raw ``KeyError``/silence.
    """

    def __init__(self, message: str, *, consumed: int | None = None):
        self.consumed = consumed
        if consumed is not None:
            message = f"{message} (after {consumed} item(s) consumed)"
        super().__init__(message)


class BudgetExceeded(SearchError):
    """An exploration budget (evaluations, solutions, depth) was hit.

    Engines catch this internally and mark the result as truncated; it is
    exposed for callers driving an engine step by step.
    """


class JournalError(SearchError):
    """Base class for run-journal failures (I/O, format, resume)."""


class ResumeMismatchError(JournalError):
    """A resumed journal does not belong to the run being resumed.

    Raised before any guest instruction executes when the journaled
    program digest (or analyzer certificate state) differs from the
    program handed to the resuming engine — replaying another program's
    decision prefixes would explore garbage, so the engine refuses.
    """

    def __init__(self, field: str, recorded, current):
        self.field = field
        self.recorded = recorded
        self.current = current
        super().__init__(
            f"journal does not match this run: {field} was "
            f"{recorded!r} at record time, is {current!r} now"
        )


class CoordinatorKilled(SearchError):
    """The chaos harness killed the coordinator mid-run.

    Simulates ``kill -9`` of the coordinating process at a chosen
    journal epoch: the exception is raised from inside the journal
    writer, so no later record reaches the journal — exactly the state
    an interrupted run leaves on disk.  Callers resume the run from the
    journal with ``ProcessParallelEngine(journal=..., resume=True)``.
    """

    def __init__(self, epoch: int):
        self.epoch = epoch
        super().__init__(f"coordinator killed by chaos plan at journal epoch {epoch}")
