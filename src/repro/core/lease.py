"""Lease-based task ownership with monotonic fencing tokens.

On a single host, "the worker died" is a fact: the coordinator holds the
process handle and the pipe EOF is authoritative.  Over a network it is
only ever a *suspicion* — a partitioned worker looks exactly like a dead
one, keeps computing, and may deliver its result after the coordinator
has re-dispatched the task elsewhere.  Without extra machinery that
late result double-counts solutions and breaks the engine's exact
work-conservation invariant.

The classic fix (Chubby/GFS lineage) is leases plus fencing:

* every dispatched task carries a **fencing token** drawn from one
  strictly monotonic counter; the :class:`LeaseTable` remembers which
  token is the *live* one per task key;
* a lease that sees no progress for its duration **expires**: the task
  is requeued and its next grant gets a higher token;
* a result is accepted only if its token matches the live lease
  (:meth:`settle` → ``"ok"``).  Anything else — expired lease, earlier
  grant, duplicated delivery, already-settled key — is **stale** and the
  engine discards it wholesale: no registry merge, no solutions, no
  spills, no journal ``complete``.  The re-execution elsewhere is the
  only accounting of that subtree, so the solution multiset and step
  counts match the sequential run exactly even when a presumed-dead
  worker resurfaces.

The table is pure bookkeeping over an injected clock (deterministic
tests); it never talks to workers or timers itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.search.shard import PrefixTask


@dataclass
class Lease:
    """One live grant: *task* owned by *wid* until *expires_at*."""

    key: tuple
    fence: int
    wid: int
    task: PrefixTask
    granted_at: float
    expires_at: Optional[float]  # None = no expiry (leases disabled)


class LeaseTable:
    """Ownership registry: one live lease per task key, fenced.

    Parameters
    ----------
    duration:
        Lease lifetime in seconds; ``None`` disables expiry (fencing
        still applies — late results from failed workers are still
        refused, they just are not *timed* out).
    start_fence:
        First token to hand out; a resumed coordinator seeds this past
        the journal's highest recorded fence so tokens stay monotonic
        across coordinator lifetimes.
    clock:
        Monotonic time source (injected for deterministic tests).
    """

    def __init__(self, duration: Optional[float] = None,
                 start_fence: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if duration is not None and duration <= 0:
            raise ValueError("lease duration must be > 0")
        if start_fence < 1:
            raise ValueError("start_fence must be >= 1")
        self.duration = duration
        self._clock = clock
        self._next_fence = start_fence
        self._live: dict[tuple, Lease] = {}

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    @property
    def next_fence(self) -> int:
        return self._next_fence

    def holder(self, key: tuple) -> Optional[int]:
        lease = self._live.get(tuple(key))
        return lease.wid if lease is not None else None

    def owned_by(self, wid: int) -> list[Lease]:
        return [l for l in self._live.values() if l.wid == wid]

    # -- transitions ---------------------------------------------------

    def grant(self, task: PrefixTask, wid: int) -> Lease:
        """Lease *task* to *wid* under a fresh fencing token.

        Returns the lease; ``lease.task`` is the task with its ``fence``
        field stamped — that copy is what travels to the worker and what
        the journal records.  Granting a key that is already live
        supersedes the old lease (its token is fenced off).
        """
        fence = self._next_fence
        self._next_fence += 1
        now = self._clock()
        lease = Lease(
            key=task.key(),
            fence=fence,
            wid=wid,
            task=task._replace(fence=fence),
            granted_at=now,
            expires_at=(None if self.duration is None
                        else now + self.duration),
        )
        self._live[lease.key] = lease
        return lease

    def settle(self, key: tuple, fence: int) -> str:
        """Account a result for (*key*, *fence*): ``"ok"`` or ``"stale"``.

        ``"ok"`` consumes the lease; any later settle of the same key is
        stale by construction (no live lease), so a duplicated result
        delivery can never double-count.
        """
        key = tuple(key)
        lease = self._live.get(key)
        if lease is None or lease.fence != fence:
            return "stale"
        del self._live[key]
        return "ok"

    def revoke(self, key: tuple) -> Optional[Lease]:
        """Drop the live lease for *key* (its token becomes stale)."""
        return self._live.pop(tuple(key), None)

    def revoke_worker(self, wid: int) -> list[Lease]:
        """Drop every live lease owned by *wid* (worker declared down)."""
        mine = [l for l in self._live.values() if l.wid == wid]
        for lease in mine:
            del self._live[lease.key]
        return mine

    def extend_worker(self, wid: int,
                      now: Optional[float] = None) -> None:
        """Push out expiry for *wid*'s leases (observed progress)."""
        if self.duration is None:
            return
        if now is None:
            now = self._clock()
        deadline = now + self.duration
        for lease in self._live.values():
            if lease.wid == wid:
                lease.expires_at = deadline

    def expired(self, now: Optional[float] = None) -> list[Lease]:
        """Pop and return every lease past its deadline."""
        if self.duration is None:
            return []
        if now is None:
            now = self._clock()
        out = [
            l for l in self._live.values()
            if l.expires_at is not None and now >= l.expires_at
        ]
        for lease in out:
            del self._live[lease.key]
        return out

    def drain(self) -> Iterable[Lease]:
        """Pop every live lease (coordinator shutdown/degrade path)."""
        leases = list(self._live.values())
        self._live.clear()
        return leases
