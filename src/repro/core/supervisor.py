"""Worker-pool supervision: respawn, circuit-break, degrade.

The cluster's original failure handling was fail-and-retry bookkeeping:
a dead worker's tasks were requeued (attempt-bumped) and a replacement
was spawned immediately.  That policy melts down in two realistic
regimes — a *flaky host* (every immediate respawn dies again, burning
CPU in a crash loop) and a *poisonous task* (one pathological subtree
serially kills every worker that touches it, and its batch-mates burn
their retry budgets as collateral damage).

:class:`WorkerSupervisor` replaces it with a state machine per worker
slot and a circuit breaker per task:

* **Slots**, not workers: the pool has a fixed number of slots; each
  failure of the worker occupying a slot schedules a respawn with
  exponential backoff plus deterministic jitter.  A slot whose workers
  die ``max_slot_failures`` times consecutively is marked ``DEAD``
  (the host is presumed hostile to it); any successful task completion
  resets the streak.
* **Blame the head**: workers execute a dispatched batch in order and
  report per task, so the first unreported task is the one that was
  running when the worker died.  Only that *suspect* has its attempt
  bumped; batch-mates are requeued untouched — innocent tasks can no
  longer exhaust their retries by sharing a batch with a poisonous one.
* **Circuit breaker**: a task whose suspected kills span
  ``poison_threshold`` *distinct workers* is poisoned — quarantined
  with its accumulated evidence (kind, worker, attempt per kill)
  instead of being retried or silently dropped.  The journal records
  the quarantine durably.
* **Graceful degradation**: when fewer than ``min_workers`` slots
  remain serviceable the engine stops paying process overhead for a
  pool that cannot sustain it and finishes the remaining frontier on an
  in-process engine (see ``ProcessParallelEngine._run_degraded``).

The supervisor is pure bookkeeping — it never spawns or kills anything
itself.  The engine asks it what to do; that keeps every transition unit
testable without processes.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


class SlotState(enum.Enum):
    RUNNING = "running"
    BACKOFF = "backoff"
    DEAD = "dead"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs governing respawn, poisoning and degradation."""

    #: Below this many serviceable (non-DEAD) slots, degrade to
    #: in-process execution rather than aborting the run.
    min_workers: int = 1
    #: A task suspected of killing this many *distinct* workers is
    #: poisoned (quarantined with evidence, never re-dispatched).
    poison_threshold: int = 3
    #: Backoff before respawning slot failure k (consecutive):
    #: ``backoff_base * 2**(k-1)`` seconds, capped at ``backoff_max``,
    #: +/- ``backoff_jitter`` fraction of deterministic jitter.
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    #: Consecutive worker deaths after which a slot is marked DEAD.
    max_slot_failures: int = 4
    #: Seed for the jitter stream (deterministic tests and chaos runs).
    seed: int = 0


@dataclass
class WorkerSlot:
    """Scheduling state of one position in the worker pool."""

    index: int
    state: SlotState = SlotState.RUNNING
    #: Consecutive failures since the last completed task.
    failures: int = 0
    total_failures: int = 0
    respawns: int = 0
    #: Monotonic deadline at which a BACKOFF slot may respawn.
    respawn_due: float = 0.0
    #: False for slots backing *external* workers (elastic TCP joins):
    #: the engine cannot spawn a replacement into them, so a failure
    #: sends the slot straight to DEAD instead of BACKOFF.
    respawnable: bool = True


@dataclass
class FailureDecision:
    """What the engine should do about one worker death."""

    slot: WorkerSlot
    #: True when the suspect task crossed the poison threshold.
    poison: bool = False
    #: Accumulated evidence for the suspect task (all its kills so far).
    evidence: list = field(default_factory=list)
    #: Backoff delay scheduled before this slot respawns (0 when DEAD).
    backoff: float = 0.0
    #: True when this failure killed the slot for good.
    slot_died: bool = False


class WorkerSupervisor:
    """Tracks slot health and task blame for the cluster engine."""

    def __init__(self, workers: int, policy: Optional[SupervisorPolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy if policy is not None else SupervisorPolicy()
        if self.policy.min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if self.policy.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        self._clock = clock
        self._rng = random.Random(self.policy.seed)
        self.slots = [WorkerSlot(index=i) for i in range(workers)]
        #: task key -> list of evidence dicts (one per suspected kill).
        self._evidence: dict[tuple, list[dict]] = {}
        #: task key -> set of worker ids it is suspected of killing.
        self._killers: dict[tuple, set[int]] = {}
        self._poisoned_keys: set[tuple] = set()

    # -- queries -------------------------------------------------------

    def serviceable(self) -> int:
        """Slots that are not DEAD (RUNNING or recovering in BACKOFF)."""
        return sum(1 for s in self.slots if s.state is not SlotState.DEAD)

    def add_slot(self, respawnable: bool = True) -> WorkerSlot:
        """Grow the pool by one slot (elastic membership: a worker
        joined over the network mid-run).  External slots are not
        respawnable — the engine cannot spawn a replacement into them,
        so their failure is terminal for the slot — but while alive
        they count as serviceable capacity like any other: a pool whose
        local workers all died but which still has a joined worker is
        not collapsed."""
        slot = WorkerSlot(index=len(self.slots), respawnable=respawnable)
        self.slots.append(slot)
        return slot

    def collapsed(self) -> bool:
        """True when the pool can no longer sustain the configured floor."""
        floor = max(1, self.policy.min_workers)
        return self.serviceable() < floor

    def respawn_ready(self, now: Optional[float] = None) -> list[WorkerSlot]:
        """BACKOFF slots whose respawn deadline has passed."""
        if now is None:
            now = self._clock()
        return [
            s for s in self.slots
            if s.state is SlotState.BACKOFF and now >= s.respawn_due
        ]

    def next_respawn_due(self) -> Optional[float]:
        """Earliest respawn deadline among BACKOFF slots, or None."""
        due = [
            s.respawn_due for s in self.slots if s.state is SlotState.BACKOFF
        ]
        return min(due) if due else None

    def is_poisoned(self, key: tuple) -> bool:
        return key in self._poisoned_keys

    def health(self, now: Optional[float] = None) -> list[dict]:
        """JSON-safe per-slot view for the live-telemetry exporters.

        One dict per slot: its state-machine state, failure streak and
        lifetime counts, and (for BACKOFF slots) seconds until the
        respawn is due.  The engine decorates each entry with the id of
        the worker currently occupying the slot before handing the list
        to :class:`~repro.obs.status.RunStatus`.
        """
        if now is None:
            now = self._clock()
        out: list[dict] = []
        for slot in self.slots:
            entry: dict = {
                "slot": slot.index,
                "state": slot.state.value,
                "failures": slot.failures,
                "total_failures": slot.total_failures,
                "respawns": slot.respawns,
            }
            if slot.state is SlotState.BACKOFF:
                entry["respawn_in_s"] = max(0.0, slot.respawn_due - now)
            out.append(entry)
        return out

    def evidence_for(self, key: tuple) -> list[dict]:
        return list(self._evidence.get(key, []))

    # -- transitions ---------------------------------------------------

    def mark_running(self, slot: WorkerSlot) -> None:
        """A replacement worker was spawned into *slot*."""
        slot.state = SlotState.RUNNING
        slot.respawns += 1

    def record_success(self, slot: WorkerSlot) -> None:
        """A worker in *slot* completed a task; its failure streak resets."""
        slot.failures = 0

    def quarantine(self, key: tuple) -> None:
        """Externally mark *key* poisoned (journal recovery uses this)."""
        self._poisoned_keys.add(key)

    def record_failure(
        self,
        slot: WorkerSlot,
        worker_id: int,
        kind: str,
        suspect_key: Optional[tuple],
        detail: str = "",
        now: Optional[float] = None,
    ) -> FailureDecision:
        """Account one worker death; decide respawn and poisoning.

        *kind* is ``"crash"`` or ``"timeout"``; *suspect_key* the key of
        the task that was executing (batch head), or None when the
        worker died idle.
        """
        if now is None:
            now = self._clock()
        decision = FailureDecision(slot=slot)
        slot.failures += 1
        slot.total_failures += 1
        if (not slot.respawnable
                or slot.failures >= self.policy.max_slot_failures):
            slot.state = SlotState.DEAD
            decision.slot_died = True
        else:
            delay = min(
                self.policy.backoff_base * (2 ** (slot.failures - 1)),
                self.policy.backoff_max,
            )
            jitter = self.policy.backoff_jitter * delay
            delay = max(0.0, delay + self._rng.uniform(-jitter, jitter))
            slot.state = SlotState.BACKOFF
            slot.respawn_due = now + delay
            decision.backoff = delay

        if suspect_key is not None:
            evidence = self._evidence.setdefault(suspect_key, [])
            evidence.append({
                "kind": kind,
                "worker": worker_id,
                "slot": slot.index,
                "time": time.time(),
                "detail": detail,
            })
            killers = self._killers.setdefault(suspect_key, set())
            killers.add(worker_id)
            decision.evidence = list(evidence)
            if (
                len(killers) >= self.policy.poison_threshold
                and suspect_key not in self._poisoned_keys
            ):
                self._poisoned_keys.add(suspect_key)
                decision.poison = True
        return decision
