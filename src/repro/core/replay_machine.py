"""Replay-based exploration of machine guests (the no-snapshot baseline).

This engine runs the *same assembly guests* as :class:`MachineEngine`
but without snapshots: a partial candidate is a decision prefix, and
evaluating an extension re-executes the guest binary from its entry
point, feeding recorded guess outcomes until the new territory begins.

It exists as the baseline the snapshot engine is measured against in
E3/E6: replay cost grows with (work per level x depth), which is exactly
the re-execution overhead lightweight snapshots eliminate.  Semantics
are identical — the engines must produce the same solution sets.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.errors import GuessError, ReplayDivergenceError
from repro.core.recorder import NondetLog, Recorder
from repro.core.result import SearchResult, SearchStats, Solution
from repro.cpu.assembler import Program, assemble
from repro.interpose.policy import InterpositionPolicy
from repro.libos.files import HostFS
from repro.libos.libos import LibOS
from repro.mem.frames import FramePool
from repro.search import Extension, Strategy, get_strategy
from repro.vmm.vcpu import VCpu
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)


class _PrefixCandidate:
    __slots__ = ("prefix", "fanouts", "n", "hints")

    def __init__(self, prefix, fanouts, n, hints):
        self.prefix = prefix
        self.fanouts = fanouts
        self.n = n
        self.hints = hints

    @property
    def depth(self):
        return len(self.prefix)


class ReplayMachineEngine:
    """Machine-guest exploration by deterministic re-execution."""

    def __init__(
        self,
        strategy: Union[str, Strategy] = "dfs",
        policy: Optional[InterpositionPolicy] = None,
        hostfs: Optional[HostFS] = None,
        max_steps_per_path: int = 5_000_000,
        max_evaluations: Optional[int] = None,
        max_solutions: Optional[int] = None,
        replay_mode: str = "off",
        replay_log: Optional[NondetLog] = None,
        recorder: Optional[Recorder] = None,
        input=None,
    ):
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = get_strategy(strategy)
        if replay_mode not in ("off", "record", "strict"):
            raise ValueError(
                f"replay_mode must be 'off', 'record' or 'strict', "
                f"got {replay_mode!r}"
            )
        if recorder is not None:
            self.recorder: Optional[Recorder] = recorder
        elif replay_mode != "off":
            self.recorder = Recorder(replay_mode, log=replay_log)
        else:
            self.recorder = None
        self.libos = LibOS(policy=policy, hostfs=hostfs, input=input)
        self.libos.dispatcher.nondet = self.recorder
        self.max_steps_per_path = max_steps_per_path
        self.max_evaluations = max_evaluations
        self.max_solutions = max_solutions
        self.pool = FramePool()
        self.vcpu = VCpu()
        self._locked = False

    def run(self, guest: Union[str, Program]) -> SearchResult:
        program = assemble(guest) if isinstance(guest, str) else guest
        stats = SearchStats()
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None
        self._locked = False

        def evaluate(prefix: tuple[int, ...], fanouts: tuple[int, ...]) -> None:
            """One full re-execution of the guest with scripted guesses."""
            stats.evaluations += 1
            state, regs = self.libos.load(program, self.pool)
            self.vcpu.regs.load(regs.frozen())
            self.vcpu.attach(state.space)
            position = 0
            steps = 0
            if self.recorder is not None:
                # Re-execution restarts at the root segment; recorded
                # events along the prefix replay under their original keys.
                self.recorder.begin_segment(())
            try:
                while True:
                    budget = self.max_steps_per_path - steps
                    exit_event = self.vcpu.enter(max_steps=max(budget, 1))
                    steps += exit_event.steps
                    action = self.libos.handle_exit(exit_event, self.vcpu, state)
                    if isinstance(action, ContinueAction):
                        if steps >= self.max_steps_per_path:
                            stats.kills += 1
                            return
                        continue
                    if isinstance(action, StrategyAction):
                        self._select_strategy(action.name)
                        continue
                    if isinstance(action, GuessAction):
                        if position < len(prefix):
                            if action.n != fanouts[position]:
                                raise ReplayDivergenceError(
                                    "nondeterministic guest: fan-out "
                                    "changed during replay",
                                    prefix=prefix,
                                    position=position,
                                    pc=self.vcpu.regs.rip - 1,
                                    expected=fanouts[position],
                                    actual=action.n,
                                )
                            self.vcpu.regs.rax = prefix[position]
                            position += 1
                            stats.replayed_decisions += 1
                            if self.recorder is not None:
                                self.recorder.begin_segment(prefix[:position])
                            continue
                        if action.n == 0:
                            stats.fails += 1
                            return
                        self._locked = True
                        candidate = _PrefixCandidate(
                            prefix, fanouts, action.n, action.hints
                        )
                        stats.candidates += 1
                        self._strategy.add(
                            Extension(
                                candidate,
                                number=i,
                                hint=(action.hints[i]
                                      if action.hints is not None else None),
                                depth=candidate.depth,
                            )
                            for i in range(action.n)
                        )
                        return
                    if isinstance(action, GuessFailAction):
                        stats.fails += 1
                        return
                    if isinstance(action, ExitAction):
                        stats.completions += 1
                        solutions.append(
                            Solution(
                                value=(action.status, state.console.text),
                                path=prefix[:position] if position < len(prefix)
                                else prefix,
                            )
                        )
                        return
                    if isinstance(action, KillAction):
                        stats.kills += 1
                        return
                    raise AssertionError(f"unhandled {action!r}")  # pragma: no cover
            finally:
                state.free()

        evaluate((), ())
        exhausted = True
        while True:
            if self.max_solutions is not None and len(solutions) >= self.max_solutions:
                exhausted = False
                stop_reason = "max_solutions"
                break
            if (
                self.max_evaluations is not None
                and stats.evaluations >= self.max_evaluations
            ):
                exhausted = False
                stop_reason = "max_evaluations"
                break
            ext = self._strategy.next()
            if ext is None:
                break
            cand: _PrefixCandidate = ext.candidate
            evaluate(cand.prefix + (ext.number,), cand.fanouts + (cand.n,))
        self._strategy.drain()
        stats.peak_frontier = self._strategy.stats.peak_frontier
        stats.extra["guest_instructions"] = self.vcpu.vmcs.guest_instructions
        stats.extra["vm_exits"] = self.vcpu.vmcs.exits
        if self.recorder is not None:
            stats.extra["nondet_recorded"] = self.recorder.recorded
            stats.extra["nondet_replayed"] = self.recorder.replayed
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self._strategy.name,
            exhausted=exhausted,
            stop_reason=stop_reason,
        )

    def _select_strategy(self, name: str) -> None:
        if name == self._strategy.name:
            return
        if self._locked:
            raise GuessError(
                f"cannot switch strategy to {name!r} after the first guess"
            )
        self._strategy = get_strategy(name)
