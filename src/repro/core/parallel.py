"""Parallel extension evaluation (the multi-vCPU half of Figure 2).

Figure 2 draws one "extension eval" box per CPU core: "the libOS runs as
a single multi-threaded process, with the number of threads typically
corresponding to the number of hardware threads", each thread evaluating
a different candidate extension.  §3 also contrasts sequential DFS with
"a parallel depth-first-search strategy [that] might simply fork without
waiting".

This engine simulates that: *k* logical workers each own a vCPU and an
in-flight extension; the scheduler round-robin time-slices them (a quantum
of guest instructions per turn), so many extension evaluations are live
simultaneously over the same snapshot tree.  Because the simulator is
single-threaded Python, this is concurrency rather than parallelism — but
it exercises precisely the property that makes the design parallel-safe:
**in-flight executions forked from the same snapshot share pages and
never observe each other's writes**.  Worker-occupancy statistics show
the available speedup on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.errors import GuessError
from repro.core.result import SearchResult, SearchStats, Solution
from repro.cpu.assembler import Program, assemble
from repro.interpose.policy import InterpositionPolicy
from repro.libos.files import HostFS
from repro.libos.libos import ExecState, LibOS
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)
from repro.mem.frames import FramePool
from repro.obs import events as _events
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TRACER as _TRACER
from repro.search import Extension, Strategy, get_strategy
from repro.snapshot.snapshot import SnapshotManager
from repro.snapshot.tree import SnapshotTree
from repro.vmm.vcpu import VCpu, VmExitReason
from repro.core.machine import _Candidate  # shared candidate shape


@dataclass
class _Worker:
    """One logical core: a vCPU plus its in-flight extension."""

    vcpu: VCpu
    state: Optional[ExecState] = None
    path: tuple[int, ...] = ()
    parent: Optional[_Candidate] = None
    steps_used: int = 0
    busy_turns: int = 0
    idle_turns: int = 0

    @property
    def busy(self) -> bool:
        return self.state is not None


class ParallelMachineEngine:
    """Round-robin multi-worker exploration over shared snapshots.

    Parameters
    ----------
    workers:
        Number of logical cores (Figure 2 draws four).
    quantum:
        Guest instructions per scheduling turn per worker.
    strategy:
        Which extension a freed worker picks up next.  With DFS this is
        the paper's parallel-DFS; BFS gives frontier-parallel search.
    """

    def __init__(
        self,
        workers: int = 4,
        quantum: int = 500,
        strategy: Union[str, Strategy] = "dfs",
        policy: Optional[InterpositionPolicy] = None,
        hostfs: Optional[HostFS] = None,
        max_steps_per_extension: int = 5_000_000,
        max_solutions: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = get_strategy(strategy)
        self.quantum = quantum
        self.libos = LibOS(policy=policy, hostfs=hostfs)
        self.pool = FramePool()
        self.registry = MetricsRegistry("parallel-engine")
        self.manager = SnapshotManager(self.pool, registry=self.registry)
        self.tree = SnapshotTree(self.manager)
        self.max_steps_per_extension = max_steps_per_extension
        self.max_solutions = max_solutions
        icache: dict = {}
        self.workers = [
            _Worker(vcpu=VCpu(cpu_id=i, icache=icache)) for i in range(workers)
        ]
        self._locked = False
        #: Peak number of simultaneously busy workers (occupancy proof).
        self.peak_busy = 0

    # ------------------------------------------------------------------

    def run(self, guest: Union[str, Program]) -> SearchResult:
        program = assemble(guest) if isinstance(guest, str) else guest
        stats = SearchStats(registry=self.registry)
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None
        self._locked = False

        state, regs = self.libos.load(program, self.pool)
        boot = self.workers[0]
        boot.vcpu.regs.load(regs.frozen())
        boot.state = state
        boot.path = ()
        boot.parent = None
        boot.steps_used = 0
        stats.evaluations += 1

        while True:
            if (
                self.max_solutions is not None
                and len(solutions) >= self.max_solutions
            ):
                stop_reason = "max_solutions"
                break

            # Refill idle workers from the strategy frontier.
            for worker in self.workers:
                if worker.busy:
                    continue
                ext = self._strategy.next()
                if ext is None:
                    break
                self._assign(worker, ext)
                stats.evaluations += 1

            busy = [w for w in self.workers if w.busy]
            self.peak_busy = max(self.peak_busy, len(busy))
            if not busy:
                break
            for worker in self.workers:
                if worker.busy:
                    worker.busy_turns += 1
                else:
                    worker.idle_turns += 1

            for worker in busy:
                self._turn(worker, stats, solutions)

        exhausted = stop_reason is None
        for worker in self.workers:
            if worker.busy:
                self._finish(worker, stats)
        self._strategy.drain()
        stats.peak_frontier = self._strategy.stats.peak_frontier
        stats.extra.update(self._parallel_stats())
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self._strategy.name,
            exhausted=exhausted,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------

    def _assign(self, worker: _Worker, ext: Extension) -> None:
        cand: _Candidate = ext.candidate
        regs, space, files = self.manager.restore(cand.snapshot)
        worker.vcpu.regs.load(regs)
        worker.vcpu.regs.rax = ext.number
        worker.state = ExecState(space, files, cand.console.fork_cow())
        worker.path = cand.path + (ext.number,)
        worker.parent = cand
        worker.steps_used = 0
        if _TRACER.enabled:
            _TRACER.emit(
                _events.PARALLEL_SCHEDULE,
                worker=worker.vcpu.cpu_id,
                ext=ext.number,
                depth=len(cand.path),
            )

    def _turn(self, worker: _Worker, stats: SearchStats,
              solutions: list[Solution]) -> None:
        """Run one quantum on *worker*, handling at most one boundary."""
        worker.vcpu.attach(worker.state.space)
        exit_event = worker.vcpu.enter(max_steps=self.quantum)
        worker.steps_used += exit_event.steps
        if exit_event.reason is VmExitReason.STEP_LIMIT:
            # End of timeslice, not a runaway guest: the extension stays
            # in flight and resumes on the worker's next turn.
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.PARALLEL_PREEMPT,
                    worker=worker.vcpu.cpu_id,
                    steps=worker.steps_used,
                )
            if worker.steps_used >= self.max_steps_per_extension:
                stats.kills += 1
                self._emit_kill(worker)
                self._finish(worker, stats)
            return
        action = self.libos.handle_exit(exit_event, worker.vcpu, worker.state)

        if isinstance(action, ContinueAction):
            if worker.steps_used >= self.max_steps_per_extension:
                stats.kills += 1
                self._emit_kill(worker)
                self._finish(worker, stats)
            return
        if isinstance(action, StrategyAction):
            self._select_strategy(action.name)
            return
        if isinstance(action, GuessAction):
            self._handle_guess(action, worker, stats)
            return
        if isinstance(action, GuessFailAction):
            stats.fails += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_FAIL, depth=len(worker.path),
                    path=list(worker.path), steps=worker.steps_used,
                    worker=worker.vcpu.cpu_id,
                )
            self._finish(worker, stats)
            return
        if isinstance(action, ExitAction):
            stats.completions += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_SOLUTION,
                    depth=len(worker.path),
                    path=list(worker.path),
                    steps=worker.steps_used,
                    worker=worker.vcpu.cpu_id,
                )
            solutions.append(
                Solution(
                    value=(action.status, worker.state.console.text),
                    path=worker.path,
                )
            )
            self._finish(worker, stats)
            return
        if isinstance(action, KillAction):
            stats.kills += 1
            self._emit_kill(worker)
            self._finish(worker, stats)
            return
        raise AssertionError(f"unhandled action {action!r}")  # pragma: no cover

    def _handle_guess(self, action: GuessAction, worker: _Worker,
                      stats: SearchStats) -> None:
        n = action.n
        if n == 0:
            # A zero-fanout guess is a dead end, exactly like sys_guess_fail.
            stats.fails += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_FAIL, depth=len(worker.path),
                    path=list(worker.path), steps=worker.steps_used,
                    worker=worker.vcpu.cpu_id,
                )
            self._finish(worker, stats)
            return
        self._locked = True
        parent_snap = worker.parent.snapshot if worker.parent else None
        snap = self.manager.take(
            worker.state.space,
            regs=worker.vcpu.regs.frozen(),
            files=worker.state.files,
            parent=parent_snap if parent_snap and parent_snap.alive else None,
        )
        cand = _Candidate(snap, worker.path, n,
                          worker.state.console.fork_cow())
        self.tree.add(snap)
        self.tree.pin(snap, n)
        stats.candidates += 1
        if _TRACER.enabled:
            _TRACER.emit(
                _events.SEARCH_GUESS, n=n, depth=len(worker.path),
                sid=snap.sid, path=list(worker.path),
                steps=worker.steps_used, worker=worker.vcpu.cpu_id,
            )
        self._strategy.add(
            Extension(
                cand,
                number=i,
                hint=action.hints[i] if action.hints is not None else None,
                depth=len(worker.path),
            )
            for i in range(n)
        )
        self._finish(worker, stats)

    def _emit_kill(self, worker: _Worker) -> None:
        if _TRACER.enabled:
            _TRACER.emit(
                _events.SEARCH_KILL, depth=len(worker.path),
                path=list(worker.path), steps=worker.steps_used,
                worker=worker.vcpu.cpu_id,
            )

    def _finish(self, worker: _Worker, stats: SearchStats) -> None:
        worker.state.free()
        worker.state = None
        if worker.parent is not None:
            self.tree.unpin(worker.parent.snapshot)
            worker.parent = None

    def _select_strategy(self, name: str) -> None:
        if name == self._strategy.name:
            return
        if self._locked:
            raise GuessError(
                f"cannot switch strategy to {name!r} after the first guess"
            )
        self._strategy = get_strategy(name)

    def _parallel_stats(self) -> dict:
        total_busy = sum(w.busy_turns for w in self.workers)
        total_turns = sum(w.busy_turns + w.idle_turns for w in self.workers)
        return {
            "workers": len(self.workers),
            "peak_busy_workers": self.peak_busy,
            "occupancy": total_busy / total_turns if total_turns else 0.0,
            "guest_instructions": sum(
                w.vcpu.vmcs.guest_instructions for w in self.workers
            ),
            "vm_exits": sum(w.vcpu.vmcs.exits for w in self.workers),
            "snapshots_taken": self.manager.stats.taken,
            "snapshots_peak_live": self.manager.stats.peak_live,
            "frames_peak": self.pool.peak_live_frames,
        }
