"""Pluggable cluster transports: duplex pipes and framed TCP.

The paper's sharding lever — a task is just its decision prefix, a few
hundred bytes — means tasks migrate over a socket exactly as cheaply as
over a pipe.  This module splits the *transport* concern out of
:mod:`repro.core.cluster` so the coordinator's scheduling loop is written
once against a small interface and the wire underneath is swappable:

* :class:`PipeTransport` — today's behaviour, bit-compatibly: one
  ``multiprocessing.Pipe`` per local worker process, pickle framing done
  by the pipe itself, worker death observed as a closed pipe.
* :class:`TcpTransport` — an asyncio acceptor loop (run on a background
  thread so the coordinator stays synchronous), length-prefixed
  CRC32-framed pickle messages, per-connection heartbeat deadlines that
  catch *half-open* peers no EOF will ever announce, a reconnect grace
  window so a transient disconnect is not a death, and elastic
  membership: a worker started anywhere with ``run_guest --connect``
  does a ``hello`` handshake and joins the pool mid-run.

Failure model.  The transport reports, it never decides: every observed
anomaly surfaces as a :class:`TransportEvent` (``kind="down"``) and the
engine's supervisor applies the same blame/retry/poison policy whichever
wire delivered it.  Crucially, a TCP endpoint reported down may still be
*alive and computing* (partition, stalled network) — which is why the
engine layers lease fencing (:mod:`repro.core.lease`) on top: transports
only ever guarantee "no more messages from this endpoint will be
*trusted*", not "the process stopped".

Framing.  ``MAGIC | length | crc32 | pickle-payload`` with both length
and checksum validated before unpickling; a flipped bit or truncated
write yields :class:`FrameError`, never a misparsed message.  The
worker side answers frame corruption by dropping the connection and
re-handshaking — the stream is unrecoverable past a bad header.
"""

from __future__ import annotations

import asyncio
import pickle
import queue
import select
import socket
import struct
import threading
import time
import zlib
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Optional

#: Version of the hello/welcome handshake; bumped on incompatible
#: protocol changes so mixed deployments fail loudly at join time.
PROTOCOL_VERSION = 1

#: Frame header: magic, payload length, payload CRC32.
MAGIC = b"RPF1"
_HEADER = struct.Struct("!4sII")
HEADER_SIZE = _HEADER.size

#: Refuse frames claiming more than this many payload bytes: a flipped
#: bit in the length field must not make the decoder buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class FrameError(TransportError):
    """A frame failed validation (bad magic, length or checksum)."""


class EndpointDown(TransportError):
    """Attempted to use an endpoint the transport already gave up on."""


def encode_frame(obj: Any) -> bytes:
    """One message as bytes: header (magic, length, CRC32) + pickle."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(payload), crc) + payload


def decode_payload(payload: bytes) -> Any:
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"unpicklable payload: {exc}") from exc


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed chunks as they arrive; :meth:`frames` yields each complete,
    checksum-verified payload.  Any corruption — wrong magic, oversized
    length, CRC mismatch — raises :class:`FrameError`; a truncated tail
    simply waits for more bytes (and is refused by the connection
    teardown if more bytes never come).  No partially validated frame is
    ever surfaced.
    """

    def __init__(self):
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self):
        """Yield every complete payload currently buffered."""
        while True:
            if len(self._buf) < HEADER_SIZE:
                return
            magic, length, crc = _HEADER.unpack_from(self._buf, 0)
            if magic != MAGIC:
                raise FrameError(f"bad frame magic {magic!r}")
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame length {length} exceeds cap")
            if len(self._buf) < HEADER_SIZE + length:
                return
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                raise FrameError("frame checksum mismatch")
            del self._buf[:HEADER_SIZE + length]
            yield payload

    def messages(self):
        """Yield decoded objects (see :meth:`frames`)."""
        for payload in self.frames():
            yield decode_payload(payload)


class TransportEvent:
    """One observation surfaced by :meth:`Transport.poll`.

    ``kind`` is ``"msg"`` (payload holds the worker's message),
    ``"down"`` (the endpoint is no longer trusted; ``fail_kind`` is
    ``"crash"`` or ``"timeout"``, ``protocol_error`` marks undecodable
    traffic) or ``"join"`` (an external worker completed the handshake;
    the endpoint is fresh and idle).
    """

    __slots__ = ("kind", "endpoint", "payload", "fail_kind", "detail",
                 "protocol_error")

    def __init__(self, kind: str, endpoint, payload: Any = None,
                 fail_kind: str = "crash", detail: str = "",
                 protocol_error: bool = False):
        self.kind = kind
        self.endpoint = endpoint
        self.payload = payload
        self.fail_kind = fail_kind
        self.detail = detail
        self.protocol_error = protocol_error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wid = getattr(self.endpoint, "wid", None)
        return f"TransportEvent({self.kind!r}, wid={wid}, {self.detail!r})"


# ----------------------------------------------------------------------
# Pipe transport (local worker processes over multiprocessing pipes)
# ----------------------------------------------------------------------


class PipeEndpoint:
    """A local worker process reached over a duplex mp pipe."""

    external = False

    def __init__(self, wid: int, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.closed = False

    def send(self, msg: Any) -> None:
        if self.closed:
            raise EndpointDown(f"worker {self.wid} endpoint closed")
        try:
            self.conn.send(msg)
        except (OSError, ValueError) as exc:
            raise EndpointDown(str(exc)) from exc

    def alive(self) -> bool:
        return not self.closed and self.proc.is_alive()

    def poison(self) -> None:
        """Best-effort graceful-stop request (the ``None`` pill)."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass

    def terminate(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()

    def join(self, timeout: Optional[float] = None) -> None:
        self.proc.join(timeout=timeout)

    def kill_hard(self) -> None:
        if self.proc.is_alive():  # pragma: no cover - SIGTERM ignored
            self.proc.kill()

    def kill(self) -> None:
        """Hard-stop: close the pipe and terminate the process."""
        self.closed = True
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():  # pragma: no cover - SIGTERM ignored
            self.proc.kill()
            self.proc.join()

    def close(self) -> None:
        self.closed = True
        try:
            self.conn.close()
        except OSError:
            pass


class PipeTransport:
    """Today's duplex-pipe protocol behind the Transport interface.

    Wire behaviour is bit-compatible with the pre-split engine: one
    ``multiprocessing.Pipe(duplex=True)`` per worker, the child owning
    its end, worker death surfacing as EOF on the coordinator's end.
    """

    name = "pipe"

    def __init__(self, ctx, worker_main: Callable, start_wid: int = 0):
        self._ctx = ctx
        self._worker_main = worker_main
        self._next_wid = start_wid
        self._endpoints: list[PipeEndpoint] = []
        self._program = None
        self._config = None

    @property
    def address(self):
        return None

    def start(self, program, config) -> "PipeTransport":
        self._program = program
        self._config = config
        return self

    def spawn(self) -> PipeEndpoint:
        wid = self._next_wid
        self._next_wid += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=self._worker_main,
            args=(wid, child_conn, self._program, self._config),
            daemon=True,
            name=f"repro-cluster-w{wid}",
        )
        proc.start()
        child_conn.close()  # the child owns its end now
        ep = PipeEndpoint(wid, proc, parent_conn)
        self._endpoints.append(ep)
        return ep

    def poll(self, timeout: float) -> list[TransportEvent]:
        live = [ep for ep in self._endpoints if not ep.closed]
        if not live:
            if timeout > 0:
                time.sleep(timeout)
            return []
        waitmap = {ep.conn: ep for ep in live}
        ready = mp_connection.wait(list(waitmap), timeout=timeout)
        events: list[TransportEvent] = []
        for conn in ready:
            ep = waitmap[conn]
            if ep.closed:
                continue  # engine killed it earlier this sweep
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                events.append(TransportEvent(
                    "down", ep, fail_kind="crash",
                    detail="result pipe closed",
                ))
            except Exception as exc:
                # Garbage on the wire (chaos injection, or a corrupted
                # worker): the stream framing can no longer be trusted.
                events.append(TransportEvent(
                    "down", ep, fail_kind="crash",
                    detail=("undecodable result message: "
                            f"{type(exc).__name__}: {exc}"),
                    protocol_error=True,
                ))
            else:
                events.append(TransportEvent("msg", ep, payload=msg))
        return events

    def close(self) -> None:
        self._endpoints.clear()


# ----------------------------------------------------------------------
# TCP transport (framed sockets, elastic membership)
# ----------------------------------------------------------------------


class TcpEndpoint:
    """A worker reached over a framed TCP connection.

    May be *local* (spawned by the coordinator, ``proc`` set) or
    *external* (joined via the hello handshake, ``proc`` None).  A local
    endpoint's :meth:`kill` only severs trust — it closes the connection
    and stops accepting the worker's messages but defers process
    termination to transport close: a partitioned worker cannot be
    reached by SIGTERM either, and deferring makes the local transport
    faithfully model that (the resurface-with-stale-fence path is
    exercised rather than masked).
    """

    def __init__(self, transport: "TcpTransport", wid: int,
                 proc=None, external: bool = False):
        self._transport = transport
        self.wid = wid
        self.proc = proc
        self.external = external
        self.closed = False
        #: Loop-thread state ------------------------------------------
        self.writer = None
        self.attached = False
        self.ever_attached = False
        self.detached_at: Optional[float] = None
        self.last_rx = time.monotonic()
        self.down_emitted = False
        self.reconnects = 0
        self.outbox: deque[bytes] = deque()
        self.seq_in = 0
        self.seq_out = 0
        self.held_in: Optional[Any] = None
        self.held_out: Optional[bytes] = None

    def send(self, msg: Any) -> None:
        if self.closed:
            raise EndpointDown(f"worker {self.wid} endpoint closed")
        self._transport._send(self, msg)

    def alive(self) -> bool:
        if self.closed or self.down_emitted:
            return False
        if self.proc is not None and not self.proc.is_alive() \
                and not self.attached:
            return False
        return True

    def poison(self) -> None:
        try:
            self.send(None)
        except (EndpointDown, TransportError):
            pass

    def terminate(self) -> None:
        if self.proc is not None and self.proc.is_alive():
            self.proc.terminate()

    def join(self, timeout: Optional[float] = None) -> None:
        if self.proc is not None:
            self.proc.join(timeout=timeout)

    def kill_hard(self) -> None:
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()

    def kill(self) -> None:
        """Sever trust: close the connection, keep the process (if any)
        for transport-close reaping — see the class docstring."""
        self.closed = True
        self._transport._detach_threadsafe(self)

    def close(self) -> None:
        self.closed = True
        self._transport._detach_threadsafe(self)


class TcpTransport:
    """Asyncio acceptor + framed sockets behind the Transport interface.

    The event loop runs on a daemon thread; the synchronous coordinator
    talks to it through a thread-safe event queue (:meth:`poll`) and
    ``call_soon_threadsafe`` (sends).  Liveness per connection:

    * every received frame refreshes ``last_rx``; workers ping ~1/s even
      while computing, so a connection with no traffic for
      ``heartbeat_timeout`` seconds is *half-open* → ``down``;
    * a clean disconnect starts a ``reconnect_grace`` window — the
      worker side reconnects with exponential backoff and resumes under
      the same wid; only an expired window surfaces ``down``;
    * an unknown (or previously failed) wid completing the handshake
      surfaces ``join`` — elastic membership, also how a partitioned
      worker resurfaces (as a *new* endpoint whose stale results the
      engine fences off).

    ``net_hook`` is the chaos seam: called per frame per direction on
    the loop thread, it returns actions (drop/delay/duplicate/reorder)
    that the transport applies before delivery — see
    :meth:`repro.chaos.FaultPlan.net_hook`.
    """

    name = "tcp"

    def __init__(self, ctx=None, host: str = "127.0.0.1", port: int = 0,
                 *, worker_entry: Optional[Callable] = None,
                 net_hook: Optional[Callable] = None,
                 heartbeat_timeout: float = 5.0,
                 reconnect_grace: float = 2.0,
                 handshake_timeout: float = 5.0,
                 start_wid: int = 0):
        self._ctx = ctx
        self._host = host
        self._port = port
        self._worker_entry = worker_entry
        self._net_hook = net_hook
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_grace = reconnect_grace
        self.handshake_timeout = handshake_timeout
        self._next_wid = start_wid
        self._program = None
        self._config = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server = None
        self._watchdog = None
        self._events: "queue.Queue[TransportEvent]" = queue.Queue()
        #: wid -> most recent endpoint for it (loop thread only after
        #: start, except for reads).
        self._by_wid: dict[int, TcpEndpoint] = {}
        #: Every local process ever spawned, reaped at close.
        self._procs: list = []
        self.address: Optional[tuple] = None
        #: Trace hook the engine may set: called as cb(event_type, **f)
        #: from the loop thread for reconnect/net-fault observability.
        self.on_wire_event: Optional[Callable] = None
        self.stats = {"reconnects": 0, "joins": 0, "frames_in": 0,
                      "frames_out": 0, "net_faults": 0}

    # -- lifecycle -----------------------------------------------------

    def start(self, program, config) -> "TcpTransport":
        self._program = program
        self._config = config
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-tcp-coordinator",
            daemon=True,
        )
        self._thread.start()
        fut = asyncio.run_coroutine_threadsafe(self._serve(), self._loop)
        self.address = fut.result(timeout=10.0)
        return self

    async def _serve(self):
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port,
        )
        self._watchdog = self._loop.create_task(self._watch())
        sockname = self._server.sockets[0].getsockname()
        return (sockname[0], sockname[1])

    def spawn(self) -> TcpEndpoint:
        """Start a local worker process that dials back over TCP."""
        if self._worker_entry is None:
            raise TransportError("transport has no local worker entry")
        wid = self._alloc_wid()
        ep = TcpEndpoint(self, wid, proc=None, external=False)
        self._register(ep)
        proc = self._ctx.Process(
            target=self._worker_entry,
            args=(self.address, wid),
            daemon=True,
            name=f"repro-cluster-w{wid}",
        )
        proc.start()
        ep.proc = proc
        self._procs.append(proc)
        return ep

    def _alloc_wid(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        return wid

    def _register(self, ep: TcpEndpoint) -> None:
        self._by_wid[ep.wid] = ep

    def poll(self, timeout: float) -> list[TransportEvent]:
        events: list[TransportEvent] = []
        try:
            events.append(self._events.get(timeout=timeout))
        except queue.Empty:
            return events
        while True:
            try:
                events.append(self._events.get_nowait())
            except queue.Empty:
                return events

    def close(self) -> None:
        if self._loop is None:
            return

        async def _teardown():
            if self._watchdog is not None:
                self._watchdog.cancel()
            if self._server is not None:
                self._server.close()
            for ep in list(self._by_wid.values()):
                self._detach(ep)

        try:
            asyncio.run_coroutine_threadsafe(
                _teardown(), self._loop
            ).result(timeout=5.0)
        except Exception:  # pragma: no cover - teardown races
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        try:
            self._loop.close()
        except RuntimeError:  # pragma: no cover
            pass
        # Reap every local process we ever spawned (including workers
        # whose endpoints were killed mid-run and deliberately left
        # running to model partitions).
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
            proc.join()
        self._procs.clear()

    # -- loop-thread internals -----------------------------------------

    def _call(self, fn, *args) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(fn, *args)

    def _detach_threadsafe(self, ep: TcpEndpoint) -> None:
        self._call(self._detach, ep)

    def _detach(self, ep: TcpEndpoint) -> None:
        ep.attached = False
        ep.detached_at = time.monotonic()
        writer, ep.writer = ep.writer, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    def _emit_down(self, ep: TcpEndpoint, fail_kind: str, detail: str,
                   protocol_error: bool = False) -> None:
        if ep.down_emitted:
            return
        ep.down_emitted = True
        self._detach(ep)
        if not ep.closed:
            self._events.put(TransportEvent(
                "down", ep, fail_kind=fail_kind, detail=detail,
                protocol_error=protocol_error,
            ))

    async def _watch(self):
        interval = max(0.05, min(0.25, self.heartbeat_timeout / 4.0))
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for ep in list(self._by_wid.values()):
                if ep.closed or ep.down_emitted:
                    continue
                if ep.attached:
                    if now - ep.last_rx > self.heartbeat_timeout:
                        self._emit_down(
                            ep, "timeout",
                            f"no traffic for {self.heartbeat_timeout:.1f}s "
                            "(half-open connection)",
                        )
                    continue
                if ep.ever_attached:
                    if (ep.detached_at is not None
                            and now - ep.detached_at > self.reconnect_grace):
                        self._emit_down(
                            ep, "crash",
                            "connection lost (reconnect grace expired)",
                        )
                elif ep.proc is not None and not ep.proc.is_alive():
                    self._emit_down(
                        ep, "crash", "worker died before first handshake",
                    )

    async def _read_frame(self, reader, decoder: FrameDecoder):
        while True:
            for msg in decoder.messages():
                return msg
            data = await reader.read(65536)
            if not data:
                raise ConnectionResetError("peer closed")
            decoder.feed(data)

    async def _on_connection(self, reader, writer):
        decoder = FrameDecoder()
        try:
            hello = await asyncio.wait_for(
                self._read_frame(reader, decoder),
                timeout=self.handshake_timeout,
            )
        except Exception:
            writer.close()
            return
        if (not isinstance(hello, tuple) or len(hello) != 3
                or hello[0] != "hello"):
            writer.close()
            return
        _, claimed_wid, version = hello
        if version != PROTOCOL_VERSION:
            try:
                writer.write(encode_frame(
                    ("reject", f"protocol version {version} != "
                               f"{PROTOCOL_VERSION}")
                ))
                await writer.drain()
            except Exception:  # pragma: no cover
                pass
            writer.close()
            return

        ep = self._by_wid.get(claimed_wid) if claimed_wid is not None else None
        fresh = False
        if ep is None or ep.closed or ep.down_emitted:
            # External join — or a presumed-dead worker resurfacing
            # after a partition.  Either way it enters as a *new*
            # endpoint: the engine grants it fresh leases and fences
            # off anything it still believes it owns.
            wid = claimed_wid if claimed_wid is not None else self._alloc_wid()
            old = self._by_wid.get(wid)
            ep = TcpEndpoint(self, wid, proc=old.proc if old else None,
                             external=old.external if old else True)
            self._register(ep)
            fresh = True
            self.stats["joins"] += 1
            self._events.put(TransportEvent(
                "join", ep,
                detail="resurfaced" if old is not None else "external join",
            ))
            if self.on_wire_event is not None:
                self.on_wire_event("join", worker=wid,
                                   resurfaced=old is not None)
        first_attach = not ep.ever_attached
        ep.writer = writer
        ep.attached = True
        ep.ever_attached = True
        ep.last_rx = time.monotonic()
        try:
            if first_attach or fresh:
                writer.write(encode_frame(
                    ("welcome", ep.wid, self._program, self._config)
                ))
            else:
                ep.reconnects += 1
                self.stats["reconnects"] += 1
                if self.on_wire_event is not None:
                    self.on_wire_event("reconnect", worker=ep.wid,
                                       count=ep.reconnects)
                writer.write(encode_frame(("rewelcome", ep.wid)))
            while ep.outbox:
                writer.write(ep.outbox.popleft())
            await writer.drain()
        except Exception:
            self._detach(ep)
            return
        await self._read_loop(ep, reader, writer, decoder)

    async def _read_loop(self, ep: TcpEndpoint, reader, writer, decoder):
        try:
            while True:
                msg = await self._read_frame(reader, decoder)
                if ep.writer is not writer or ep.closed:
                    return  # superseded by a newer connection
                self._deliver(ep, msg)
        except FrameError as exc:
            if ep.writer is writer and not ep.closed:
                self._emit_down(ep, "crash",
                                f"undecodable frame: {exc}",
                                protocol_error=True)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            if ep.writer is writer and not ep.closed:
                # Clean-ish disconnect: open the reconnect grace window
                # instead of declaring death immediately.
                self._detach(ep)

    def _deliver(self, ep: TcpEndpoint, msg: Any) -> None:
        """Apply inbound chaos, refresh liveness, enqueue the message."""
        seq = ep.seq_in
        ep.seq_in += 1
        for action, delay in self._decide("w2c", ep.wid, seq):
            if action == "drop":
                continue
            if action == "delay":
                self._loop.call_later(
                    delay, self._deliver_now, ep, msg)
                continue
            if action == "hold":
                # Reorder: park this message; it rides out behind the
                # next one that passes.
                prev, ep.held_in = ep.held_in, msg
                if prev is not None:
                    self._deliver_now(ep, prev)
                continue
            # "pass" delivers; "dup" is an extra delivery of the same
            # message (the hook emits it alongside a pass).
            self._deliver_now(ep, msg)
            if action == "pass" and ep.held_in is not None:
                held, ep.held_in = ep.held_in, None
                self._deliver_now(ep, held)

    def _deliver_now(self, ep: TcpEndpoint, msg: Any) -> None:
        if ep.closed or ep.down_emitted:
            return
        ep.last_rx = time.monotonic()
        self.stats["frames_in"] += 1
        if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "ping":
            return
        self._events.put(TransportEvent("msg", ep, payload=msg))

    def _decide(self, direction: str, wid: int, seq: int):
        if self._net_hook is None:
            return (("pass", 0.0),)
        try:
            actions = self._net_hook(direction, wid, seq)
        except Exception:  # pragma: no cover - chaos hook bug
            return (("pass", 0.0),)
        if actions:
            self.stats["net_faults"] += sum(
                1 for a, _ in actions if a != "pass"
            )
            if self.on_wire_event is not None:
                for action, _ in actions:
                    if action != "pass":
                        self.on_wire_event(
                            "net_fault", kind=action,
                            direction=direction, worker=wid, seq=seq,
                        )
        return actions or (("pass", 0.0),)

    def _send(self, ep: TcpEndpoint, msg: Any) -> None:
        frame = encode_frame(msg)
        self._call(self._send_frame, ep, frame)

    def _send_frame(self, ep: TcpEndpoint, frame: bytes) -> None:
        if ep.closed:
            return
        seq = ep.seq_out
        ep.seq_out += 1
        for action, delay in self._decide("c2w", ep.wid, seq):
            if action == "drop":
                continue
            if action == "delay":
                self._loop.call_later(delay, self._write_now, ep, frame)
                continue
            if action == "hold":
                prev, ep.held_out = ep.held_out, frame
                if prev is not None:
                    self._write_now(ep, prev)
                continue
            self._write_now(ep, frame)
            if action == "pass" and ep.held_out is not None:
                held, ep.held_out = ep.held_out, None
                self._write_now(ep, held)

    def _write_now(self, ep: TcpEndpoint, frame: bytes) -> None:
        if ep.closed:
            return
        self.stats["frames_out"] += 1
        if not ep.attached or ep.writer is None:
            # Buffer for the reconnect window; flushed on reattach.
            ep.outbox.append(frame)
            return
        try:
            ep.writer.write(frame)
        except Exception:  # pragma: no cover - write race with close
            ep.outbox.append(frame)


# ----------------------------------------------------------------------
# Worker-side TCP connection (sync, mp.Connection-compatible surface)
# ----------------------------------------------------------------------


class TcpWorkerConnection:
    """The worker's side of a framed TCP link to the coordinator.

    Exposes the four methods ``_worker_main`` (and the heartbeat
    emitter) use on a multiprocessing connection — ``send``, ``recv``,
    ``poll``, ``close`` — so the worker body is transport-agnostic.
    Adds what a socket needs that a pipe never did: a handshake that
    fetches the program and config, reconnect with exponential backoff
    under the same wid, and a daemon ping thread so long CPU-bound
    explores don't trip the coordinator's heartbeat deadline.
    """

    def __init__(self, address, wid: Optional[int] = None, *,
                 ping_interval: float = 1.0,
                 reconnect_attempts: int = 6,
                 backoff_base: float = 0.05,
                 backoff_max: float = 1.0,
                 connect_timeout: float = 5.0):
        self.address = tuple(address)
        self.wid = wid
        self.program = None
        self.config = None
        self.ping_interval = ping_interval
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.connect_timeout = connect_timeout
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._inbox: deque = deque()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._connect(initial=True)
        self._pinger = threading.Thread(
            target=self._ping_loop, name="repro-tcp-ping", daemon=True,
        )
        self._pinger.start()

    # -- connection management -----------------------------------------

    def _connect(self, initial: bool = False) -> None:
        """(Re)establish the socket and complete the handshake."""
        with self._lock:
            last_exc: Optional[Exception] = None
            attempts = 1 if initial else self.reconnect_attempts
            for attempt in range(attempts):
                if attempt:
                    delay = min(
                        self.backoff_base * (2 ** (attempt - 1)),
                        self.backoff_max,
                    )
                    time.sleep(delay)
                try:
                    sock = socket.create_connection(
                        self.address, timeout=self.connect_timeout,
                    )
                    sock.settimeout(None)
                    sock.sendall(encode_frame(
                        ("hello", self.wid, PROTOCOL_VERSION)
                    ))
                    decoder = FrameDecoder()
                    reply = self._read_handshake(sock, decoder)
                except (OSError, FrameError, ConnectionError) as exc:
                    last_exc = exc
                    continue
                if reply[0] == "reject":
                    raise ConnectionError(f"coordinator rejected: {reply[1]}")
                if reply[0] == "welcome":
                    self.wid = reply[1]
                    self.program = reply[2]
                    self.config = reply[3]
                elif reply[0] != "rewelcome":
                    last_exc = FrameError(f"bad handshake reply {reply!r}")
                    continue
                old = self._sock
                self._sock = sock
                self._decoder = decoder
                if old is not None:
                    try:
                        old.close()
                    except OSError:
                        pass
                if not initial:
                    self.reconnects += 1
                return
            raise ConnectionError(
                f"cannot reach coordinator at {self.address}: {last_exc}"
            )

    def _read_handshake(self, sock, decoder: FrameDecoder):
        deadline = time.monotonic() + self.connect_timeout
        while True:
            for msg in decoder.messages():
                return msg
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ConnectionError("handshake timed out")
            sock.settimeout(remaining)
            try:
                data = sock.recv(65536)
            finally:
                sock.settimeout(None)
            if not data:
                raise ConnectionError("coordinator closed during handshake")
            decoder.feed(data)

    def _reconnect(self) -> None:
        self._connect(initial=False)

    # -- mp.Connection-compatible surface ------------------------------

    def send(self, msg: Any) -> None:
        frame = encode_frame(msg)
        with self._lock:
            try:
                self._sock.sendall(frame)
            except OSError:
                self._reconnect()  # raises ConnectionError when hopeless
                self._sock.sendall(frame)

    def send_bytes(self, data: bytes) -> None:
        """Write raw, unframed bytes into the stream (chaos: garbage
        injection).  The coordinator's frame decoder refuses the
        stream — bad magic or checksum — and declares this worker a
        protocol error, the TCP analog of writing junk into the result
        pipe."""
        with self._lock:
            try:
                self._sock.sendall(data)
            except OSError:
                pass  # the severed link is its own kind of garbage

    def poll(self, timeout: float = 0.0) -> bool:
        if self._inbox:
            return True
        if self._pump(blocking=False):
            return True
        sock = self._sock
        try:
            ready, _, _ = select.select([sock], [], [], max(0.0, timeout))
        except (OSError, ValueError):
            return True  # force recv() to notice and reconnect
        if not ready:
            return False
        return True

    def recv(self) -> Any:
        while True:
            if self._inbox:
                return self._inbox.popleft()
            self._pump(blocking=True)

    def _pump(self, blocking: bool) -> bool:
        """Read socket bytes into the inbox; True if anything arrived."""
        sock = self._sock
        try:
            if not blocking:
                sock.setblocking(False)
            try:
                data = sock.recv(65536)
            finally:
                if not blocking:
                    sock.setblocking(True)
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            data = b""
        if not data:
            if not blocking:
                return False
            try:
                self._reconnect()
            except ConnectionError:
                raise EOFError("coordinator gone") from None
            return False
        try:
            self._decoder.feed(data)
            got = False
            for msg in self._decoder.messages():
                if isinstance(msg, tuple) and msg and msg[0] in (
                    "rewelcome", "welcome",
                ):
                    continue
                self._inbox.append(msg)
                got = True
            return got
        except FrameError:
            # The stream is unrecoverable past a bad frame: drop the
            # connection and re-handshake on a clean one.
            try:
                self._reconnect()
            except ConnectionError:
                raise EOFError("coordinator gone") from None
            return False

    def close(self) -> None:
        self._stop.set()
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    # -- liveness ------------------------------------------------------

    def _ping_loop(self) -> None:
        while not self._stop.wait(self.ping_interval):
            with self._lock:
                sock = self._sock
                if sock is None:
                    return
                try:
                    sock.sendall(encode_frame(("ping", self.wid)))
                except OSError:
                    pass  # the main thread will reconnect on its next IO
