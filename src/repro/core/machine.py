"""The machine engine: faithful system-level backtracking.

This is the reproduction of the paper's headline design.  Guests are
machine-code programs running behind the full Figure 2 stack:

* ``sys_guess`` takes a **lightweight immutable snapshot** (registers +
  COW address space + COW file table + console position) and fans out
  *n* candidate extension steps;
* the **search strategy** schedules which extension runs next; running
  one restores the snapshot in O(1) and sets the extension number in
  ``%rax`` exactly as §4 describes;
* ``sys_guess_fail`` discards the executing extension;
* ``exit`` (or ``hlt``) completes a path: the engine records the solution
  and keeps exploring, so a guest that simply terminates after printing
  its answer enumerates all answers — no bookkeeping in the guest.

Unlike the replay engine, restoring a candidate does **zero** guest
re-execution: the address space *is* the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.errors import GuessError
from repro.core.recorder import NondetLog, Recorder
from repro.core.result import SearchResult, SearchStats, Solution
from repro.core.sysno import STRATEGY_IDS
from repro.cpu.assembler import Program, assemble
from repro.libos.console import Console
from repro.libos.files import HostFS
from repro.libos.libos import ExecState, LibOS
from repro.interpose.policy import InterpositionPolicy
from repro.mem.frames import FramePool
from repro.obs import events as _events
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TRACER as _TRACER
from repro.search import Extension, Strategy, get_strategy
from repro.snapshot.snapshot import Snapshot, SnapshotManager
from repro.snapshot.tree import SnapshotTree
from repro.vmm.vcpu import VCpu
from repro.libos.syscalls import (
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)


@dataclass(frozen=True)
class PathOutput:
    """Console output of one finished path (completed, failed or killed)."""

    path: tuple[int, ...]
    data: bytes
    outcome: str  # "exit" | "fail" | "kill"

    @property
    def text(self) -> str:
        """Output decoded as UTF-8 (lazy: most paths are never read)."""
        return self.data.decode("utf-8", errors="replace")


class _Candidate:
    """A partial candidate: snapshot + the decision path that reached it."""

    __slots__ = ("snapshot", "path", "n", "console")

    def __init__(self, snapshot: Snapshot, path: tuple[int, ...], n: int,
                 console: Console):
        self.snapshot = snapshot
        self.path = path
        self.n = n
        self.console = console


@dataclass
class _Pending:
    """The extension step currently executing."""

    state: ExecState
    path: tuple[int, ...]
    parent: Optional[_Candidate]
    steps_used: int = 0


class MachineEngine:
    """Explore an assembly guest's search space with real snapshots.

    Parameters
    ----------
    strategy:
        Strategy registry name or instance (guests may override it with
        ``sys_guess_strategy`` before their first guess).
    policy / hostfs:
        Interposition policy and backing files, passed to the libOS.
    max_steps_per_extension:
        Instruction budget for a single extension step (runaway guard).
    max_evaluations / max_solutions / max_total_steps:
        Optional global exploration budgets.
    pool_limit:
        Optional bound on live physical frames (simulated RAM size).
    verify:
        Static-analysis gate run on each guest before execution:
        ``"off"`` (default, pre-verifier behaviour), ``"warn"``
        (analyze, warn on findings, run anyway) or ``"strict"``
        (refuse programs with error-severity findings or without the
        determinism certificate — unless record/replay covers the
        nondeterminism, see ``replay_mode``).
    replay_mode:
        ``"off"`` (default), ``"record"`` (record nondeterministic
        syscall outcomes on first execution, replay recorded ones) or
        ``"strict"`` (replay only; missing events raise
        :class:`~repro.core.errors.ReplayDivergenceError`).
    replay_log:
        A :class:`~repro.core.recorder.NondetLog` of previously recorded
        events to replay from (and, in record mode, add to).
    recorder:
        An externally owned :class:`~repro.core.recorder.Recorder` to
        use instead of building one — how cluster workers share one
        recorder across the engines they drive.  Overrides
        ``replay_mode``/``replay_log``.
    input:
        Scripted stdin for guests that read fd 0 (passed to the libOS).
    """

    def __init__(
        self,
        strategy: Union[str, Strategy] = "dfs",
        policy: Optional[InterpositionPolicy] = None,
        hostfs: Optional[HostFS] = None,
        max_steps_per_extension: int = 5_000_000,
        max_evaluations: Optional[int] = None,
        max_solutions: Optional[int] = None,
        max_total_steps: Optional[int] = None,
        pool_limit: Optional[int] = None,
        snapshot_mode: str = "cow",
        verify: str = "off",
        replay_mode: str = "off",
        replay_log: Optional[NondetLog] = None,
        recorder: Optional[Recorder] = None,
        input=None,
    ):
        if verify not in ("off", "warn", "strict"):
            raise ValueError(
                f"verify must be 'off', 'warn' or 'strict', got {verify!r}"
            )
        self.verify = verify
        if replay_mode not in ("off", "record", "strict"):
            raise ValueError(
                f"replay_mode must be 'off', 'record' or 'strict', "
                f"got {replay_mode!r}"
            )
        if recorder is not None:
            self.recorder: Optional[Recorder] = recorder
            self.replay_mode = recorder.mode
        elif replay_mode != "off":
            self.recorder = Recorder(replay_mode, log=replay_log)
            self.replay_mode = replay_mode
        else:
            self.recorder = None
            self.replay_mode = "off"
        #: Analysis report of the last verified guest (None under "off").
        self.last_report = None
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        elif strategy == "coverage":
            # S2E-style coverage-optimized exploration: prefer extensions
            # whose (guess site, branch number) has not been taken yet.
            from repro.search import CoverageStrategy

            self._strategy = CoverageStrategy(
                coverage_key=lambda ext: (
                    ext.candidate.snapshot.regs.rip, ext.number
                )
            )
        else:
            self._strategy = get_strategy(strategy)
        self.libos = LibOS(policy=policy, hostfs=hostfs, input=input)
        self.libos.dispatcher.nondet = self.recorder
        self.max_steps_per_extension = max_steps_per_extension
        self.max_evaluations = max_evaluations
        self.max_solutions = max_solutions
        self.max_total_steps = max_total_steps
        self.pool = FramePool(limit=pool_limit)
        #: One registry for the whole engine: snapshot lifecycle and
        #: search counters share it, so a single ``as_dict()`` captures
        #: the run (each engine instance gets its own namespace).
        self.registry = MetricsRegistry("machine-engine")
        if snapshot_mode == "cow":
            self.manager = SnapshotManager(self.pool, registry=self.registry)
        elif snapshot_mode == "eager":
            # The §3 naive-fork baseline: full copies per take/restore.
            from repro.baselines.eager import EagerSnapshotManager

            self.manager = EagerSnapshotManager(self.pool, registry=self.registry)
        elif snapshot_mode == "dirty-eager":
            # DESIGN.md §5 ablation: pre-copy the dirty working set at
            # take time instead of faulting per page afterwards.
            from repro.baselines.dirty import DirtyEagerSnapshotManager

            self.manager = DirtyEagerSnapshotManager(
                self.pool, registry=self.registry
            )
        else:
            raise ValueError(f"unknown snapshot_mode {snapshot_mode!r}")
        self.snapshot_mode = snapshot_mode
        self.tree = SnapshotTree(self.manager)
        self.vcpu = VCpu()
        #: Console output of every finished path, in finish order.  This
        #: is the "stdout transcript": Figure 1's print-then-fail pattern
        #: lands here even though failed paths produce no Solution.
        self.transcript: list[PathOutput] = []
        self._locked = False

    # ------------------------------------------------------------------

    def run(self, guest: Union[str, Program]) -> SearchResult:
        """Assemble (if needed), load, and explore *guest* exhaustively."""
        program = assemble(guest) if isinstance(guest, str) else guest
        if self.verify != "off":
            from repro.analysis.verifier import verify_program

            self.last_report = verify_program(
                program, self.verify, replay_mode=self.replay_mode
            )
        stats = SearchStats(registry=self.registry)
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None
        self._locked = False
        self.transcript = []

        state, regs = self.libos.load(program, self.pool)
        self.vcpu.regs.load(regs.frozen())
        if self.recorder is not None:
            self.recorder.begin_segment(())
        stats.evaluations += 1
        self._run_pending(_Pending(state, (), None), stats, solutions)

        while True:
            if (
                self.max_solutions is not None
                and len(solutions) >= self.max_solutions
            ):
                stop_reason = "max_solutions"
                break
            if (
                self.max_evaluations is not None
                and stats.evaluations >= self.max_evaluations
            ):
                stop_reason = "max_evaluations"
                break
            if (
                self.max_total_steps is not None
                and self.vcpu.vmcs.guest_instructions >= self.max_total_steps
            ):
                stop_reason = "max_total_steps"
                break
            ext = self._strategy.next()
            if ext is None:
                break
            stats.evaluations += 1
            self._run_pending(self._start_extension(ext), stats, solutions)

        exhausted = stop_reason is None
        self._strategy.drain()
        stats.peak_frontier = self._strategy.stats.peak_frontier
        stats.extra.update(self._machine_stats())
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self._strategy.name,
            exhausted=exhausted,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------

    def _run_pending(self, pending: _Pending, stats: SearchStats,
                     solutions: list[Solution]) -> str:
        """Run one extension step to its boundary (guess/fail/exit/kill).

        Returns the outcome kind; any candidates created go to the
        strategy, so step-driven controllers (the externally-controlled
        strategy of §3.1) can reuse the whole mechanism.
        """
        while True:
            budget = self.max_steps_per_extension - pending.steps_used
            self.vcpu.attach(pending.state.space)
            exit_event = self.vcpu.enter(max_steps=max(budget, 1))
            pending.steps_used += exit_event.steps
            action = self.libos.handle_exit(exit_event, self.vcpu, pending.state)

            if isinstance(action, ContinueAction):
                if pending.steps_used >= self.max_steps_per_extension:
                    if _TRACER.enabled:
                        _TRACER.emit(
                            _events.SEARCH_KILL, depth=len(pending.path),
                            path=list(pending.path), steps=pending.steps_used,
                        )
                    self._finish(pending, "kill", stats)
                    return "kill"
                continue
            if isinstance(action, StrategyAction):
                self._select_strategy(action.name)
                continue
            if isinstance(action, GuessAction):
                return self._handle_guess(action, pending, stats)
            if isinstance(action, GuessFailAction):
                stats.fails += 1
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_FAIL, depth=len(pending.path),
                        path=list(pending.path), steps=pending.steps_used,
                    )
                self._finish(pending, "fail", stats)
                return "fail"
            if isinstance(action, ExitAction):
                stats.completions += 1
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_SOLUTION,
                        depth=len(pending.path),
                        path=list(pending.path),
                        steps=pending.steps_used,
                    )
                solutions.append(
                    Solution(
                        value=(action.status, pending.state.console.text),
                        path=pending.path,
                    )
                )
                self._finish(pending, "exit", stats)
                return "exit"
            if isinstance(action, KillAction):
                stats.kills += 1
                stats.extra.setdefault("kill_reasons", []).append(action.reason)
                if _TRACER.enabled:
                    _TRACER.emit(
                        _events.SEARCH_KILL, depth=len(pending.path),
                        path=list(pending.path), steps=pending.steps_used,
                        reason=action.reason,
                    )
                self._finish(pending, "kill", stats)
                return "kill"
            raise AssertionError(f"unhandled action {action!r}")  # pragma: no cover

    def _start_extension(self, ext: Extension) -> _Pending:
        """Restore a snapshot and prime it with the extension number."""
        cand: _Candidate = ext.candidate
        regs, space, files = self.manager.restore(cand.snapshot)
        self.vcpu.regs.load(regs)
        self.vcpu.regs.rax = ext.number
        path = cand.path + (ext.number,)
        if self.recorder is not None:
            self.recorder.begin_segment(path)
        state = ExecState(space, files, cand.console.fork_cow())
        return _Pending(state, path, cand)

    def _handle_guess(self, action: GuessAction, pending: _Pending,
                      stats: SearchStats) -> str:
        """Take a snapshot at the guess point and fan out extensions."""
        n = action.n
        if action.hints is not None and len(action.hints) != n:
            raise GuessError("hint vector length does not match fan-out")
        if n == 0:
            # A zero-fanout guess is a dead end, exactly like sys_guess_fail.
            stats.fails += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.SEARCH_FAIL, depth=len(pending.path),
                    path=list(pending.path), steps=pending.steps_used,
                )
            self._finish(pending, "fail", stats)
            return "fail"
        self._locked = True
        parent_snap = pending.parent.snapshot if pending.parent else None
        snap = self.manager.take(
            pending.state.space,
            regs=self.vcpu.regs.frozen(),
            files=pending.state.files,
            parent=parent_snap if parent_snap and parent_snap.alive else None,
        )
        cand = _Candidate(snap, pending.path, n, pending.state.console.fork_cow())
        snap.meta["fanout"] = n
        snap.meta["path"] = pending.path
        self.tree.add(snap)
        self.tree.pin(snap, n)
        stats.candidates += 1
        if _TRACER.enabled:
            _TRACER.emit(
                _events.SEARCH_GUESS, n=n, depth=len(pending.path),
                sid=snap.sid, path=list(pending.path),
                steps=pending.steps_used,
            )
        self._strategy.add(
            Extension(
                cand,
                number=i,
                hint=action.hints[i] if action.hints is not None else None,
                depth=len(pending.path),
            )
            for i in range(n)
        )
        # The pre-guess execution is abandoned; the scheduler decides
        # which extension (not necessarily one of these) runs next.
        self._retire(pending)
        return "guess"

    def _finish(self, pending: _Pending, outcome: str, stats: SearchStats) -> None:
        """Record a finished path's output and release its resources."""
        self.transcript.append(
            PathOutput(pending.path, pending.state.console.data, outcome)
        )
        self._retire(pending)

    def _retire(self, pending: _Pending) -> None:
        pending.state.free()
        if pending.parent is not None:
            self.tree.unpin(pending.parent.snapshot)

    #: When False, guest ``sys_guess_strategy`` calls are acknowledged
    #: but ignored — used by externally-controlled sessions, where the
    #: external entity owns scheduling (§3.1).
    allow_guest_strategy: bool = True

    def _select_strategy(self, name: str) -> None:
        if not self.allow_guest_strategy or name == self._strategy.name:
            return
        if self._locked:
            raise GuessError(
                f"cannot switch strategy to {name!r} after the first guess"
            )
        self._strategy = get_strategy(name)

    def _machine_stats(self) -> dict:
        """Cost counters from every layer, for benches and EXPERIMENTS.md."""
        vmcs = self.vcpu.vmcs
        replay = (
            {
                "nondet_recorded": self.recorder.recorded,
                "nondet_replayed": self.recorder.replayed,
            }
            if self.recorder is not None
            else {}
        )
        return {
            **replay,
            "vm_exits": vmcs.exits,
            "vm_exit_counts": {
                reason.value: count for reason, count in vmcs.exit_counts.items()
            },
            "guest_instructions": vmcs.guest_instructions,
            "snapshots_taken": self.manager.stats.taken,
            "snapshots_restored": self.manager.stats.restored,
            "snapshots_peak_live": self.manager.stats.peak_live,
            "frames_live": self.pool.live_frames,
            "frames_peak": self.pool.peak_live_frames,
            "frames_copied": self.pool.stats.copied,
            "file_stats": self.libos.file_stats.as_dict(),
            "syscall_counts": dict(self.libos.dispatcher.counts),
        }

    # ------------------------------------------------------------------

    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    def solutions_text(self, result: SearchResult) -> list[str]:
        """Console text of each completed path (convenience accessor)."""
        return [value[1] for value in result.solution_values]

    def failed_output(self) -> list[str]:
        """Output of failed paths (Figure 1's print-then-fail boards)."""
        return [p.text for p in self.transcript if p.outcome == "fail" and p.text]
