"""Backtracking Python guests over real ``os.fork`` (kernel COW).

§3 opens with exactly this design: "Sequential depth-first-search
exploration of a search problem could be implemented by simply issuing a
fork before exploring any extension off that partial candidate, and
having the child process explore the subtree while the parent waits for
completion."  The paper then rejects it — fork creates a runnable thread
per candidate, forked processes share file descriptors, and the
overheads are large.  We implement it anyway, carefully contained, for
two reasons: it demonstrates the programming model on *real* OS
copy-on-write, and it is the honest measurement point for the paper's
§3 critique (E2 discusses it; the engines' cost counters quantify what
the libOS design fixes).

Caveats (all inherent to the approach, per the paper):

* DFS only — the "scheduler" is the process tree itself;
* solutions stream back over a pipe, so values must be JSON-serialisable
  and solution lines must fit in PIPE_BUF;
* guests must not hold locks/threads across guesses (fork semantics).
"""

from __future__ import annotations

import json
import os
import sys as _sys
from typing import Any, Callable, NoReturn, Optional, Sequence

from repro.core.errors import GuessError, GuessFail
from repro.core.result import SearchResult, SearchStats, Solution


class _ForkSys:
    """The guest-visible ``sys`` object; every guess forks for real."""

    def __init__(self, write_fd: int, max_depth: int):
        self._write_fd = write_fd
        self._max_depth = max_depth
        self.path: list[int] = []

    def guess(self, n: int, hints: Optional[Sequence[float]] = None) -> int:
        if n < 0:
            raise GuessError(f"guess fan-out must be >= 0, got {n}")
        if n == 0:
            self.fail()
        if len(self.path) >= self._max_depth:
            self.fail()
        for choice in range(n):
            pid = os.fork()
            if pid == 0:
                # The child IS the extension step: the parent's entire
                # address space was snapshotted by the kernel's COW fork.
                self.path.append(choice)
                return choice
            os.waitpid(pid, 0)
        # All extensions explored; this process was only the candidate.
        os._exit(0)

    def fail(self) -> NoReturn:
        os._exit(0)

    def strategy(self, name: str) -> bool:
        if name.lower() != "dfs":
            raise GuessError("the fork engine only supports DFS")
        return True

    def emit_solution(self, value: Any) -> None:
        line = json.dumps({"path": self.path, "value": value}) + "\n"
        os.write(self._write_fd, line.encode())


class PosixEngine:
    """Explore a Python guest with one OS process per candidate."""

    def __init__(self, max_depth: int = 64, max_solutions: Optional[int] = None):
        self.max_depth = max_depth
        self.max_solutions = max_solutions

    def run(self, guest: Callable[..., Any], *args: Any, **kwargs: Any) -> SearchResult:
        """Run *guest* under fork-based DFS and collect its solutions.

        The guest runs in a child process tree; the calling process only
        reads results, so engine state in the caller never sees the
        forks.
        """
        read_fd, write_fd = os.pipe()
        root = os.fork()
        if root == 0:
            os.close(read_fd)
            status = 0
            try:
                fork_sys = _ForkSys(write_fd, self.max_depth)
                try:
                    value = guest(fork_sys, *args, **kwargs)
                except GuessFail:
                    os._exit(0)
                fork_sys.emit_solution(value)
            except BaseException:  # noqa: BLE001 - child must never escape
                status = 1
            finally:
                try:
                    _sys.stdout.flush()
                    _sys.stderr.flush()
                finally:
                    os._exit(status)

        os.close(write_fd)
        chunks = []
        while True:
            chunk = os.read(read_fd, 65536)
            if not chunk:
                break
            chunks.append(chunk)
        os.close(read_fd)
        os.waitpid(root, 0)

        solutions = []
        for line in b"".join(chunks).splitlines():
            record = json.loads(line)
            solutions.append(
                Solution(value=record["value"], path=tuple(record["path"]))
            )
            if self.max_solutions is not None and len(solutions) >= self.max_solutions:
                break
        stats = SearchStats()
        stats.completions = len(solutions)
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy="dfs",
            exhausted=self.max_solutions is None or len(solutions) < self.max_solutions,
        )
