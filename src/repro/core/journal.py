"""The write-ahead run journal: durable state for interruptible search.

The process-parallel engine's coordinator is a single point of failure:
workers are disposable (their subtrees are rebuildable by replay), but
until this module the coordinator's frontier, spilled tasks and found
solutions lived only in its heap.  The journal fixes that with the
cheapest durable representation the paper's replay lever allows —
*decision prefixes, not page tables*: because a certified-deterministic
guest can be rehydrated anywhere by replaying a prefix, the complete
recoverable state of a machine-scale run is a few KB of JSONL.

Format
------
Append-only JSONL.  Each record is one canonically encoded JSON object
(sorted keys, no whitespace) carrying:

* ``epoch`` — a monotonically increasing record number.  Epochs survive
  resume: a resumed run continues numbering where the journal left off,
  so the epoch is a total order over the whole run *lineage*.
* ``type`` — ``run_begin``, ``resume``, ``dispatch``, ``complete``,
  ``solution``, ``nondet``, ``poisoned``, ``drop``, ``run_end``.
* ``crc`` — CRC32 of the record's canonical encoding without the
  ``crc`` field.  Detects torn writes and bit rot on recovery.

Durability is a policy knob (``fsync="always" | "batch" | "off"``),
mirroring main-memory-database checkpointers: ``always`` fsyncs every
append (crash-consistent against power loss), ``batch`` fsyncs every
N records and on close (crash-consistent against process death, the
coordinator-kill case, at near-zero overhead), ``off`` never fsyncs.
Every policy flushes each record to the OS, so ``kill -9`` of the
coordinator loses at most one torn tail record.

Recovery
--------
:func:`recover` scans the journal, verifies CRCs, drops a torn tail
(counted, and truncated away before new records are appended) and skips
corrupt interior records (counted, surfaced — same semantics as
``trace_report``'s ``load_events``).  It rebuilds:

* the **pending frontier** — every task ever introduced (the root, each
  spill, each dispatch) that has no ``complete`` or ``poisoned`` record;
* the **solution multiset** — solutions ride inside their task's
  ``complete`` record, so a task's results become durable atomically:
  either the completion and all its solutions survived, or the task is
  re-explored and re-finds them.  Nothing is lost, nothing is doubled;
* the **quarantine** — poisoned tasks stay quarantined across resume,
  with their recorded evidence;
* the **completed-key set** — a resumed run that re-explores a subtree
  whose ``complete`` record was corrupted will re-spill children that
  already completed; the engine filters re-spills against this set so
  their solutions are never double-counted;
* the **nondet-event log** — under record/replay
  (:mod:`repro.core.recorder`) each task's freshly recorded
  nondeterministic outcomes land in a ``nondet`` record *before* the
  task's ``complete`` record, so a resumed run replays exactly the
  outcomes the durable solutions were computed from.  (The ordering
  matters: a surviving ``nondet`` whose ``complete`` was lost makes the
  re-explored subtree reproduce, not re-roll, its solutions.)
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.errors import JournalError, ResumeMismatchError
from repro.obs import events as _events
from repro.obs.trace import TRACER as _TRACER
from repro.search.shard import PrefixTask

#: Journal format version, recorded in every ``run_begin`` header.
JOURNAL_VERSION = 1

#: Supported fsync policies (see module docstring).
FSYNC_POLICIES = ("always", "batch", "off")

#: ``batch`` policy: fsync every this many appends.
DEFAULT_BATCH_RECORDS = 64


class TornWrite(Exception):
    """Raised by a journal fault hook to inject a torn tail write.

    The writer appends ``partial`` (a prefix of the encoded record),
    flushes it, then raises
    :class:`~repro.core.errors.CoordinatorKilled` — reproducing the
    on-disk state of a coordinator killed mid-``write(2)``.
    """

    def __init__(self, partial: str):
        self.partial = partial
        super().__init__("torn journal write injected")


def encode_record(record: dict) -> str:
    """Canonical one-line encoding of *record*, CRC appended.

    The CRC is computed over the canonical encoding (sorted keys, no
    whitespace) of the record *without* its ``crc`` field; verification
    re-derives the same encoding, so any mutated byte — including in
    the epoch or type — fails the check.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    with_crc = dict(record)
    with_crc["crc"] = crc
    return json.dumps(with_crc, sort_keys=True, separators=(",", ":")) + "\n"


def decode_record(line: str) -> Optional[dict]:
    """Decode and verify one journal line; None if corrupt.

    Corrupt means: not JSON, not an object, missing ``crc``/``epoch``/
    ``type``, or CRC mismatch.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if not isinstance(crc, int):
        return None
    if "epoch" not in record or "type" not in record:
        return None
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF) != crc:
        return None
    return record


class JournalWriter:
    """Appends CRC-sealed records to a run journal.

    Parameters
    ----------
    path:
        Journal file.  Created (truncated) unless *truncate_to* is
        given, in which case the file is opened for resume: truncated
        to the last valid record boundary recovery reported, then
        appended to.
    fsync:
        Durability policy, one of :data:`FSYNC_POLICIES`.
    start_epoch:
        First epoch to assign (a resumed run continues the lineage).
    fault_hook:
        Chaos seam, called as ``fault_hook(epoch, line)`` before the
        encoded line is written.  It may return a mutated line (bit
        flips), raise :class:`TornWrite` (torn tail + kill), or raise
        :class:`~repro.core.errors.CoordinatorKilled` (kill before the
        record lands).  ``None`` return keeps the original line.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the
        writer maintains ``journal.records`` and ``journal.fsyncs``.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        batch_records: int = DEFAULT_BATCH_RECORDS,
        start_epoch: int = 0,
        truncate_to: Optional[int] = None,
        fault_hook: Optional[Callable[[int, str], Optional[str]]] = None,
        registry=None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if batch_records < 1:
            raise JournalError("batch_records must be >= 1")
        self.path = path
        self.fsync = fsync
        self.batch_records = batch_records
        self.fault_hook = fault_hook
        self._epoch = start_epoch
        self._since_sync = 0
        self._closed = False
        # NB: MetricsRegistry defines __len__, so an empty registry is
        # falsy — the identity check is load-bearing.
        has_registry = registry is not None
        self._c_records = (
            registry.counter("journal.records") if has_registry else None
        )
        self._c_fsyncs = (
            registry.counter("journal.fsyncs") if has_registry else None
        )
        if truncate_to is None:
            self._fh = open(path, "w", encoding="utf-8")
        else:
            # Resume: chop the torn tail recovery found, keep the rest.
            self._fh = open(path, "r+", encoding="utf-8")
            self._fh.truncate(truncate_to)
            self._fh.seek(0, os.SEEK_END)

    @property
    def epoch(self) -> int:
        """The epoch the *next* record will carry."""
        return self._epoch

    def append(self, rtype: str, **fields: Any) -> int:
        """Seal and append one record; returns its epoch.

        The record is flushed to the OS before return under every fsync
        policy; ``always`` additionally fsyncs, ``batch`` fsyncs every
        :attr:`batch_records` appends.
        """
        if self._closed:
            raise JournalError("append to a closed journal")
        epoch = self._epoch
        record = {"epoch": epoch, "type": rtype}
        record.update(fields)
        line = encode_record(record)
        if self.fault_hook is not None:
            try:
                mutated = self.fault_hook(epoch, line)
            except TornWrite as torn:
                self._fh.write(torn.partial)
                self._fh.flush()
                from repro.core.errors import CoordinatorKilled

                raise CoordinatorKilled(epoch) from None
            if mutated is not None:
                line = mutated
        self._fh.write(line)
        self._fh.flush()
        self._epoch = epoch + 1
        if self._c_records is not None:
            self._c_records.inc()
        if self.fsync == "always":
            self._sync()
        elif self.fsync == "batch":
            self._since_sync += 1
            if self._since_sync >= self.batch_records:
                self._sync()
        return epoch

    def _sync(self) -> None:
        os.fsync(self._fh.fileno())
        self._since_sync = 0
        if self._c_fsyncs is not None:
            self._c_fsyncs.inc()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.flush()
            if self.fsync != "off":
                self._sync()
        finally:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


@dataclass
class RecoveredRun:
    """Everything :func:`recover` rebuilt from a journal.

    ``pending`` is the frontier to resume from (introduction order —
    deterministic); ``solutions`` the durable ``(path, status, text)``
    triples from completed tasks; ``completed_keys`` every task key with
    a surviving ``complete`` record (the engine's re-spill filter);
    ``poisoned`` the quarantined tasks with their evidence.
    """

    path: str
    header: Optional[dict]
    last_epoch: int = -1
    #: Byte offset just past the last valid record; a resuming writer
    #: truncates here so the torn tail never precedes new records.
    valid_bytes: int = 0
    records: int = 0
    #: Corrupt interior records, skipped and counted (bit rot).
    skipped: int = 0
    #: Corrupt records at end of file, dropped as a torn tail.
    torn: int = 0
    pending: list[PrefixTask] = field(default_factory=list)
    completed_keys: set = field(default_factory=set)
    solutions: list[tuple] = field(default_factory=list)
    poisoned: list[tuple] = field(default_factory=list)
    dropped: list[PrefixTask] = field(default_factory=list)
    #: Recorded nondet events (record dicts) in journal order; the
    #: resuming engine merges them into its replay log.
    nondet_events: list[dict] = field(default_factory=list)
    run_end: Optional[dict] = None
    #: Per-type record counts (for the inspect CLI).
    counts: dict = field(default_factory=dict)
    resumes: int = 0
    #: Highest fencing token observed in any dispatch record; a resumed
    #: coordinator seeds its lease table past this so tokens stay
    #: monotonic across coordinator lifetimes (stale results from the
    #: previous life remain refusable).
    last_fence: int = 0
    #: Per-task-key dispatch/expire/stale history, in journal order:
    #: ``{key: [{"event", "worker", "fence", "epoch"}, ...]}``.  Powers
    #: the inspect CLI's lease/fence and blame reporting.
    lease_history: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """True when the journaled run already ran to its end."""
        return self.run_end is not None


def scan(path: str):
    """Low-level journal scan.

    Returns ``(records, skipped, torn, valid_bytes)``: the decoded
    records in file order, the count of corrupt interior lines, the
    count of corrupt lines at the tail, and the byte offset just past
    the last valid record.  A corrupt line followed only by more corrupt
    lines or EOF is torn tail; one followed by any valid record is an
    interior skip.
    """
    records: list[dict] = []
    skipped = 0
    valid_bytes = 0
    offset = 0
    tail_bad = 0
    with open(path, "rb") as fh:
        for raw in fh:
            offset += len(raw)
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            record = decode_record(text)
            if record is None:
                tail_bad += 1
                continue
            skipped += tail_bad
            tail_bad = 0
            records.append(record)
            valid_bytes = offset
    return records, skipped, tail_bad, valid_bytes


def recover(path: str) -> RecoveredRun:
    """Rebuild the resumable state of an interrupted run from *path*.

    Raises :class:`~repro.core.errors.JournalError` when the file is
    missing or no ``run_begin`` header survived.
    """
    if not os.path.exists(path):
        raise JournalError(f"journal not found: {path}")
    records, skipped, torn, valid_bytes = scan(path)
    out = RecoveredRun(path=path, header=None, skipped=skipped, torn=torn,
                       valid_bytes=valid_bytes)
    known: dict[tuple, PrefixTask] = {}
    poisoned_keys: set = set()
    dropped_keys: set = set()
    for record in records:
        out.records += 1
        rtype = record["type"]
        out.counts[rtype] = out.counts.get(rtype, 0) + 1
        out.last_epoch = max(out.last_epoch, record["epoch"])
        if rtype == "run_begin":
            if out.header is None:
                out.header = record
                root = PrefixTask.from_record(record["root"])
                known.setdefault(root.key(), root)
            continue
        if rtype == "resume":
            out.resumes += 1
            continue
        if rtype == "dispatch":
            task = PrefixTask.from_record(record["task"])
            known[task.key()] = task  # latest attempt wins
            out.last_fence = max(out.last_fence, task.fence)
            out.lease_history.setdefault(task.key(), []).append({
                "event": "dispatch",
                "worker": record.get("worker"),
                "fence": task.fence,
                "attempt": task.attempt,
                "epoch": record["epoch"],
            })
            continue
        if rtype in ("expire", "stale"):
            # Lease bookkeeping: an expired lease's task was requeued
            # (its own dispatch record keeps it in ``known``); a stale
            # record is purely evidentiary — the fenced-off result was
            # discarded.  Neither changes the rebuilt frontier.
            key = tuple(record.get("task", {}).get("prefix", ()))
            fence = record.get("fence", 0)
            out.last_fence = max(out.last_fence, fence)
            out.lease_history.setdefault(key, []).append({
                "event": rtype,
                "worker": record.get("worker"),
                "fence": fence,
                "epoch": record["epoch"],
            })
            continue
        if rtype == "join":
            continue  # membership note; nothing to rebuild
        if rtype == "complete":
            key = tuple(record["task"]["prefix"])
            out.completed_keys.add(key)
            fence = record["task"].get("fence", 0)
            history = out.lease_history.get(key)
            if fence and history and (
                len(history) > 1 or history[0].get("fence") != fence
            ):
                # Close the lineage of a task that was re-dispatched or
                # fenced: record which grant actually landed.  (Tasks
                # with one dispatch and a matching completion carry no
                # forensic interest and stay out of the history.)
                history.append({
                    "event": "complete",
                    "worker": record.get("worker"),
                    "fence": fence,
                    "epoch": record["epoch"],
                })
            for path_, status, text in record.get("solutions", []):
                out.solutions.append((tuple(path_), status, text))
            for spill in record.get("spilled", []):
                task = PrefixTask.from_record(spill)
                known.setdefault(task.key(), task)
            continue
        if rtype == "nondet":
            out.nondet_events.extend(record.get("events", []))
            continue
        if rtype == "poisoned":
            task = PrefixTask.from_record(record["task"])
            known.setdefault(task.key(), task)
            poisoned_keys.add(task.key())
            out.poisoned.append((task, record.get("evidence", [])))
            continue
        if rtype == "drop":
            task = PrefixTask.from_record(record["task"])
            known.setdefault(task.key(), task)
            dropped_keys.add(task.key())
            continue
        if rtype == "run_end":
            out.run_end = record
            continue
        # Unknown record types (a newer writer) are counted and ignored.
    if out.header is None:
        raise JournalError(
            f"journal {path} has no surviving run_begin header "
            f"({out.records} records, {skipped} skipped, {torn} torn)"
        )
    # Dropped tasks get a fresh chance on resume: the retries they
    # exhausted died with the old worker pool.  (Poisoned tasks do not —
    # quarantine is evidence-backed and survives the pool.)
    out.pending = [
        task for key, task in known.items()
        if key not in out.completed_keys and key not in poisoned_keys
    ]
    out.dropped = [known[key] for key in dropped_keys]
    if _TRACER.enabled:
        _TRACER.emit(
            _events.JOURNAL_RECOVER, records=out.records,
            pending=len(out.pending), solutions=len(out.solutions),
            skipped=out.skipped, torn=out.torn,
        )
    return out


def program_digest(program) -> str:
    """Stable content hash of an assembled guest program.

    Covers the loaded image (text, data, bases, entry) — everything that
    determines execution — and nothing volatile (source text formatting,
    symbol names).
    """
    import hashlib

    h = hashlib.sha256()
    h.update(program.text)
    h.update(b"\x00")
    h.update(program.data)
    h.update(
        f"|{program.text_base}|{program.data_base}|{program.entry}".encode()
    )
    return h.hexdigest()


def check_resume(recovered: RecoveredRun, digest: str,
                 nondet_sites: Optional[tuple],
                 replay_mode: Optional[str] = None) -> None:
    """Refuse to resume a journal that belongs to a different run.

    The digest must match exactly.  The analyzer certificate state is
    compared when both sides have one: a journal recorded under
    ``verify="off"`` (``certified`` null) accepts any current state, and
    vice versa — but a *recorded* certificate that contradicts the
    *current* analysis means the analyzer (or program) changed under us.
    The replay mode is compared the same way: resuming a recorded run
    with replay off would re-roll the journaled nondet outcomes and
    break the solution-multiset guarantee, so the engine refuses.
    """
    header = recovered.header or {}
    recorded = header.get("program")
    if recorded != digest:
        raise ResumeMismatchError("program digest", recorded, digest)
    recorded_sites = header.get("nondet_sites")
    if recorded_sites is not None and nondet_sites is not None:
        current = [[pc, lint] for pc, lint in nondet_sites]
        if recorded_sites != current:
            raise ResumeMismatchError(
                "analyzer nondeterminism sites", recorded_sites, current
            )
    recorded_mode = header.get("replay_mode")
    if (
        recorded_mode is not None
        and replay_mode is not None
        and (recorded_mode == "off") != (replay_mode == "off")
    ):
        raise ResumeMismatchError("replay mode", recorded_mode, replay_mode)
