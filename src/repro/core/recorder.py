"""Record/replay of nondeterministic guest events (the rr lever).

The backtracking model assumes re-execution reaches the same state, so
until this module only analyzer-certified deterministic guests could be
sharded across replaying workers or resumed from a journal.  rr's design
("Lightweight User-Space Record And Replay") removes that restriction:
record the *outcome* of every nondeterministic site the first time it
executes, then interpose the recorded outcome on every re-execution —
the guest becomes effectively deterministic without being rewritten.

Three nondeterministic sources exist at the libOS boundary:

* ``sys_time`` — the wall clock (nanoseconds);
* ``sys_getrandom`` — entropy written into guest memory;
* ``read(0, ...)`` — interactive console input.

Keying
------
An event is keyed by ``(decision prefix, per-segment sequence number)``.
A *segment* is the guest execution between feeding one guess outcome
(or program start) and the next choice point; within a segment the guest
is deterministic **given** the nondet outcomes fed to it, so induction
over the sequence number makes replay exact: the k-th nondet call of the
segment reached via prefix ``p`` is the same site with the same state on
every execution, whichever engine runs it.  The same key therefore
means the same event in the snapshot engine (which executes each segment
exactly once), the replay engines (which re-execute segments from the
program start), and cluster workers (which rehydrate subtrees by prefix
replay) — that shared identity is what makes sequential, process-parallel
and killed-and-resumed runs produce identical solution multisets.

Persistence
-----------
Events ride the run journal as ``nondet`` records (appended *before*
their task's ``complete`` record, so a lost completion still leaves its
events durable and a re-explored subtree replays rather than re-rolls),
and stand alone as a CRC-sealed JSONL replay-log file for the
``--replay-log`` CLI flag.  Tampered or truncated log files raise
:class:`~repro.core.errors.ReplayDivergenceError` — never a silent
divergence.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.errors import ReplayDivergenceError
from repro.obs import events as _events
from repro.obs.trace import TRACER as _TRACER

#: Recognised nondeterministic event kinds.
NONDET_KINDS = ("time", "random", "input")

#: Recorder operating modes (mirrors the CLI ``--replay-mode`` values).
REPLAY_MODES = ("off", "record", "strict")

#: Replay-log file format version (header record of the JSONL file).
REPLAY_LOG_VERSION = 1


@dataclass(frozen=True)
class NondetEvent:
    """One recorded nondeterministic outcome.

    ``path`` is the decision prefix at call time, ``seq`` the 0-based
    index of the call within its segment, ``payload`` the raw outcome
    bytes (little-endian u64 for ``time``, the buffer contents for
    ``random``/``input``).  ``pc`` is the guest program counter of the
    syscall site, carried for diagnostics only — it is not part of the
    identity, so a re-assembled but execution-identical guest replays.
    """

    kind: str
    path: tuple[int, ...]
    seq: int
    payload: bytes
    pc: Optional[int] = None

    def key(self) -> tuple[tuple[int, ...], int]:
        return (self.path, self.seq)

    def to_record(self) -> dict:
        """JSON-safe form (journal ``nondet`` records, replay-log lines)."""
        return {
            "kind": self.kind,
            "path": list(self.path),
            "seq": self.seq,
            "data": self.payload.hex(),
            "pc": self.pc,
        }

    @classmethod
    def from_record(cls, record: dict) -> "NondetEvent":
        """Rebuild an event from :meth:`to_record` output.

        Raises :class:`~repro.core.errors.ReplayDivergenceError` on a
        malformed record — a log that cannot be decoded must never be
        silently skipped (skipping would *be* a divergence).
        """
        try:
            kind = record["kind"]
            if kind not in NONDET_KINDS:
                raise ValueError(f"unknown nondet kind {kind!r}")
            return cls(
                kind=kind,
                path=tuple(int(d) for d in record["path"]),
                seq=int(record["seq"]),
                payload=bytes.fromhex(record["data"]),
                pc=record.get("pc"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplayDivergenceError(
                f"malformed nondet event record {record!r}: {exc}"
            ) from None


class NondetLog:
    """The keyed store of recorded nondet outcomes for one run lineage.

    Merging is first-write-wins: an event key is immutable once
    recorded, because durable state (journaled solutions) may already
    depend on its payload.  Conflicting re-recordings — a crashed
    worker's retry re-rolling a segment whose original events never
    reached the coordinator is the benign case — are counted, not
    applied.
    """

    def __init__(self, events: Iterable[NondetEvent] = ()):
        self._events: dict[tuple[tuple[int, ...], int], NondetEvent] = {}
        #: Merge attempts that hit an existing key with different content.
        self.conflicts = 0
        for event in events:
            self.record(event)

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, NondetLog):
            return NotImplemented
        return self._events == other._events

    def lookup(self, path: tuple[int, ...], seq: int) -> Optional[NondetEvent]:
        return self._events.get((tuple(path), seq))

    def record(self, event: NondetEvent) -> bool:
        """Add *event*; returns False (and counts) on a conflicting key."""
        key = event.key()
        existing = self._events.get(key)
        if existing is not None:
            if existing != event:
                self.conflicts += 1
            return False
        self._events[key] = event
        return True

    def merge(self, events: Iterable[NondetEvent]) -> int:
        """Record every event; returns how many were newly added."""
        return sum(1 for event in events if self.record(event))

    def merge_records(self, records: Iterable[dict]) -> int:
        return self.merge(NondetEvent.from_record(r) for r in records)

    def events(self) -> list[NondetEvent]:
        """All events, ordered by (path, seq) — a canonical order."""
        return sorted(
            self._events.values(), key=lambda e: (e.path, e.seq)
        )

    def to_records(self) -> list[dict]:
        return [event.to_record() for event in self.events()]

    def events_for_task(self, prefix: tuple[int, ...]) -> list[NondetEvent]:
        """Every event a worker needs to explore the subtree at *prefix*.

        That is events on the rehydration path (``path`` a proper prefix
        of the task's prefix) *plus* events inside the subtree itself
        (``path`` extends the prefix) — the latter exist after a resume
        whose ``complete`` record was lost while its ``nondet`` record
        survived, and replaying them is what keeps the re-explored
        subtree's solutions identical to the durable ones.
        """
        prefix = tuple(prefix)
        out = []
        for event in self._events.values():
            p = event.path
            if p[: len(prefix)] == prefix or prefix[: len(p)] == p:
                out.append(event)
        out.sort(key=lambda e: (e.path, e.seq))
        return out

    def copy(self) -> "NondetLog":
        clone = NondetLog()
        clone._events = dict(self._events)
        return clone

    # -- replay-log files ----------------------------------------------

    def save(self, path: str, program: Optional[str] = None) -> int:
        """Write the log as a CRC-sealed JSONL replay-log file.

        Each line is a canonically encoded record with a ``crc`` field
        (the journal's sealing scheme); the first line is a header
        carrying the format version and, when given, the guest program
        digest.  Returns the number of event lines written.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_seal({
                "type": "replay_log",
                "version": REPLAY_LOG_VERSION,
                "program": program,
                "events": len(events),
            }))
            for event in events:
                record = {"type": "nondet"}
                record.update(event.to_record())
                fh.write(_seal(record))
            fh.flush()
            os.fsync(fh.fileno())
        return len(events)

    @classmethod
    def load(cls, path: str, program: Optional[str] = None) -> "NondetLog":
        """Load a replay-log file, verifying every line.

        Any corruption — a flipped byte, a truncated tail, a missing
        header, an event-count mismatch from deleted lines — raises
        :class:`~repro.core.errors.ReplayDivergenceError`.  A log that
        fails verification must refuse loudly: replaying a partial or
        mutated log *is* divergence, just deferred.
        """
        if not os.path.exists(path):
            raise ReplayDivergenceError(f"replay log not found: {path}")
        header: Optional[dict] = None
        log = cls()
        with open(path, "rb") as fh:
            for lineno, raw in enumerate(fh, start=1):
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                record = _unseal(text)
                if record is None:
                    raise ReplayDivergenceError(
                        f"replay log {path} is corrupt at line {lineno} "
                        "(CRC mismatch or undecodable record); refusing "
                        "to replay a tampered or truncated log"
                    )
                if record.get("type") == "replay_log":
                    header = record
                    continue
                log.record(NondetEvent.from_record(record))
        if header is None:
            raise ReplayDivergenceError(
                f"replay log {path} has no header record; the file is "
                "truncated or is not a replay log"
            )
        if header.get("events") != len(log):
            raise ReplayDivergenceError(
                f"replay log {path} header declares {header.get('events')} "
                f"events but {len(log)} survived: lines were removed"
            )
        recorded = header.get("program")
        if program is not None and recorded is not None and recorded != program:
            raise ReplayDivergenceError(
                f"replay log {path} was recorded for program {recorded}, "
                f"refusing to replay against {program}"
            )
        return log


def _seal(record: dict) -> str:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    sealed = dict(record)
    sealed["crc"] = crc
    return json.dumps(sealed, sort_keys=True, separators=(",", ":")) + "\n"


def _unseal(line: str) -> Optional[dict]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if not isinstance(crc, int):
        return None
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF) != crc:
        return None
    return record


class Recorder:
    """One engine's record/replay session over a :class:`NondetLog`.

    The engine attaches the recorder to its syscall dispatcher and calls
    :meth:`begin_segment` every time execution (re-)enters a segment —
    at the program start and after each guess outcome is fed.  The
    dispatcher then routes every nondeterministic syscall through
    :meth:`intercept`.

    Modes:

    * ``"record"`` — replay recorded outcomes where the key exists,
      generate-and-record fresh outcomes where it does not (the rr
      record leg, and the replay leg for already-recorded territory);
    * ``"strict"`` — replay only; a key miss raises
      :class:`~repro.core.errors.ReplayDivergenceError` (verified
      replay of a complete log).

    ``"off"`` is represented by *no* recorder being attached.
    """

    def __init__(self, mode: str = "record",
                 log: Optional[NondetLog] = None):
        if mode not in ("record", "strict"):
            raise ValueError(
                f"recorder mode must be 'record' or 'strict', got {mode!r}"
            )
        self.mode = mode
        self.log = log if log is not None else NondetLog()
        self._path: tuple[int, ...] = ()
        self._seq = 0
        #: Fresh events generated since the last :meth:`drain_fresh`.
        self._fresh: list[NondetEvent] = []
        self.recorded = 0
        self.replayed = 0

    def begin_segment(self, path: tuple[int, ...]) -> None:
        """Reset the per-segment sequence counter for decision *path*."""
        self._path = tuple(path)
        self._seq = 0

    @property
    def position(self) -> tuple[tuple[int, ...], int]:
        """The key the *next* interception will use (for diagnostics)."""
        return (self._path, self._seq)

    def intercept(self, kind: str, pc: Optional[int],
                  generate: Callable[[], bytes]) -> bytes:
        """Resolve one nondeterministic site to its outcome bytes.

        Replays the recorded payload when the current key is in the log
        (verifying the event kind), otherwise generates and records one
        (``record`` mode) or refuses (``strict`` mode).
        """
        path, seq = self._path, self._seq
        self._seq = seq + 1
        event = self.log.lookup(path, seq)
        if event is not None:
            if event.kind != kind:
                raise ReplayDivergenceError(
                    f"nondeterministic guest: replay expected a "
                    f"{event.kind!r} event at nondet site {seq} but the "
                    f"guest performed {kind!r}",
                    prefix=path, position=seq, pc=pc,
                )
            self.replayed += 1
            if _TRACER.enabled:
                _TRACER.emit(
                    _events.REPLAY_EVENT, kind=kind, replayed=True,
                    path=list(path), nseq=seq,
                )
            return event.payload
        if self.mode == "strict":
            raise ReplayDivergenceError(
                f"strict replay has no recorded outcome for {kind!r} "
                f"nondet site {seq} — the log is incomplete (truncated?) "
                "or the guest diverged from the recorded execution",
                prefix=path, position=seq, pc=pc,
            )
        payload = generate()
        event = NondetEvent(kind=kind, path=path, seq=seq,
                            payload=payload, pc=pc)
        self.log.record(event)
        self._fresh.append(event)
        self.recorded += 1
        if _TRACER.enabled:
            _TRACER.emit(
                _events.REPLAY_EVENT, kind=kind, replayed=False,
                path=list(path), nseq=seq,
            )
        return payload

    def drain_fresh(self) -> list[NondetEvent]:
        """Events recorded since the last drain (what a worker ships)."""
        fresh, self._fresh = self._fresh, []
        return fresh


def live_time_ns() -> bytes:
    """The live ``sys_time`` outcome: wall-clock nanoseconds, LE u64."""
    return (time.time_ns() & ((1 << 64) - 1)).to_bytes(8, "little")


def live_random(length: int) -> bytes:
    """The live ``sys_getrandom`` outcome: *length* entropy bytes."""
    return os.urandom(length)
