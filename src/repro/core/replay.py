"""Replay-based backtracking engine for Python guests.

CPython cannot snapshot its own interpreter stack, so this engine realises
the paper's programming model — write a "single path to solution" program,
let the system appear to guess every decision — with *decision-prefix
replay*: a partial candidate is the sequence of guess outcomes that leads
to a choice point, and evaluating an extension re-executes the guest,
feeding it the recorded prefix, until it asks a new question.

From the guest's point of view the semantics are exactly Figure 1: it
calls ``sys.guess(n)``, receives an extension number, calls ``sys.fail()``
to backtrack, and never undoes anything by hand.  The *cost model* differs
from lightweight snapshots (restore is O(path work) instead of O(1)),
which is precisely the overhead the machine engine's snapshots remove —
benchmarks E3/E6 measure the two against each other.

Guests must be deterministic given the same guess outcomes; the engine
verifies fan-outs on replay and raises :class:`GuessError` on divergence.
Python callables have no syscall boundary to interpose, so the
record/replay layer for nondeterministic guests (``repro.core.recorder``,
wired into the machine engines — see ``docs/REPLAY.md``) does not apply
here: a Python guest that reads the clock or draws entropy between
guesses is outside this engine's contract, and the fan-out check above
is what turns the resulting divergence into a loud, typed error.
"""

from __future__ import annotations

from typing import Any, Callable, NoReturn, Optional, Protocol, Sequence

from repro.core.errors import GuessError, GuessFail, ReplayDivergenceError
from repro.core.result import SearchResult, SearchStats, Solution
from repro.search import Extension, Strategy, get_strategy


class SysAPI(Protocol):
    """The guest-visible system interface (the paper's three syscalls)."""

    def guess(self, n: int, hints: Optional[Sequence[float]] = None) -> int:
        """Create a partial candidate with *n* extensions and return the
        extension number the search strategy chose (0 .. n-1)."""
        ...

    def fail(self) -> NoReturn:
        """Abandon the current extension step; never returns."""
        ...

    def strategy(self, name: str) -> bool:
        """Select the search strategy (before the first guess)."""
        ...


class _PathCandidate:
    """A partial candidate: the decision prefix reaching a choice point.

    ``fanouts[i]`` records the fan-out of the guess answered by
    ``prefix[i]`` so replays can detect nondeterministic guests.
    """

    __slots__ = ("prefix", "fanouts", "n", "hints")

    def __init__(
        self,
        prefix: tuple[int, ...],
        fanouts: tuple[int, ...],
        n: int,
        hints: Optional[tuple[float, ...]],
    ):
        self.prefix = prefix
        self.fanouts = fanouts
        self.n = n
        self.hints = hints

    @property
    def depth(self) -> int:
        return len(self.prefix)


class _Suspend(Exception):
    """Internal: the guest reached a new choice point."""

    def __init__(self, n: int, hints: Optional[tuple[float, ...]]):
        self.n = n
        self.hints = hints


class _ReplayContext:
    """The ``sys`` object handed to a guest for one evaluation."""

    def __init__(self, engine: "ReplayEngine", feed: tuple[int, ...],
                 fanouts: tuple[int, ...]):
        self._engine = engine
        self._feed = feed
        self._fanouts = fanouts
        self._pos = 0

    @property
    def decisions_taken(self) -> tuple[int, ...]:
        """The guess outcomes consumed so far in this evaluation."""
        return self._feed[: self._pos]

    def guess(self, n: int, hints: Optional[Sequence[float]] = None) -> int:
        if n < 0:
            raise GuessError(f"guess fan-out must be >= 0, got {n}")
        if hints is not None and len(hints) != n:
            raise GuessError(
                f"got {len(hints)} hints for fan-out {n}; lengths must match"
            )
        if n == 0:
            # A choice with no extensions is a dead end, same as fail().
            raise GuessFail()
        if self._pos < len(self._feed):
            expected = self._fanouts[self._pos]
            if n != expected:
                raise ReplayDivergenceError(
                    "nondeterministic guest: replayed guess fan-out "
                    f"changed from {expected} to {n}",
                    prefix=tuple(self._feed),
                    position=self._pos,
                    expected=expected,
                    actual=n,
                )
            value = self._feed[self._pos]
            self._pos += 1
            self._engine._stats.replayed_decisions += 1
            return value
        raise _Suspend(n, tuple(hints) if hints is not None else None)

    def fail(self) -> NoReturn:
        raise GuessFail()

    def strategy(self, name: str) -> bool:
        self._engine._select_strategy(name)
        return True


class ReplayEngine:
    """Explore a Python guest's search space by deterministic replay.

    Parameters
    ----------
    strategy:
        Registry name (``"dfs"``, ``"bfs"``, ``"astar"``, ...) or a
        ready-made :class:`Strategy` instance.
    max_evaluations / max_solutions / max_depth:
        Optional exploration budgets.  Hitting one stops the search and
        marks the result as not exhausted.

    Example
    -------
    >>> def coin(sys):
    ...     return sys.guess(2)
    >>> ReplayEngine().run(coin).solution_values
    [0, 1]
    """

    def __init__(
        self,
        strategy: str | Strategy = "dfs",
        max_evaluations: Optional[int] = None,
        max_solutions: Optional[int] = None,
        max_depth: Optional[int] = None,
    ):
        if isinstance(strategy, Strategy):
            self._strategy = strategy
        else:
            self._strategy = get_strategy(strategy)
        self.max_evaluations = max_evaluations
        self.max_solutions = max_solutions
        self.max_depth = max_depth
        self._stats = SearchStats()
        self._locked = False

    # ------------------------------------------------------------------

    def _select_strategy(self, name: str) -> None:
        """Honour a guest's ``sys_guess_strategy`` call."""
        if name.lower() == self._strategy.name:
            return
        if self._locked:
            raise GuessError(
                f"cannot switch strategy to {name!r} after the first guess"
            )
        self._strategy = get_strategy(name)

    def run(self, guest: Callable[..., Any], *args: Any, **kwargs: Any) -> SearchResult:
        """Explore every path of *guest* and collect its solutions.

        *guest* is called as ``guest(sys, *args, **kwargs)``; each time it
        runs to completion, its return value becomes a solution and the
        engine backtracks to enumerate further paths (the paper's
        "use backtracking to print all answers").
        """
        self._stats = SearchStats()
        self._locked = False
        stats = self._stats
        solutions: list[Solution] = []
        stop_reason: Optional[str] = None

        def evaluate(prefix: tuple[int, ...], fanouts: tuple[int, ...]) -> None:
            """Run one candidate extension step to fail/suspend/completion."""
            nonlocal stop_reason
            ctx = _ReplayContext(self, prefix, fanouts)
            stats.evaluations += 1
            try:
                value = guest(ctx, *args, **kwargs)
            except GuessFail:
                stats.fails += 1
                return
            except _Suspend as sus:
                if self.max_depth is not None and len(prefix) >= self.max_depth:
                    stats.fails += 1
                    stop_reason = stop_reason or "max_depth"
                    return
                candidate = _PathCandidate(prefix, fanouts, sus.n, sus.hints)
                stats.candidates += 1
                self._locked = True
                self._strategy.add(
                    Extension(
                        candidate,
                        number=i,
                        hint=sus.hints[i] if sus.hints is not None else None,
                        depth=candidate.depth,
                    )
                    for i in range(sus.n)
                )
                return
            stats.completions += 1
            solutions.append(Solution(value=value, path=ctx.decisions_taken))

        # The root evaluation: run the guest with nothing recorded.
        evaluate((), ())
        exhausted = True
        while True:
            if self.max_solutions is not None and len(solutions) >= self.max_solutions:
                exhausted = False
                stop_reason = "max_solutions"
                break
            if self.max_evaluations is not None and stats.evaluations >= self.max_evaluations:
                exhausted = False
                stop_reason = "max_evaluations"
                break
            ext = self._strategy.next()
            if ext is None:
                break
            cand: _PathCandidate = ext.candidate
            evaluate(cand.prefix + (ext.number,), cand.fanouts + (cand.n,))
        if exhausted and stop_reason == "max_depth":
            exhausted = False
        self._strategy.drain()
        stats.peak_frontier = self._strategy.stats.peak_frontier
        return SearchResult(
            solutions=solutions,
            stats=stats,
            strategy=self._strategy.name,
            exhausted=exhausted,
            stop_reason=stop_reason,
        )

    def first_solution(
        self, guest: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Optional[Solution]:
        """Convenience: stop at the first completed path."""
        saved = self.max_solutions
        self.max_solutions = 1
        try:
            result = self.run(guest, *args, **kwargs)
        finally:
            self.max_solutions = saved
        return result.first
