"""Public API: system-level backtracking for guest programs.

Three engines implement the paper's three-syscall interface
(``sys_guess_strategy`` / ``sys_guess`` / ``sys_guess_fail``) over
different substrates:

* :class:`ReplayEngine` (:mod:`repro.core.replay`) -- runs *Python
  callables* as guests.  CPython control state cannot be snapshotted, so
  partial candidates are decision prefixes and restoring one replays the
  guest deterministically (documented substitution; see DESIGN.md §2).
  This is the convenient everyday API and also serves as the
  "re-execution" baseline in benchmarks.
* :class:`MachineEngine` (:mod:`repro.core.machine`) -- runs *assembly
  guests* on the simulated CPU behind the full Figure 2 stack: VM exits,
  libOS, true O(1) lightweight snapshots with COW restore.  This is the
  faithful reproduction of the paper's design.
* :class:`PosixEngine` (:mod:`repro.core.posix`) -- runs Python guests
  with genuine kernel copy-on-write via ``os.fork`` (the §3 approach the
  paper critiques, made safe enough for demos).

All engines accept the same guest programming model and return the same
:class:`SearchResult`.
"""

from repro.core.errors import (
    BudgetExceeded,
    GuessError,
    GuessFail,
    SearchError,
)
from repro.core.replay import ReplayEngine, SysAPI
from repro.core.result import SearchResult, Solution
from repro.core.sysno import (
    SYS_BRK,
    SYS_CLOSE,
    SYS_EXIT,
    SYS_GUESS,
    SYS_GUESS_FAIL,
    SYS_GUESS_HINT,
    SYS_GUESS_STRATEGY,
    SYS_OPEN,
    SYS_READ,
    SYS_WRITE,
    STRATEGY_IDS,
)

_LAZY_ENGINES = {
    "MachineEngine": ("repro.core.machine", "MachineEngine"),
    "ParallelMachineEngine": ("repro.core.parallel", "ParallelMachineEngine"),
    "ReplayMachineEngine": ("repro.core.replay_machine", "ReplayMachineEngine"),
    "PosixEngine": ("repro.core.posix", "PosixEngine"),
    "InteractiveSearch": ("repro.core.interactive", "InteractiveSearch"),
}


def __getattr__(name: str):
    """Lazily expose the machine-guest engines.

    They sit behind ``__getattr__`` because they import the full stack
    (libos -> vmm -> cpu), which itself imports :mod:`repro.core.sysno`;
    eager imports here would create a cycle during package init.
    """
    target = _LAZY_ENGINES.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = target
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "BudgetExceeded",
    "InteractiveSearch",
    "MachineEngine",
    "ParallelMachineEngine",
    "PosixEngine",
    "ReplayMachineEngine",
    "GuessError",
    "GuessFail",
    "ReplayEngine",
    "STRATEGY_IDS",
    "SYS_BRK",
    "SYS_CLOSE",
    "SYS_EXIT",
    "SYS_GUESS",
    "SYS_GUESS_FAIL",
    "SYS_GUESS_HINT",
    "SYS_GUESS_STRATEGY",
    "SYS_OPEN",
    "SYS_READ",
    "SYS_WRITE",
    "SearchError",
    "SearchResult",
    "Solution",
    "SysAPI",
]
