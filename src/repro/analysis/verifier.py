"""The engine-facing verification gate.

Engines call :func:`verify_program` before executing (or sharding) a
guest.  Modes:

* ``"off"`` — no analysis; the pre-verifier behaviour;
* ``"warn"`` — analyze, emit a :class:`GuestVerificationWarning` for
  warning/error findings, but run anyway;
* ``"strict"`` — refuse (raise
  :class:`~repro.core.errors.VerificationError`) when the analyzer
  found error-severity lints or could not certify the program
  deterministic.  The process-parallel engine insists on this bar
  before sharding, because its workers rehydrate subtrees by replaying
  decision prefixes and an uncertified program can diverge mid-replay.
"""

from __future__ import annotations

import warnings

from repro.analysis.lints import analyze
from repro.analysis.report import AnalysisReport
from repro.core.errors import VerificationError
from repro.cpu.assembler import Program
from repro.mem.layout import DEFAULT_STACK_PAGES

# VerificationError is defined in repro.core.errors (so engines can
# catch it without importing this package) and re-exported here as part
# of the analysis API.
__all__ = [
    "VERIFY_MODES",
    "GuestVerificationWarning",
    "VerificationError",
    "nondet_sites",
    "strict_failure",
    "verify_program",
]

VERIFY_MODES = ("off", "warn", "strict")


class GuestVerificationWarning(UserWarning):
    """Non-fatal analyzer findings surfaced under ``verify="warn"``."""


def nondet_sites(report: AnalysisReport) -> tuple[tuple[int, str], ...]:
    """``(pc, lint_id)`` pairs that void the determinism certificate.

    This is the payload engines thread into worker configs so a runtime
    replay divergence can cite the static verdict for the failing site.
    """
    return report.certificate.nondet_sites


def strict_failure(report: AnalysisReport) -> str | None:
    """Why strict mode refuses *report*'s program, or None if it passes."""
    problems: list[str] = []
    if report.errors:
        first = report.errors[0]
        problems.append(
            f"{len(report.errors)} error-severity finding(s), first: "
            f"{first.lint_id} at {first.pc:#x}: {first.message}"
        )
    if not report.certificate.certified:
        reasons = report.certificate.reasons
        shown = "; ".join(reasons[:3])
        if len(reasons) > 3:
            shown += f"; ... ({len(reasons) - 3} more)"
        problems.append(f"not certified deterministic: {shown}")
    if not problems:
        return None
    return (
        "guest program failed strict verification: "
        + " | ".join(problems)
        + ". Run `python -m repro.tools.analyze <source>` for the full "
        "report; use verify='warn' or verify='off' to run anyway "
        "(sequential engines only — replay sharding needs the "
        "certificate)."
    )


def verify_program(
    program: Program,
    mode: str = "warn",
    *,
    stack_pages: int = DEFAULT_STACK_PAGES,
    bss_pages: int = 16,
) -> AnalysisReport | None:
    """Gate *program* behind verification *mode*.

    Returns the analysis report (None when mode is ``"off"``).  Raises
    :class:`~repro.core.errors.VerificationError` in strict mode when
    the program has errors or lacks the determinism certificate.
    """
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"verify mode must be one of {VERIFY_MODES}, got {mode!r}"
        )
    if mode == "off":
        return None
    report = analyze(
        program, stack_pages=stack_pages, bss_pages=bss_pages
    )
    if mode == "strict":
        failure = strict_failure(report)
        if failure is not None:
            raise VerificationError(failure, report=report)
    elif report.errors or report.warnings:
        summary = ", ".join(
            f"{f.lint_id}@{f.pc:#x}"
            for f in (report.errors + report.warnings)[:8]
        )
        warnings.warn(
            f"guest program has analyzer findings ({summary}); "
            "running anyway under verify='warn'",
            GuestVerificationWarning,
            stacklevel=3,
        )
    return report
