"""The engine-facing verification gate.

Engines call :func:`verify_program` before executing (or sharding) a
guest.  Modes:

* ``"off"`` — no analysis; the pre-verifier behaviour;
* ``"warn"`` — analyze, emit a :class:`GuestVerificationWarning` for
  warning/error findings, but run anyway;
* ``"strict"`` — refuse (raise
  :class:`~repro.core.errors.VerificationError`) when the analyzer
  found error-severity lints or could not certify the program
  deterministic.  The process-parallel engine insists on this bar
  before sharding, because its workers rehydrate subtrees by replaying
  decision prefixes and an uncertified program can diverge mid-replay.

The FS crash-consistency lints flow through this gate like any other
finding: warning-tier FS findings surface under ``"warn"``, and an
FS005 (error tier) refuses under ``"strict"``.  They never affect the
determinism certificate — durability and replayability are
independent claims (see docs/ANALYSIS.md, "Static crash lints").
"""

from __future__ import annotations

import warnings

from repro.analysis.lints import analyze
from repro.analysis.report import AnalysisReport
from repro.core.errors import VerificationError
from repro.cpu.assembler import Program
from repro.mem.layout import DEFAULT_STACK_PAGES

# VerificationError is defined in repro.core.errors (so engines can
# catch it without importing this package) and re-exported here as part
# of the analysis API.
__all__ = [
    "VERIFY_MODES",
    "RECORDABLE_LINTS",
    "GuestVerificationWarning",
    "VerificationError",
    "nondet_sites",
    "recordable",
    "strict_failure",
    "verify_program",
]

VERIFY_MODES = ("off", "warn", "strict")

#: Nondeterminism classes the record/replay recorder can neutralise:
#: console input (DT001), clock reads (DT005) and entropy reads (DT006)
#: are all *value* nondeterminism at an interposed syscall, so recording
#: the outcome makes re-execution exact.  The rest stay fatal for
#: sharding even in record mode — DT002 (host-fs open) has side effects
#: beyond a return value, DT003 (uninterposed syscall) never reaches the
#: recorder, and DT004 (unresolved syscall number) cannot be classified
#: at all.
RECORDABLE_LINTS = frozenset({"DT001", "DT005", "DT006"})


class GuestVerificationWarning(UserWarning):
    """Non-fatal analyzer findings surfaced under ``verify="warn"``."""


def nondet_sites(report: AnalysisReport) -> tuple[tuple[int, str], ...]:
    """``(pc, lint_id)`` pairs that void the determinism certificate.

    This is the payload engines thread into worker configs so a runtime
    replay divergence can cite the static verdict for the failing site.
    """
    return report.certificate.nondet_sites


def recordable(report: AnalysisReport) -> bool:
    """Whether record/replay covers every nondeterminism site.

    True when the program is uncertified *only* because of
    :data:`RECORDABLE_LINTS` findings — such a guest becomes effectively
    deterministic (and hence shardable/resumable) once a recorder
    interposes on those sites.  A certified program trivially qualifies.
    """
    sites = report.certificate.nondet_sites
    if report.certificate.certified:
        return True
    return bool(sites) and all(lid in RECORDABLE_LINTS for _, lid in sites)


def strict_failure(
    report: AnalysisReport, *, allow_recordable: bool = False
) -> str | None:
    """Why strict mode refuses *report*'s program, or None if it passes.

    With ``allow_recordable`` (set when a record/replay recorder is
    active), a missing determinism certificate is forgiven when every
    nondet site is recordable; error-severity findings still refuse.
    """
    problems: list[str] = []
    if report.errors:
        first = report.errors[0]
        problems.append(
            f"{len(report.errors)} error-severity finding(s), first: "
            f"{first.lint_id} at {first.pc:#x}: {first.message}"
        )
    if not report.certificate.certified and not (
        allow_recordable and recordable(report)
    ):
        reasons = report.certificate.reasons
        shown = "; ".join(reasons[:3])
        if len(reasons) > 3:
            shown += f"; ... ({len(reasons) - 3} more)"
        hint = ""
        if not allow_recordable and recordable(report):
            hint = (
                " (every nondet site is recordable: --replay-mode=record "
                "would make this program shardable)"
            )
        problems.append(f"not certified deterministic: {shown}{hint}")
    if not problems:
        return None
    return (
        "guest program failed strict verification: "
        + " | ".join(problems)
        + ". Run `python -m repro.tools.analyze <source>` for the full "
        "report; use verify='warn' or verify='off' to run anyway "
        "(sequential engines only — replay sharding needs the "
        "certificate)."
    )


def verify_program(
    program: Program,
    mode: str = "warn",
    *,
    stack_pages: int = DEFAULT_STACK_PAGES,
    bss_pages: int = 16,
    replay_mode: str = "off",
) -> AnalysisReport | None:
    """Gate *program* behind verification *mode*.

    Returns the analysis report (None when mode is ``"off"``).  Raises
    :class:`~repro.core.errors.VerificationError` in strict mode when
    the program has errors or lacks the determinism certificate — unless
    *replay_mode* is active and the certificate fails only on
    :data:`RECORDABLE_LINTS` sites, which the recorder neutralises.
    """
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"verify mode must be one of {VERIFY_MODES}, got {mode!r}"
        )
    if mode == "off":
        return None
    report = analyze(
        program, stack_pages=stack_pages, bss_pages=bss_pages
    )
    if mode == "strict":
        failure = strict_failure(
            report, allow_recordable=replay_mode in ("record", "strict")
        )
        if failure is not None:
            raise VerificationError(failure, report=report)
    elif report.errors or report.warnings:
        summary = ", ".join(
            f"{f.lint_id}@{f.pc:#x}"
            for f in (report.errors + report.warnings)[:8]
        )
        warnings.warn(
            f"guest program has analyzer findings ({summary}); "
            "running anyway under verify='warn'",
            GuestVerificationWarning,
            stacklevel=3,
        )
    return report
