"""Analysis-guided pruning of crash-consistency search points.

Works entirely on the *operation log* the file-effect domain predicted
(:attr:`repro.analysis.fsdomain.FsSummary.predicted_log`) — validated
by the caller against the dynamic log before anything here is trusted.
The module deliberately imports nothing from ``repro.crashsim`` or
``repro.libos``; it mirrors their record shapes as plain tuples.

The crash search explores one *crash point* per log prefix: point
``p`` crashes after the first ``p`` records, then enumerates every
legal post-crash image of the at-risk (pending) records.  Two
structural facts make many points redundant:

* ``log[p]`` is an **effect** (write/create/rename): every image legal
  at ``p`` is also legal at ``p + 1`` with the new record *not chosen*
  — ``images(p) ⊆ images(p + 1)``, and the image bytes coincide.
* ``log[p - 1]`` is a **barrier** (fsync/sync): the barrier only forces
  pending records durable, so ``images(p) ⊆ images(p - 1)`` — every
  image at ``p`` is the image at ``p - 1`` whose retired dimensions
  were chosen *fully applied*.

A point covered in either direction can be skipped: the survivors it
would produce are recovered exactly (same image bytes, hence the same
rule verdicts) from its *representative* kept point by inverting the
embeddings (:func:`synthesize_choices`).  The final point ``K`` is
always kept — it is checked against the plan's stricter final rules,
so no interior point can stand in for it.

This is the paper's cheap-pruning thesis applied to crash dimensions:
work the analysis proves redundant is cut before the search engine
forks a single snapshot for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

#: Mirror of the file-layer record tuples ("write", seq, ino, block,
#: off, payload) / ("create", seq, path, ino) / ("rename", seq, src,
#: dst, ino) / ("fsync", seq, ino) / ("sync", seq).
Record = tuple[Any, ...]

#: One persistence dimension: ``(key, records)`` with key
#: ``("blk", ino, block)`` or ``("ns", seq)`` — the exact grouping of
#: ``repro.libos.files.crash_dimensions``.
Dimension = tuple[tuple[Any, ...], tuple[Record, ...]]

_BARRIERS = frozenset({"fsync", "sync"})


def _is_barrier(rec: Record) -> bool:
    return bool(rec[0] in _BARRIERS)


# ----------------------------------------------------------------------
# Static mirrors of the dynamic pending/dimension computation
# ----------------------------------------------------------------------


def static_pending(log: Sequence[Record], upto: int) -> list[Record]:
    """At-risk records at crash point *upto* (seq order).

    Mirrors the pending computation of
    ``repro.libos.files.replay_durable`` without touching contents:
    ``fsync`` retires one inode's data and its creation record,
    ``sync`` retires everything.
    """
    pend_data: dict[int, list[Record]] = {}
    pend_ns: list[Record] = []
    for rec in list(log)[:upto]:
        kind = rec[0]
        if kind == "write":
            pend_data.setdefault(rec[2], []).append(rec)
        elif kind in ("create", "rename"):
            pend_ns.append(rec)
        elif kind == "fsync":
            ino = rec[2]
            pend_data.pop(ino, None)
            pend_ns = [
                r for r in pend_ns
                if not (r[0] == "create" and r[3] == ino)
            ]
        elif kind == "sync":
            pend_data = {}
            pend_ns = []
        else:
            raise ValueError(f"unknown record kind {rec[0]!r}")
    return sorted(
        pend_ns + [w for recs in pend_data.values() for w in recs],
        key=lambda r: int(r[1]),
    )


def static_dimensions(pending: Sequence[Record]) -> tuple[Dimension, ...]:
    """Mirror of ``repro.libos.files.crash_dimensions``."""
    index: dict[tuple[Any, ...], list[Record]] = {}
    for rec in pending:
        if rec[0] == "write":
            key: tuple[Any, ...] = ("blk", rec[2], rec[3])
        else:
            key = ("ns", rec[1])
        index.setdefault(key, []).append(rec)
    return tuple((key, tuple(recs)) for key, recs in index.items())


def _options(dim: Dimension) -> int:
    key, recs = dim
    return len(recs) + 1 if key[0] == "blk" else 2


def image_count(log: Sequence[Record], point: int) -> int:
    """Number of legal post-crash images the search enumerates at a
    crash point (the product of its dimension options)."""
    count = 1
    for dim in static_dimensions(static_pending(log, point)):
        count *= _options(dim)
    return count


# ----------------------------------------------------------------------
# The pruning plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PrunePlan:
    """Which crash points the search must visit, and which it may skip."""

    log: tuple[Record, ...]
    kept: tuple[int, ...]
    pruned: tuple[int, ...]

    @property
    def k(self) -> int:
        """Number of crash points is ``k + 1`` (0 .. k inclusive)."""
        return len(self.log)

    @property
    def images_total(self) -> int:
        return sum(image_count(self.log, p) for p in range(self.k + 1))

    @property
    def images_explored(self) -> int:
        return sum(image_count(self.log, p) for p in self.kept)

    def representative(self, point: int) -> int:
        """The kept point whose survivors embed this pruned point's."""
        return _walk(self.log, set(self.kept), point)[-1]


def plan_pruning(log: Sequence[Record]) -> PrunePlan:
    """Decide which crash points are redundant for a given log."""
    records = tuple(log)
    k = len(records)
    kept: list[int] = []
    pruned: list[int] = []
    for p in range(k + 1):
        if p == k:
            covered = False  # the final point answers to final rules
        else:
            covered = (not _is_barrier(records[p]) and p + 1 <= k - 1) or (
                p > 0 and _is_barrier(records[p - 1])
            )
        (pruned if covered else kept).append(p)
    return PrunePlan(records, tuple(kept), tuple(pruned))


def _walk(log: tuple[Record, ...], kept: set[int], point: int) -> list[int]:
    """Path from a pruned point to its representative kept point.

    Moves down across a barrier when possible, up across an effect
    otherwise; each move follows one of the two embeddings, and the
    direction never flips (a down-move implies the record below is a
    barrier, which forbids the up-move that could return).
    """
    path = [point]
    p = point
    while p not in kept:
        if p > 0 and _is_barrier(log[p - 1]):
            p -= 1
        else:
            p += 1
        path.append(p)
        if len(path) > len(log) + 2:  # pragma: no cover - defensive
            raise RuntimeError("pruning walk failed to terminate")
    return path


# ----------------------------------------------------------------------
# Survivor synthesis: invert the embeddings
# ----------------------------------------------------------------------


def _invert_step(
    log: tuple[Record, ...],
    src: int,
    tgt: int,
    choices: Sequence[int],
) -> Optional[tuple[int, ...]]:
    """Map a choice vector at point *tgt* back to point *src*.

    ``src -> tgt`` is one walk step, so either ``tgt == src + 1`` with
    ``log[src]`` an effect (the image at src is the image at tgt that
    does *not* choose the new record) or ``tgt == src - 1`` with
    ``log[src - 1]`` a barrier (the image at src is the image at tgt
    whose retired dimensions are *fully* chosen).  Returns None when
    the tgt image has no counterpart at src.
    """
    dims_src = static_dimensions(static_pending(log, src))
    dims_tgt = static_dimensions(static_pending(log, tgt))
    by_tgt = {key: (recs, choices[i])
              for i, (key, recs) in enumerate(dims_tgt)}
    if len(choices) != len(dims_tgt):  # pragma: no cover - defensive
        raise ValueError("choice vector does not match dimensions")
    extra_must_be_full = tgt == src - 1
    out: list[int] = []
    src_keys = set()
    for key, recs in dims_src:
        src_keys.add(key)
        if key not in by_tgt:  # pragma: no cover - defensive
            raise RuntimeError("source dimension missing at target")
        _tgt_recs, choice = by_tgt[key]
        limit = len(recs) if key[0] == "blk" else 1
        if choice > limit:
            return None  # image persists a record src has not issued
        out.append(choice)
    for key, (recs, choice) in by_tgt.items():
        if key in src_keys:
            continue
        if extra_must_be_full:
            full = len(recs) if key[0] == "blk" else 1
            if choice != full:
                return None  # a retired record was dropped: not src's
        else:
            if choice != 0:
                return None  # chose a record src has not issued
    return tuple(out)


def synthesize_choices(
    plan: PrunePlan, point: int, rep_choices: Sequence[int]
) -> Optional[tuple[int, ...]]:
    """Choices at a pruned *point* for a survivor found at its
    representative, or None when that survivor has no counterpart.

    Both embeddings preserve the image bytes, so a synthesized
    ``(point, *choices)`` decodes to the exact image of the source
    survivor — only the crash point and the lost/kept split differ.
    """
    path = _walk(plan.log, set(plan.kept), point)
    choices: Optional[tuple[int, ...]] = tuple(rep_choices)
    # Invert the walk last-step-first: each step maps the vector one
    # point closer to the pruned origin.
    for i in range(len(path) - 2, -1, -1):
        assert choices is not None
        choices = _invert_step(plan.log, path[i], path[i + 1], choices)
        if choices is None:
            return None
    return choices
