"""Control-flow graph construction over the shared ISA decode table.

Decoding starts from the entry point and every ``.text`` symbol and
proceeds by recursive descent, reusing :data:`repro.cpu.isa.OPCODES` —
the same single table the assembler and interpreter derive operand
layouts from, so the static decoder cannot drift from the dynamic one.

Conservatism notes:

* the ISA has no indirect jumps; the only indirect transfer is ``ret``,
  which is given an edge to the instruction after *every* ``call`` site
  (context-insensitive but sound);
* ``syscall`` falls through by default; the analysis pipeline later
  classifies sites (via constant propagation of ``rax``) and prunes the
  fall-through edge of non-returning calls (``exit``, ``guess_fail``),
  which callers express through the *noreturn* argument of
  :meth:`ControlFlowGraph.successors`;
* bytes never reached by decode are reported as coverage, not errors —
  data interleaved in ``.text`` is legal as long as control flow never
  enters it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu import isa
from repro.cpu.assembler import Program

#: Conditional branches: taken edge + fall-through edge.
CONDITIONAL_JUMPS = frozenset(
    {isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE, isa.JB, isa.JAE}
)

#: Opcodes after which execution never falls through to the next pc.
_NO_FALLTHROUGH = frozenset({isa.JMP, isa.RET, isa.HLT})


@dataclass(frozen=True)
class Insn:
    """One statically decoded instruction."""

    pc: int
    opcode: int
    mnemonic: str
    layout: str
    #: Decoded operand fields in layout order; branch targets (``t``)
    #: are pre-resolved to absolute addresses, exactly like the
    #: interpreter's decode cache.
    fields: tuple[int, ...]
    length: int

    @property
    def next_pc(self) -> int:
        return self.pc + self.length


@dataclass(frozen=True)
class DecodeIssue:
    """A spot where static decode had to stop."""

    pc: int
    kind: str  # "invalid-opcode" | "truncated" | "bad-register"
    opcode: int


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int
    insns: list[Insn] = field(default_factory=list)
    #: Out-edges as ``(kind, target_pc)``; kind is one of ``"jump"``
    #: (taken branch/call target), ``"fall"`` (fall-through, including
    #: after ``syscall``), ``"ret"`` (return-site edge).
    edges: list[tuple[str, int]] = field(default_factory=list)
    label: str = ""

    @property
    def end(self) -> int:
        return self.insns[-1].next_pc if self.insns else self.start

    @property
    def terminator(self) -> Insn:
        return self.insns[-1]

    def __len__(self) -> int:
        return len(self.insns)


def decode_insn(text: bytes, text_base: int, pc: int) -> Insn | DecodeIssue:
    """Decode one instruction at *pc* from the text image."""
    off = pc - text_base
    opcode = text[off]
    spec = isa.OPCODES.get(opcode)
    if spec is None:
        return DecodeIssue(pc, "invalid-opcode", opcode)
    length = isa.insn_length(opcode)
    if off + length > len(text):
        return DecodeIssue(pc, "truncated", opcode)
    raw = text[off + 1 : off + length]
    pos = 0
    fields: list[int] = []
    next_pc = pc + length
    for kind in spec.layout:
        if kind in ("r", "c"):
            if kind == "r" and raw[pos] >= 16:
                return DecodeIssue(pc, "bad-register", opcode)
            fields.append(raw[pos])
            pos += 1
        elif kind == "i":
            fields.append(int.from_bytes(raw[pos : pos + 8], "little"))
            pos += 8
        elif kind in ("s", "d"):
            fields.append(
                int.from_bytes(raw[pos : pos + 4], "little", signed=True)
            )
            pos += 4
        else:  # "t": branch target, resolved to absolute
            rel = int.from_bytes(raw[pos : pos + 4], "little", signed=True)
            fields.append(next_pc + rel)
            pos += 4
    return Insn(pc, opcode, spec.name, spec.layout, tuple(fields), length)


class ControlFlowGraph:
    """Basic blocks and edges of one program's ``.text``."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.entry = program.entry
        self.text_base = program.text_base
        self.text_end = program.text_base + len(program.text)
        #: pc -> decoded instruction, for every reachable-by-decode pc.
        self.insns: dict[int, Insn] = {}
        #: Block start pc -> block, in ascending pc order.
        self.blocks: dict[int, BasicBlock] = {}
        #: pc of each instruction -> start pc of its block.
        self.block_of: dict[int, int] = {}
        #: Decode failures at pcs control flow can actually reach.
        self.decode_issues: list[DecodeIssue] = []
        #: ``(insn pc, target)`` for transfers whose target or
        #: fall-through leaves ``.text``.
        self.out_of_text: list[tuple[int, int]] = []
        #: pcs of ``syscall`` / ``call`` / ``ret`` instructions.
        self.syscall_sites: list[int] = []
        self.call_sites: list[int] = []
        self.ret_sites: list[int] = []
        #: symbol address -> name, for ``.text`` symbols only.
        self.labels: dict[int, str] = {
            addr: name
            for name, addr in sorted(program.symbols.items())
            if self.text_base <= addr < max(self.text_end, self.text_base + 1)
        }
        self._build()

    # -- construction --------------------------------------------------

    def _in_text(self, pc: int) -> bool:
        return self.text_base <= pc < self.text_end

    def _build(self) -> None:
        program = self.program
        roots = {self.entry} | set(self.labels)
        roots = {pc for pc in roots if self._in_text(pc)}
        # Recursive-descent decode from every root.
        work = sorted(roots)
        leaders: set[int] = set(roots)
        seen_issue: set[int] = set()
        while work:
            pc = work.pop()
            while pc not in self.insns:
                if not self._in_text(pc):
                    break
                decoded = decode_insn(program.text, self.text_base, pc)
                if isinstance(decoded, DecodeIssue):
                    if pc not in seen_issue:
                        seen_issue.add(pc)
                        self.decode_issues.append(decoded)
                    break
                self.insns[pc] = decoded
                op = decoded.opcode
                if op == isa.SYSCALL:
                    self.syscall_sites.append(pc)
                    leaders.add(decoded.next_pc)
                elif op == isa.CALL:
                    self.call_sites.append(pc)
                    target = decoded.fields[0]
                    leaders.add(decoded.next_pc)  # the return site
                    if self._in_text(target):
                        leaders.add(target)
                        work.append(target)
                    else:
                        self.out_of_text.append((pc, target))
                    break  # call does not fall through; ret comes back
                elif op == isa.RET:
                    self.ret_sites.append(pc)
                    leaders.add(decoded.next_pc)
                    break
                elif op == isa.JMP or op in CONDITIONAL_JUMPS:
                    target = decoded.fields[0]
                    if self._in_text(target):
                        leaders.add(target)
                        work.append(target)
                    else:
                        self.out_of_text.append((pc, target))
                    leaders.add(decoded.next_pc)
                    if op == isa.JMP:
                        break
                elif op == isa.HLT:
                    leaders.add(decoded.next_pc)
                    break
                pc = decoded.next_pc

        # Group decoded instructions into blocks at leader boundaries.
        self.decode_issues.sort(key=lambda issue: issue.pc)
        self.syscall_sites.sort()
        self.call_sites.sort()
        self.ret_sites.sort()
        current: BasicBlock | None = None
        for pc in sorted(self.insns):
            insn = self.insns[pc]
            if current is None or pc in leaders or current.end != pc:
                current = BasicBlock(start=pc, label=self.labels.get(pc, ""))
                self.blocks[pc] = current
            current.insns.append(insn)
            self.block_of[pc] = current.start
            if insn.opcode in _NO_FALLTHROUGH \
                    or insn.opcode in CONDITIONAL_JUMPS \
                    or insn.opcode in (isa.CALL, isa.SYSCALL):
                current = None

        return_sites = [self.insns[pc].next_pc for pc in self.call_sites]
        for block in self.blocks.values():
            self._add_edges(block, return_sites)

    def _add_edges(self, block: BasicBlock, return_sites: list[int]) -> None:
        last = block.terminator
        op = last.opcode
        if op == isa.JMP:
            self._edge(block, "jump", last.fields[0])
        elif op in CONDITIONAL_JUMPS:
            self._edge(block, "jump", last.fields[0])
            self._edge(block, "fall", last.next_pc)
        elif op == isa.CALL:
            self._edge(block, "jump", last.fields[0])
        elif op == isa.RET:
            for site in return_sites:
                self._edge(block, "ret", site)
        elif op == isa.HLT:
            pass
        else:
            # Straight-line fall-through, including after syscall (the
            # pipeline prunes non-returning sites via `successors`).
            self._edge(block, "fall", last.next_pc)

    def _edge(self, block: BasicBlock, kind: str, target: int) -> None:
        if target in self.block_of:
            block.edges.append((kind, self.block_of[target]))

    # -- queries ---------------------------------------------------------

    def successors(
        self, block: BasicBlock, noreturn: frozenset[int] = frozenset()
    ) -> list[int]:
        """Successor block starts, honouring non-returning syscalls."""
        last = block.terminator
        if last.opcode == isa.SYSCALL and last.pc in noreturn:
            return []
        return [target for _, target in block.edges]

    def reachable_blocks(
        self, noreturn: frozenset[int] = frozenset()
    ) -> set[int]:
        """Block starts reachable from the entry point."""
        if self.entry not in self.block_of:
            return set()
        seen = {self.block_of[self.entry]}
        work = [self.block_of[self.entry]]
        while work:
            for succ in self.successors(self.blocks[work.pop()], noreturn):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def nearest_label(self, pc: int) -> str:
        """The closest preceding ``.text`` symbol (for report locations)."""
        best = ""
        best_addr = -1
        for addr, name in self.labels.items():
            if best_addr < addr <= pc:
                best, best_addr = name, addr
        return best

    @property
    def insn_count(self) -> int:
        return len(self.insns)

    @property
    def decoded_bytes(self) -> int:
        return sum(insn.length for insn in self.insns.values())


def build_cfg(program: Program) -> ControlFlowGraph:
    """Decode *program* and build its control-flow graph."""
    return ControlFlowGraph(program)
