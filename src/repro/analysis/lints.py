"""The lint passes and determinism certifier over the dataflow facts.

:func:`analyze` is the package's main entry point: decode + CFG +
interval fixpoint + lints, returning an
:class:`~repro.analysis.report.AnalysisReport`.  Results are memoised on
the program image (engines verify the same assembled bytes the workers
later replay, so repeated calls are common).
"""

from __future__ import annotations

import time
from collections import Counter, OrderedDict

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import DataflowResult, run_dataflow
from repro.analysis.fsdomain import (
    DEFAULT_FS_CONTEXT,
    FsContext,
    FsSummary,
    analyze_fs,
)
from repro.analysis.report import (
    CATALOG,
    AnalysisReport,
    DeterminismCertificate,
    Finding,
    Severity,
    catalog_fingerprint,
)
from repro.core import sysno
from repro.cpu import isa
from repro.cpu.assembler import Program
from repro.cpu.registers import REG_NAMES
from repro.libos.loader import memory_map
from repro.mem.layout import DEFAULT_STACK_PAGES, HEAP_BASE

_SIGNED_MAX = 1 << 63

#: Lint families whose presence voids the determinism certificate.
_NONDET_LINTS = frozenset(
    {"DT001", "DT002", "DT003", "DT004", "DT005", "DT006", "CF001"}
)

#: Program image + loader geometry + catalog fingerprint + FS context.
#: The fingerprint guards against a grown lint catalog serving stale
#: cached verdicts from an older analyzer build.
_CacheKey = tuple[bytes, bytes, int, int, int, int, int, str, FsContext]

#: Memoised reports, keyed on the program image (LRU, small cap).
_CACHE: OrderedDict[_CacheKey, AnalysisReport] = OrderedDict()
_CACHE_CAP = 16


class _Linter:
    """One analysis run: accumulates findings over a dataflow result."""

    def __init__(self, program: Program, df: DataflowResult,
                 stack_pages: int, bss_pages: int) -> None:
        self.program = program
        self.df = df
        self.cfg = df.cfg
        self.stack_pages = stack_pages
        self.bss_pages = bss_pages
        self.lines: dict[int, int] = getattr(program, "lines", {}) or {}
        self.findings: list[Finding] = []

    def add(
        self,
        lint_id: str,
        pc: int,
        message: str,
        severity: Severity | None = None,
    ) -> None:
        self.findings.append(
            Finding(
                lint_id=lint_id,
                severity=severity or CATALOG[lint_id].default_severity,
                pc=pc,
                message=message,
                block=self.cfg.block_of.get(pc),
                label=self.cfg.nearest_label(pc),
                line=self.lines.get(pc),
            )
        )

    # -- CF: control flow ----------------------------------------------

    def check_control_flow(self) -> None:
        cfg = self.cfg
        for issue in cfg.decode_issues:
            if issue.kind == "invalid-opcode":
                self.add(
                    "CF001", issue.pc,
                    f"invalid opcode {issue.opcode:#04x}: executing this "
                    "byte raises an invalid-opcode fault",
                )
            elif issue.kind == "bad-register":
                self.add(
                    "CF001", issue.pc,
                    f"instruction {issue.opcode:#04x} names a register "
                    ">= 16: the encoding is invalid",
                )
            else:
                self.add(
                    "CF001", issue.pc,
                    f"instruction {issue.opcode:#04x} truncated by the end "
                    "of .text",
                )
        issue_pcs = {issue.pc for issue in cfg.decode_issues}
        if cfg.entry not in cfg.insns and cfg.entry not in issue_pcs:
            self.add(
                "CF001", cfg.entry,
                f"entry point {cfg.entry:#x} is outside the decodable "
                ".text range",
            )

        reachable = cfg.reachable_blocks(self.df.noreturn)
        for block_start in sorted(cfg.blocks):
            if block_start not in reachable:
                block = cfg.blocks[block_start]
                name = block.label or f"{block_start:#x}"
                self.add(
                    "CF002", block_start,
                    f"unreachable code: block {name} "
                    f"({len(block)} insns) can never execute",
                )

        for pc, target in cfg.out_of_text:
            self.add(
                "CF003", pc,
                f"control transfer target {target:#x} is outside .text",
            )
        for block_start in sorted(reachable):
            term = cfg.blocks[block_start].terminator
            op = term.opcode
            has_fall = not (
                op in (isa.JMP, isa.RET, isa.HLT, isa.CALL)
                or (op == isa.SYSCALL and term.pc in self.df.noreturn)
            )
            if has_fall and term.next_pc >= cfg.text_end:
                self.add(
                    "CF003", term.pc,
                    "execution falls through past the end of .text "
                    "(fetches from unmapped or zeroed bytes)",
                )

        if cfg.ret_sites and not cfg.call_sites:
            for pc in cfg.ret_sites:
                if cfg.block_of.get(pc) in reachable:
                    self.add(
                        "CF004", pc,
                        "ret with no call site in the program: the return "
                        "address was never pushed",
                    )

    # -- DF: dataflow --------------------------------------------------

    def check_dataflow(self) -> None:
        seen: set[tuple[int, int]] = set()
        for read in self.df.uninit_reads:
            key = (read.pc, read.reg)
            if key in seen:
                continue
            seen.add(key)
            self.add(
                "DF001", read.pc,
                f"register {REG_NAMES[read.reg]} read before any write "
                "(reads the loader-zeroed value)",
            )

        for site in self.df.div_sites:
            lo, hi = site.divisor
            if hi == 0:
                self.add(
                    "DV001", site.pc,
                    "divisor is provably zero: this division always "
                    "raises #DE",
                    severity=Severity.ERROR,
                )
            elif lo == 0:
                self.add(
                    "DV001", site.pc,
                    f"divisor may be zero (abstract value [{lo}, {hi}])",
                )

    # -- MB: memory bounds ---------------------------------------------

    def check_memory(self) -> None:
        segments = memory_map(
            self.program, self.stack_pages, self.bss_pages
        )
        text = segments[0]
        stack = segments[-1]
        # brk/mmap grow into this window at runtime; accesses in it are
        # statically unknowable, not wrong.
        dynamic = (HEAP_BASE, stack.lo)
        regions = [(seg.lo, seg.hi) for seg in segments] + [dynamic]

        for acc in self.df.mem_accesses:
            if acc.addr is None:
                continue  # statically unbounded: nothing provable
            lo = acc.addr[0]
            hi = acc.addr[1] + acc.width - 1
            if acc.is_write and text.lo <= lo and hi < text.hi:
                self.add(
                    "MB003", acc.pc,
                    f"{acc.width}-byte store to read-only .text at "
                    f"[{lo:#x}, {hi:#x}]",
                )
                continue
            inside = any(rlo <= lo and hi < rhi for rlo, rhi in regions)
            if inside:
                continue
            overlaps = any(lo < rhi and hi >= rlo for rlo, rhi in regions)
            what = "store" if acc.is_write else "load"
            if not overlaps:
                self.add(
                    "MB001", acc.pc,
                    f"{acc.width}-byte {what} provably outside every "
                    f"mapped segment: address in [{lo:#x}, {hi:#x}]",
                )
            else:
                self.add(
                    "MB002", acc.pc,
                    f"{acc.width}-byte {what} may fall outside the mapped "
                    f"segments: address in [{lo:#x}, {hi:#x}]",
                )

    # -- BT: backtracking discipline -----------------------------------

    def check_backtracking(self) -> None:
        df = self.df
        cfg = self.cfg
        guess_sites = df.guess_sites
        fail_sites = df.fail_sites
        fail_blocks = {cfg.block_of[pc] for pc in fail_sites}

        for pc in guess_sites:
            fact = df.syscalls[pc]
            lo, hi = fact.rdi
            if lo == hi and (lo == 0 or lo >= _SIGNED_MAX):
                n = lo if lo < _SIGNED_MAX else lo - (1 << 64)
                self.add(
                    "BT003", pc,
                    f"sys_guess with constant fan-out n={n}: the guess "
                    "fails immediately",
                )

        for pc in guess_sites:
            scope = df.reachable_from(cfg.block_of[pc])
            if not (scope & fail_blocks):
                self.add(
                    "BT001", pc,
                    "no sys_guess_fail is reachable from this guess: "
                    "subtrees end only in solutions, exits, or kills",
                )

        in_scope: set[int] = set()
        for pc in guess_sites:
            in_scope |= df.reachable_from(cfg.block_of[pc])

        # A fail site is flagged only when it can *never* run inside a
        # guess scope: a loop head revisited after a guess (the fig.-1
        # enumerate-all-solutions shape) legitimately reaches its fail
        # both "before" a guess in the graph and after one dynamically.
        pre_guess = df.blocks_before_first_guess()
        for pc in fail_sites:
            block = cfg.block_of[pc]
            if block in pre_guess and block not in in_scope:
                self.add(
                    "BT002", pc,
                    "sys_guess_fail reachable before any sys_guess: "
                    "there is no snapshot to backtrack to",
                )

        for pc in df.write_sites:
            if cfg.block_of[pc] in in_scope:
                self.add(
                    "BT004", pc,
                    "sys_write reachable inside a guess scope: output "
                    "from abandoned extensions is rolled back with "
                    "the snapshot",
                )

    # -- DT: determinism -----------------------------------------------

    def check_determinism(self) -> None:
        for pc in sorted(self.df.syscalls):
            fact = self.df.syscalls[pc]
            if fact.number is None:
                lo, hi = fact.rax
                self.add(
                    "DT004", pc,
                    "syscall number is not statically determinable "
                    f"(rax in [{lo:#x}, {hi:#x}])",
                )
            elif fact.number == sysno.SYS_READ:
                self.add(
                    "DT001", pc,
                    "sys_read consumes external input; replayed "
                    "extensions may observe different bytes",
                )
            elif fact.number == sysno.SYS_OPEN:
                self.add(
                    "DT002", pc,
                    "sys_open depends on host filesystem state at "
                    "replay time",
                )
            elif fact.number == sysno.SYS_TIME:
                self.add(
                    "DT005", pc,
                    "sys_time reads the host wall clock; replayed "
                    "extensions observe different timestamps",
                )
            elif fact.number == sysno.SYS_GETRANDOM:
                self.add(
                    "DT006", pc,
                    "sys_getrandom draws host entropy; replayed "
                    "extensions observe different bytes",
                )
            elif fact.number not in sysno.SYSCALL_NAMES:
                self.add(
                    "DT003", pc,
                    f"syscall {fact.number} is outside the libOS "
                    "interposed set; snapshots cannot contain its effects",
                )

    # -- FS: crash consistency -----------------------------------------

    def check_fs(self, context: FsContext) -> FsSummary:
        """Run the file-effect domain and emit the FS lint family."""
        summary = analyze_fs(self.program, self.df, context)
        paths = summary.ino_paths

        def pname(ino: int) -> str:
            return paths.get(ino, f"inode {ino}")

        by_site: dict[int, list[str]] = {}
        for wpc, ino, block in summary.uncovered_writes:
            what = "an unresolved block" if block < 0 else f"block {block}"
            by_site.setdefault(wpc, []).append(f"{what} of {pname(ino)}")
        for pc in sorted(by_site):
            descs = ", ".join(sorted(set(by_site[pc])))
            self.add(
                "FS001", pc,
                f"write to {descs} may still be volatile at a crash "
                "boundary: no fsync/sync covers it on every path",
            )
        for cpc, path in summary.uncovered_creates:
            self.add(
                "FS001", cpc,
                f"creation of {path} may still be volatile at a crash "
                "boundary: no fsync/sync covers it on every path",
            )
        for rpc, src, dst in summary.volatile_renames:
            self.add(
                "FS002", rpc,
                f"rename {src} -> {dst} may still be volatile at a "
                "crash boundary: only a global sync retires renames",
            )
        for fpc, ino in summary.early_fsyncs:
            self.add(
                "FS003", fpc,
                f"fsync retires no data on {pname(ino)} here, but later "
                "writes to it reach a crash boundary unflushed: the "
                "barrier runs before the data it should cover",
            )
        for anchor, wpc, blocks in summary.torn_windows:
            blist = ", ".join(str(b) for b in blocks)
            self.add(
                "FS004", anchor,
                f"torn write window: blocks {blist} of one inode are "
                f"dirty together once the write at {wpc:#x} lands; a "
                "crash may persist any subset",
            )
        if summary.commit_violation is not None:
            vpc, vpath = summary.commit_violation
            self.add(
                "FS005", vpc,
                f"write to {vpath} corrupts the committed state: even "
                "the fully durable final image satisfies no final-state "
                "rule of the plan",
            )
        for bpc, kind in summary.dead_barriers:
            self.add(
                "FS006", bpc,
                f"dead barrier: this {kind} provably retires nothing "
                "on every path",
            )
        return summary

    # -- assembly ------------------------------------------------------

    def certificate(self) -> DeterminismCertificate:
        nondet = [
            f for f in self.findings if f.lint_id in _NONDET_LINTS
        ]
        profile = Counter(
            fact.name for fact in self.df.syscalls.values()
        )
        reasons = tuple(
            f"{f.lint_id} at {f.pc:#x}: {f.message}" for f in nondet
        )
        return DeterminismCertificate(
            certified=not nondet,
            reasons=reasons,
            syscall_profile=dict(profile),
            step_bounds=dict(self.df.step_bounds),
            nondet_sites=tuple((f.pc, f.lint_id) for f in nondet),
        )


def _analyze_uncached(
    program: Program, stack_pages: int, bss_pages: int,
    fs_context: FsContext,
) -> AnalysisReport:
    started = time.perf_counter()
    cfg: ControlFlowGraph = build_cfg(program)
    df = run_dataflow(cfg)
    linter = _Linter(program, df, stack_pages, bss_pages)
    linter.check_control_flow()
    linter.check_dataflow()
    linter.check_memory()
    linter.check_backtracking()
    linter.check_determinism()
    fs_summary = linter.check_fs(fs_context)
    linter.findings.sort(key=lambda f: (f.pc, f.lint_id))
    return AnalysisReport(
        findings=linter.findings,
        certificate=linter.certificate(),
        entry=program.entry,
        text_size=len(program.text),
        block_count=len(cfg.blocks),
        insn_count=cfg.insn_count,
        elapsed=time.perf_counter() - started,
        fs=fs_summary,
    )


def analyze(
    program: Program,
    *,
    stack_pages: int = DEFAULT_STACK_PAGES,
    bss_pages: int = 16,
    use_cache: bool = True,
    fs_context: FsContext | None = None,
) -> AnalysisReport:
    """Run the full static analysis over an assembled *program*.

    ``stack_pages``/``bss_pages`` must match what the engine will hand
    the loader, since the memory-bounds lints check operands against the
    segment map those parameters produce.  ``fs_context`` tells the
    file-effect domain what it may assume about the initial filesystem
    (``repro.crashsim.model.fs_context_for`` builds one from a crash
    plan); without it the base namespace is treated as unknown.
    """
    context = fs_context if fs_context is not None else DEFAULT_FS_CONTEXT
    key: _CacheKey = (
        bytes(program.text), bytes(program.data),
        program.text_base, program.data_base, program.entry,
        stack_pages, bss_pages, catalog_fingerprint(), context,
    )
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            return cached
    report = _analyze_uncached(program, stack_pages, bss_pages, context)
    if use_cache:
        _CACHE[key] = report
        while len(_CACHE) > _CACHE_CAP:
            _CACHE.popitem(last=False)
    return report
