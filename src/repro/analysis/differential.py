"""Differential validation of the determinism certificate.

The certificate is a static claim; this module checks it dynamically
against the ``obs`` trace layer:

* a certified program run twice in the *same* sequential engine must
  produce byte-identical :func:`~repro.obs.trace.normalize_events`
  streams — any divergence in ordering, fan-out, or fault pattern
  survives normalization;
* a certified program run sequentially and under the process-parallel
  engine must agree on the *terminal* search events
  (``search.fail/solution/kill``) as a multiset of ``(type, path)``:
  scheduling scatters event order and snapshot/guess bookkeeping across
  workers, but the set of explored outcomes is engine-invariant.

These are exactly the acceptance checks ISSUE 4 names; they are also
exposed through ``repro.tools.analyze --differential``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import events as ev
from repro.obs.trace import TRACER, normalize_events

#: Terminal search outcomes — engine-invariant modulo scheduling.
TERMINAL_EVENTS = frozenset(
    {ev.SEARCH_FAIL, ev.SEARCH_SOLUTION, ev.SEARCH_KILL}
)

Event = dict[str, Any]


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one differential comparison."""

    ok: bool
    check: str  # "sequential" | "cross-engine"
    detail: str
    events: int  # events in the reference stream

    def __bool__(self) -> bool:
        return self.ok


def _traced_run(run: Callable[[], Any]) -> tuple[Any, list[Event]]:
    with TRACER.capture() as sink:
        result = run()
    return result, list(sink.events)


def _first_diff(a: list[Event], b: list[Event]) -> str:
    if len(a) != len(b):
        return f"stream lengths differ: {len(a)} vs {len(b)}"
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return f"first divergence at event {i}: {ea!r} vs {eb!r}"
    return "streams are identical"


def _solution_key(result: Any) -> list[Any]:
    out = []
    for s in getattr(result, "solutions", []):
        path = tuple(getattr(s, "path", ()) or ())
        value = getattr(s, "value", s)
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((path, value))
    return sorted(out)


def sequential_differential(
    guest: Any,
    engine_factory: Callable[[], Any] | None = None,
    runs: int = 2,
) -> DifferentialResult:
    """Run *guest* *runs* times sequentially; normalized streams must match.

    ``engine_factory`` builds a fresh engine per run (a fresh engine per
    run rules out state bleed); defaults to ``MachineEngine(verify="off")``
    — verification is the claim under test, so it must not gate the probe.
    """
    if engine_factory is None:
        from repro.core.machine import MachineEngine

        def _default_factory() -> Any:
            return MachineEngine(verify="off")

        engine_factory = _default_factory

    reference: list[Event] | None = None
    ref_solutions: list[Any] = []
    for run_index in range(runs):
        factory = engine_factory
        result, events = _traced_run(lambda: factory().run(guest))
        stream = normalize_events(events)
        solutions = _solution_key(result)
        if reference is None:
            reference, ref_solutions = stream, solutions
            continue
        if solutions != ref_solutions:
            return DifferentialResult(
                False, "sequential",
                f"run {run_index} found different solutions: "
                f"{len(solutions)} vs {len(ref_solutions)}",
                len(reference),
            )
        if stream != reference:
            return DifferentialResult(
                False, "sequential",
                f"run {run_index} diverged: {_first_diff(reference, stream)}",
                len(reference),
            )
    return DifferentialResult(
        True, "sequential",
        f"{runs} runs produced identical normalized streams",
        len(reference or []),
    )


def _terminal_multiset(events: list[Event]) -> dict[tuple[Any, ...], int]:
    counts: dict[tuple[Any, ...], int] = {}
    for event in events:
        etype = event.get("type")
        if etype not in TERMINAL_EVENTS:
            continue
        key = (etype, tuple(event.get("path") or ()))
        counts[key] = counts.get(key, 0) + 1
    return counts


def cross_engine_differential(
    guest: Any,
    workers: int = 2,
    sequential_factory: Callable[[], Any] | None = None,
    process_factory: Callable[[], Any] | None = None,
) -> DifferentialResult:
    """Sequential vs process-parallel: terminal outcomes must agree."""
    if sequential_factory is None:
        from repro.core.machine import MachineEngine

        def _default_sequential() -> Any:
            return MachineEngine(verify="off")

        sequential_factory = _default_sequential

    if process_factory is None:
        from repro.core.cluster import ProcessParallelEngine

        def _default_process() -> Any:
            return ProcessParallelEngine(workers=workers, verify="off")

        process_factory = _default_process

    seq_factory = sequential_factory
    par_factory = process_factory
    seq_result, seq_events = _traced_run(lambda: seq_factory().run(guest))
    par_result, par_events = _traced_run(lambda: par_factory().run(guest))

    seq_solutions = _solution_key(seq_result)
    par_solutions = _solution_key(par_result)
    if seq_solutions != par_solutions:
        return DifferentialResult(
            False, "cross-engine",
            f"solution sets differ: sequential found {len(seq_solutions)}, "
            f"process found {len(par_solutions)}",
            len(seq_events),
        )

    seq_terms = _terminal_multiset(seq_events)
    par_terms = _terminal_multiset(par_events)
    if seq_terms != par_terms:
        only_seq = sum(
            count - par_terms.get(key, 0)
            for key, count in seq_terms.items()
            if count > par_terms.get(key, 0)
        )
        only_par = sum(
            count - seq_terms.get(key, 0)
            for key, count in par_terms.items()
            if count > seq_terms.get(key, 0)
        )
        return DifferentialResult(
            False, "cross-engine",
            "terminal event multisets differ: "
            f"{only_seq} outcome(s) only sequential, "
            f"{only_par} only process",
            len(seq_events),
        )
    return DifferentialResult(
        True, "cross-engine",
        f"engines agree on {sum(seq_terms.values())} terminal outcomes "
        f"and {len(seq_solutions)} solutions",
        len(seq_events),
    )
