"""File-effect abstract domain over the CFG + interval facts.

A second abstract interpretation layered on
:mod:`repro.analysis.dataflow`: where the interval pass tracks register
values, this pass tracks what the *file layer* would remember — per-fd
inode bindings and per-inode durability state — along all paths,
joining at merge points:

* **dirty blocks**: ``write`` records issued but not yet retired by an
  ``fsync(74)`` of their inode or a global ``sync(162)``;
* **unretired creations**: ``O_CREAT`` opens whose namespace record is
  still volatile;
* **volatile renames**: ``rename(82)`` records, which only a global
  ``sync`` retires (there are no directory fds in this ISA);
* **reaching barriers**: each ``fsync``/``sync`` site is observed with
  what it actually retired, so dead barriers are provable.

All pending sets are *may* information (a record appears if some path
leaves it volatile), which is the sound direction for the FS lints:
a clean verdict means **no** path reaches a crash boundary
(``sys_crash_select`` or ``sys_exit``) with volatile state.  Whenever
the domain loses track of an effect entirely (unknown syscall number,
write through an unresolvable fd, ...) it sets ``tainted`` instead,
and :meth:`FsSummary.fs_clean` refuses to certify.

The writer prefix is additionally re-executed *concretely*
(:func:`predict oplog <analyze_fs>`): when the path from the entry to
the first ``sys_guess`` is straight-line with fully constant file
syscall arguments, the pass predicts the exact operation log the file
layer will accumulate, record for record.  ``analysis/crashprune``
validates that prediction against the dynamic log before using it to
skip crash points.

This module deliberately imports nothing from ``repro.libos`` or
``repro.crashsim`` — it is the static mirror, not a client, of the
file layer; the adapter from a crash plan lives in
``repro.crashsim.model.fs_context_for``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.cfg import CONDITIONAL_JUMPS, ControlFlowGraph
from repro.analysis.dataflow import DataflowResult, Interval, _rpo
from repro.core import sysno
from repro.cpu import isa
from repro.cpu.assembler import Program

#: Mirrors ``repro.libos.files.DEFAULT_BLOCK_SIZE`` (pinned by a test;
#: not imported to keep this package ``mypy --strict``-clean).
DEFAULT_BLOCK_SIZE = 4096
#: Mirror of ``repro.libos.files.O_CREAT`` (pinned by a test).
O_CREAT = 64
_O_ACCMODE = 3

_SIGNED_MAX = 1 << 63

#: One file-layer operation record, in the exact tuple shape the
#: dynamic ``FileTable`` logs (``("write", seq, ino, block, off,
#: payload)`` and friends).
Record = tuple[Any, ...]

#: One DNF rule: ``((path, (alt | None, ...)), ...)`` where ``None``
#: stands for "file absent" (the static spelling of model.ABSENT).
FsRule = tuple[tuple[str, tuple[Optional[bytes], ...]], ...]

_MAX_PASSES = 80


@dataclass(frozen=True)
class FsContext:
    """What the analysis may assume about the initial filesystem.

    Without a context (the engine default) the base namespace is
    unknown: opens of pre-existing files are imprecise and the pass
    degrades to taint, but created-file tracking still works.  With a
    plan-derived context the initial inode numbering is pinned exactly
    like ``FileTable`` pins it (sorted path order, starting at 1), and
    ``final_rules`` enables the write-after-commit lint (FS005).
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    base_files: Optional[tuple[tuple[str, bytes], ...]] = None
    final_rules: Optional[tuple[FsRule, ...]] = None


#: The analysis default: nothing known about the host filesystem.
DEFAULT_FS_CONTEXT = FsContext()


@dataclass(frozen=True)
class FsSummary:
    """Facts the FS lint family consumes, plus the predicted oplog."""

    #: False when the domain lost track of a file effect somewhere;
    #: a tainted program can never be certified FS-clean.
    tainted: bool
    #: Crash boundaries observed (``sys_crash_select``/``sys_exit`` pcs
    #: reachable with the writer's pending state).
    boundaries: tuple[int, ...]
    #: Writes volatile at some boundary: ``(write pc, ino, block)``
    #: (block -1 = statically unknown block).
    uncovered_writes: tuple[tuple[int, int, int], ...]
    #: Creations volatile at some boundary: ``(open pc, path)``.
    uncovered_creates: tuple[tuple[int, str], ...]
    #: Renames volatile at some boundary: ``(pc, src, dst)``.
    volatile_renames: tuple[tuple[int, str, str], ...]
    #: fsyncs that retired no data on an inode with boundary-uncovered
    #: writes: ``(fsync pc, ino)`` — the barrier ran too early.
    early_fsyncs: tuple[tuple[int, int], ...]
    #: Torn windows: ``(anchor pc, write pc, blocks)`` — at the write,
    #: >= 2 distinct dirty blocks of one inode are in flight.
    torn_windows: tuple[tuple[int, int, tuple[int, ...]], ...]
    #: Barriers that provably retire nothing: ``(pc, "fsync"|"sync")``.
    dead_barriers: tuple[tuple[int, str], ...]
    #: Fully-durable final image violates every final rule:
    #: ``(anchor write pc, path)``; None when final rules pass or are
    #: unavailable.
    commit_violation: Optional[tuple[int, str]]
    #: ino -> best-known path (for messages).
    ino_paths: dict[int, str] = field(default_factory=dict)
    #: The statically predicted writer oplog (exact ``FileTable``
    #: record shapes), or None when the writer prefix is not
    #: straight-line/constant enough to predict.
    predicted_log: Optional[tuple[Record, ...]] = None

    @property
    def fs_clean(self) -> bool:
        """No FS findings possible and nothing escaped tracking."""
        return (
            not self.tainted
            and not self.uncovered_writes
            and not self.uncovered_creates
            and not self.volatile_renames
            and not self.early_fsyncs
            and not self.torn_windows
            and self.commit_violation is None
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "tainted": self.tainted,
            "fs_clean": self.fs_clean,
            "boundaries": list(self.boundaries),
            "uncovered_writes": [list(t) for t in self.uncovered_writes],
            "uncovered_creates": [list(t) for t in self.uncovered_creates],
            "volatile_renames": [list(t) for t in self.volatile_renames],
            "early_fsyncs": [list(t) for t in self.early_fsyncs],
            "torn_windows": [
                [pc, wpc, list(blocks)]
                for pc, wpc, blocks in self.torn_windows
            ],
            "dead_barriers": [list(t) for t in self.dead_barriers],
            "commit_violation": (
                list(self.commit_violation)
                if self.commit_violation is not None else None
            ),
            "predicted_log_len": (
                len(self.predicted_log)
                if self.predicted_log is not None else None
            ),
        }


# ----------------------------------------------------------------------
# Abstract state
# ----------------------------------------------------------------------


class _FsState:
    """Per-program-point file-layer abstraction."""

    __slots__ = ("next_fd", "next_ino", "ns_known", "ns", "fds",
                 "dirty", "creates", "renames", "fds_exact", "tainted")

    def __init__(
        self,
        next_fd: Optional[int],
        next_ino: Optional[int],
        ns_known: bool,
        ns: dict[str, int],
        fds: dict[int, tuple[Optional[int], Optional[int], bool]],
        dirty: dict[int, frozenset[tuple[int, int]]],
        creates: dict[int, frozenset[int]],
        renames: frozenset[tuple[int, str, str]],
        fds_exact: bool,
        tainted: bool,
    ) -> None:
        self.next_fd = next_fd
        self.next_ino = next_ino
        self.ns_known = ns_known
        self.ns = ns
        #: fd -> (ino | None, position | None, writable).
        self.fds = fds
        #: ino -> {(write pc, block)}; block -1 = unknown.
        self.dirty = dirty
        #: ino -> {open pc of the pending creation}.
        self.creates = creates
        self.renames = renames
        #: True while ``fds`` provably contains every allocated file fd.
        self.fds_exact = fds_exact
        self.tainted = tainted

    @classmethod
    def entry(cls, context: FsContext) -> "_FsState":
        if context.base_files is not None:
            paths = sorted(p for p, _data in context.base_files)
            ns = {p: i + 1 for i, p in enumerate(paths)}
            return cls(3, len(paths) + 1, True, ns, {}, {}, {},
                       frozenset(), True, False)
        return cls(3, None, False, {}, {}, {}, {}, frozenset(), True, False)

    def copy(self) -> "_FsState":
        return _FsState(
            self.next_fd, self.next_ino, self.ns_known, dict(self.ns),
            dict(self.fds), dict(self.dirty), dict(self.creates),
            self.renames, self.fds_exact, self.tainted,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _FsState):
            return NotImplemented
        return (
            self.next_fd == other.next_fd
            and self.next_ino == other.next_ino
            and self.ns_known == other.ns_known
            and self.ns == other.ns
            and self.fds == other.fds
            and self.dirty == other.dirty
            and self.creates == other.creates
            and self.renames == other.renames
            and self.fds_exact == other.fds_exact
            and self.tainted == other.tainted
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        raise TypeError("_FsState is mutable")


def _join(a: _FsState, b: _FsState) -> _FsState:
    ns_known = a.ns_known and b.ns_known and a.ns == b.ns
    # When both sides track the namespace only best-effort, keep the
    # entries they agree on (created paths survive a merge).
    if ns_known:
        ns = dict(a.ns)
    else:
        ns = {p: i for p, i in a.ns.items() if b.ns.get(p) == i}
    fds: dict[int, tuple[Optional[int], Optional[int], bool]] = {}
    for fd in a.fds.keys() | b.fds.keys():
        ea, eb = a.fds.get(fd), b.fds.get(fd)
        if ea is None or eb is None:
            ent = ea if ea is not None else eb
            assert ent is not None
            fds[fd] = ent
        else:
            fds[fd] = (
                ea[0] if ea[0] == eb[0] else None,
                ea[1] if ea[1] == eb[1] else None,
                ea[2] or eb[2],
            )
    dirty: dict[int, frozenset[tuple[int, int]]] = dict(a.dirty)
    for ino, entries in b.dirty.items():
        dirty[ino] = dirty.get(ino, frozenset()) | entries
    creates: dict[int, frozenset[int]] = dict(a.creates)
    for ino, pcs in b.creates.items():
        creates[ino] = creates.get(ino, frozenset()) | pcs
    return _FsState(
        a.next_fd if a.next_fd == b.next_fd else None,
        a.next_ino if a.next_ino == b.next_ino else None,
        ns_known, ns, fds, dirty, creates,
        a.renames | b.renames,
        a.fds_exact and b.fds_exact,
        a.tainted or b.tainted,
    )


# ----------------------------------------------------------------------
# Facts recorder
# ----------------------------------------------------------------------


@dataclass
class _FsFacts:
    boundaries: set[int] = field(default_factory=set)
    uncovered_writes: set[tuple[int, int, int]] = field(default_factory=set)
    uncovered_creates: set[tuple[int, str]] = field(default_factory=set)
    volatile_renames: set[tuple[int, str, str]] = field(default_factory=set)
    #: fsync pc -> (ino, retired any data, retired any create).
    fsyncs: dict[int, tuple[int, bool, bool]] = field(default_factory=dict)
    #: sync pc -> retired anything.
    syncs: dict[int, bool] = field(default_factory=dict)
    #: torn anchor pc -> (write pc, blocks in flight).
    torn: dict[int, tuple[int, tuple[int, ...]]] = field(default_factory=dict)


def _const(iv: Interval) -> Optional[int]:
    return iv[0] if iv[0] == iv[1] else None


class _FsAnalysis:
    """One FS-domain run over a program's dataflow result."""

    def __init__(self, program: Program, df: DataflowResult,
                 context: FsContext) -> None:
        self.program = program
        self.df = df
        self.cfg: ControlFlowGraph = df.cfg
        self.context = context
        self.ino_paths: dict[int, str] = {}

    # -- helpers -------------------------------------------------------

    def _cstring(self, addr: Optional[int]) -> Optional[str]:
        if addr is None:
            return None
        data = self.program.data
        off = addr - self.program.data_base
        if off < 0 or off >= len(data):
            return None
        end = data.find(0, off)
        if end < 0:
            return None
        try:
            return data[off:end].decode("ascii")
        except UnicodeDecodeError:
            return None

    def _bind_path(self, ino: int, path: str) -> None:
        self.ino_paths.setdefault(ino, path)

    # -- transfer ------------------------------------------------------

    def _transfer_block(
        self, block_start: int, state: _FsState,
        facts: Optional[_FsFacts],
    ) -> _FsState:
        out = state.copy()
        for insn in self.cfg.blocks[block_start].insns:
            if insn.opcode != isa.SYSCALL:
                continue
            fact = self.df.syscalls.get(insn.pc)
            if fact is None:
                continue
            self._syscall(out, insn.pc, fact.number,
                          _const(fact.rdi), _const(fact.rsi),
                          _const(fact.rdx), facts)
        return out

    def _syscall(
        self, st: _FsState, pc: int, num: Optional[int],
        rdi: Optional[int], rsi: Optional[int], rdx: Optional[int],
        facts: Optional[_FsFacts],
    ) -> None:
        if num is None:
            st.tainted = True
            return
        if num == sysno.SYS_OPEN:
            self._op_open(st, pc, rdi, rsi)
        elif num == sysno.SYS_LSEEK:
            self._op_lseek(st, rdi, rsi, rdx)
        elif num == sysno.SYS_WRITE:
            self._op_write(st, pc, rdi, rdx, facts)
        elif num == sysno.SYS_FSYNC:
            self._op_fsync(st, pc, rdi, facts)
        elif num == sysno.SYS_SYNC:
            if facts is not None:
                facts.syncs[pc] = bool(st.dirty or st.creates or st.renames)
            st.dirty = {}
            st.creates = {}
            st.renames = frozenset()
        elif num == sysno.SYS_RENAME:
            self._op_rename(st, pc, rdi, rsi)
        elif num == sysno.SYS_CLOSE:
            if rdi is not None:
                st.fds.pop(rdi, None)
        elif num in (sysno.SYS_CRASH_SELECT, sysno.SYS_EXIT):
            # A crash boundary: whatever is volatile here can be lost.
            if facts is not None:
                self._observe_boundary(st, pc, facts)
        elif num == sysno.SYS_CRASH_COMMIT:
            # The table rebases onto the chosen crashed image: nothing
            # is pending any more, every fd is gone, and the surviving
            # namespace depends on the crash choices.
            st.dirty = {}
            st.creates = {}
            st.renames = frozenset()
            st.fds = {}
            st.ns_known = False
            st.ns = {}
        # Everything else (read, guess family, mmap, ...) has no file
        # effect the durability domain needs to model.

    def _op_open(self, st: _FsState, pc: int,
                 rdi: Optional[int], rsi: Optional[int]) -> None:
        path = self._cstring(rdi)
        flags = rsi
        if path is None or flags is None:
            st.tainted = True
            st.next_fd = None
            st.fds_exact = False
            return
        writable = (flags & _O_ACCMODE) != 0
        known_exists = path in st.ns
        if not known_exists and not (flags & O_CREAT):
            if st.ns_known:
                return  # deterministic -ENOENT: no fd consumed
            # Existence unknown: the fd allocation becomes uncertain.
            st.next_fd = None
            st.fds_exact = False
            return
        if known_exists:
            ino = st.ns[path]
        else:
            if st.ns_known and st.next_ino is not None:
                ino = st.next_ino
                st.next_ino += 1
            else:
                # Synthetic inode, unique per open site (constant path
                # per site, so all dynamic instances share it).
                ino = -(pc + 1)
            st.ns[path] = ino
            st.creates[ino] = st.creates.get(ino, frozenset()) | {pc}
        self._bind_path(ino, path)
        if st.next_fd is None:
            # We know a file was opened but not which fd number holds
            # it: subsequent writes by constant fd are untrackable.
            st.fds_exact = False
            st.tainted = True
            return
        fd = st.next_fd
        st.next_fd += 1
        st.fds[fd] = (ino, 0, writable)

    def _op_lseek(self, st: _FsState, rdi: Optional[int],
                  rsi: Optional[int], rdx: Optional[int]) -> None:
        if rdi is None:
            # Could move any tracked position.
            st.fds = {fd: (ino, None, w) for fd, (ino, _p, w) in
                      st.fds.items()}
            return
        ent = st.fds.get(rdi)
        if ent is None:
            return
        ino, _pos, writable = ent
        if rdx == 0 and rsi is not None and rsi < _SIGNED_MAX:
            st.fds[rdi] = (ino, rsi, writable)
        else:
            st.fds[rdi] = (ino, None, writable)

    def _op_write(self, st: _FsState, pc: int, rdi: Optional[int],
                  rdx: Optional[int], facts: Optional[_FsFacts]) -> None:
        if rdi is None:
            if st.fds or not st.fds_exact:
                st.tainted = True
            for _fd, (ino, _pos, w) in st.fds.items():
                if w and ino is not None:
                    st.dirty[ino] = st.dirty.get(ino, frozenset()) | {(pc, -1)}
            return
        if rdi in (0, 1, 2):
            return  # console fds are never file-layer fds
        ent = st.fds.get(rdi)
        if ent is None:
            if not st.fds_exact:
                st.tainted = True  # may be a file fd we failed to bind
            return  # else provably -EBADF: no record
        ino, pos, writable = ent
        if not writable:
            return  # -EACCES: no record
        if rdx == 0:
            return  # empty write logs nothing
        if ino is None:
            st.tainted = True
            return
        if pos is None or rdx is None or pos >= _SIGNED_MAX:
            st.tainted = True
            st.dirty[ino] = st.dirty.get(ino, frozenset()) | {(pc, -1)}
            st.fds[rdi] = (ino, None, writable)
            return
        bs = self.context.block_size
        blocks = frozenset(range(pos // bs, (pos + rdx - 1) // bs + 1))
        prev = st.dirty.get(ino, frozenset())
        if facts is not None:
            in_flight = {b for _p, b in prev} | set(blocks)
            if len(in_flight) >= 2:
                outside = [p for p, b in prev if b not in blocks]
                anchor = min(outside) if outside else pc
                facts.torn.setdefault(
                    anchor, (pc, tuple(sorted(in_flight)))
                )
        st.dirty[ino] = prev | {(pc, b) for b in blocks}
        st.fds[rdi] = (ino, pos + rdx, writable)

    def _op_fsync(self, st: _FsState, pc: int, rdi: Optional[int],
                  facts: Optional[_FsFacts]) -> None:
        ent = st.fds.get(rdi) if rdi is not None else None
        if ent is None:
            # Unknown or bad fd: retiring nothing over-approximates
            # the pending sets, which is the sound direction.
            return
        ino = ent[0]
        if ino is None:
            return
        had_data = bool(st.dirty.get(ino))
        had_create = bool(st.creates.get(ino))
        if facts is not None:
            facts.fsyncs[pc] = (ino, had_data, had_create)
        st.dirty.pop(ino, None)
        st.creates.pop(ino, None)

    def _op_rename(self, st: _FsState, pc: int,
                   rdi: Optional[int], rsi: Optional[int]) -> None:
        src = self._cstring(rdi)
        dst = self._cstring(rsi)
        if src is None or dst is None:
            st.tainted = True
            st.ns_known = False
            st.ns = {}
            return
        if src in st.ns:
            ino = st.ns.pop(src)
            st.ns[dst] = ino
            self._bind_path(ino, dst)
            st.renames = st.renames | {(pc, src, dst)}
        elif not st.ns_known:
            # May succeed against an unknown base namespace.
            st.renames = st.renames | {(pc, src, dst)}
            st.ns.pop(dst, None)
        # else: deterministic -ENOENT, no record.

    def _observe_boundary(self, st: _FsState, pc: int,
                          facts: _FsFacts) -> None:
        facts.boundaries.add(pc)
        for ino, entries in st.dirty.items():
            for wpc, block in entries:
                facts.uncovered_writes.add((wpc, ino, block))
        for ino, pcs in st.creates.items():
            path = self.ino_paths.get(ino, "?")
            for cpc in pcs:
                facts.uncovered_creates.add((cpc, path))
        facts.volatile_renames |= st.renames

    # -- fixpoint ------------------------------------------------------

    def run(self) -> tuple[_FsFacts, dict[int, _FsState], bool]:
        cfg = self.cfg
        order = _rpo(cfg)
        feasible = set(self.df.block_in)
        block_in: dict[int, _FsState] = {}
        converged = False
        if order:
            block_in[order[0]] = _FsState.entry(self.context)
        for _ in range(_MAX_PASSES):
            changed = False
            for block in order:
                state = block_in.get(block)
                if state is None or block not in feasible:
                    continue
                out = self._transfer_block(block, state, None)
                for succ in self._successors(block):
                    if succ not in feasible:
                        continue
                    old = block_in.get(succ)
                    if old is None:
                        block_in[succ] = out.copy()
                        changed = True
                    else:
                        joined = _join(old, out)
                        if joined != old:
                            block_in[succ] = joined
                            changed = True
            if not changed:
                converged = True
                break
        facts = _FsFacts()
        for block in order:
            state = block_in.get(block)
            if state is None or block not in feasible:
                continue
            self._transfer_block(block, state, facts)
        return facts, block_in, converged

    def _successors(self, block_start: int) -> list[int]:
        block = self.cfg.blocks[block_start]
        term = block.terminator
        if term.opcode == isa.SYSCALL and term.pc in self.df.noreturn:
            return []
        return [succ for _kind, succ in block.edges]


# ----------------------------------------------------------------------
# Concrete linear-trace oplog prediction
# ----------------------------------------------------------------------

_TRACE_INERT = frozenset({
    sysno.SYS_BRK, sysno.SYS_MMAP, sysno.SYS_MUNMAP,
    sysno.SYS_TIME, sysno.SYS_GETRANDOM, sysno.SYS_GUESS_STRATEGY,
})


def _linear_trace(
    program: Program, df: DataflowResult, context: FsContext
) -> Optional[list[tuple[int, Record]]]:
    """Predict the writer-phase oplog by concrete re-execution.

    Follows the unique path from the entry to the first ``sys_guess``,
    stepping a miniature file-table that emits records in the exact
    shapes the dynamic layer logs.  Returns None the moment anything is
    not statically exact — a conditional branch, a loop, a non-constant
    argument, an op this mirror does not model.  Callers treat None as
    "no prediction", never as an error.
    """
    if context.base_files is None:
        return None
    cfg = df.cfg
    if cfg.entry not in cfg.block_of or cfg.entry != cfg.block_of[cfg.entry]:
        return None
    bs = context.block_size
    ns = {p: i + 1
          for i, p in enumerate(sorted(p for p, _d in context.base_files))}
    next_ino = len(ns) + 1
    next_fd = 3
    fds: dict[int, list[int]] = {}  # fd -> [ino, pos, writable]
    seq = 0
    out: list[tuple[int, Record]] = []

    def cstr(addr: Optional[int]) -> Optional[str]:
        if addr is None:
            return None
        off = addr - program.data_base
        if off < 0 or off >= len(program.data):
            return None
        end = program.data.find(0, off)
        if end < 0:
            return None
        try:
            return program.data[off:end].decode("ascii")
        except UnicodeDecodeError:
            return None

    block = cfg.entry
    visited: set[int] = set()
    while True:
        if block in visited:
            return None
        visited.add(block)
        for insn in cfg.blocks[block].insns:
            if insn.opcode != isa.SYSCALL:
                continue
            fact = df.syscalls.get(insn.pc)
            if fact is None or fact.number is None:
                return None
            num = fact.number
            rdi = _const(fact.rdi)
            rsi = _const(fact.rsi)
            rdx = _const(fact.rdx)
            if num in (sysno.SYS_GUESS, sysno.SYS_GUESS_HINT):
                return out  # the writer prefix ends here
            if num in _TRACE_INERT:
                continue
            if num == sysno.SYS_OPEN:
                path = cstr(rdi)
                if path is None or rsi is None:
                    return None
                if path in ns:
                    ino = ns[path]
                elif rsi & O_CREAT:
                    ino = next_ino
                    next_ino += 1
                    ns[path] = ino
                    out.append((insn.pc, ("create", seq, path, ino)))
                    seq += 1
                else:
                    continue  # -ENOENT: no fd, no record
                fds[next_fd] = [ino, 0, int((rsi & _O_ACCMODE) != 0)]
                next_fd += 1
            elif num == sysno.SYS_LSEEK:
                if rdi is None or rsi is None or rdx != 0 \
                        or rsi >= _SIGNED_MAX:
                    return None
                if rdi in fds:
                    fds[rdi][1] = rsi
            elif num == sysno.SYS_WRITE:
                if rdi is None or rdx is None:
                    return None
                if rdi in (0, 1, 2):
                    continue
                ent = fds.get(rdi)
                if ent is None or rdx == 0:
                    continue
                if not ent[2]:
                    continue  # -EACCES
                if rsi is None:
                    return None
                start = rsi - program.data_base
                if start < 0 or start + rdx > len(program.data):
                    return None
                payload = program.data[start:start + rdx]
                ino, pos = ent[0], ent[1]
                off = 0
                while off < len(payload):
                    blockno, boff = divmod(pos + off, bs)
                    chunk = payload[off:off + bs - boff]
                    out.append(
                        (insn.pc, ("write", seq, ino, blockno, boff, chunk))
                    )
                    seq += 1
                    off += len(chunk)
                ent[1] = pos + len(payload)
            elif num == sysno.SYS_FSYNC:
                if rdi is None:
                    return None
                ent = fds.get(rdi)
                if ent is not None:
                    out.append((insn.pc, ("fsync", seq, ent[0])))
                    seq += 1
            elif num == sysno.SYS_SYNC:
                out.append((insn.pc, ("sync", seq)))
                seq += 1
            elif num == sysno.SYS_RENAME:
                src, dst = cstr(rdi), cstr(rsi)
                if src is None or dst is None:
                    return None
                if src in ns:
                    ino = ns.pop(src)
                    ns[dst] = ino
                    out.append((insn.pc, ("rename", seq, src, dst, ino)))
                    seq += 1
            elif num == sysno.SYS_CLOSE:
                if rdi is None:
                    return None
                fds.pop(rdi, None)
            elif num == sysno.SYS_READ:
                if rdi is None or (rdi in fds):
                    return None  # file reads move positions we track
            else:
                return None  # exit/crash/unknown before any guess
        term = cfg.blocks[block].terminator
        if term.opcode in CONDITIONAL_JUMPS:
            return None
        succs = {succ for _k, succ in cfg.blocks[block].edges}
        if len(succs) != 1:
            return None
        block = succs.pop()


def _final_image(
    trace: list[tuple[int, Record]], context: FsContext
) -> tuple[dict[str, bytes], dict[int, int]]:
    """Apply every predicted record: the image when nothing is lost.

    Returns ``(path -> contents, ino -> pc of last write)``.
    """
    assert context.base_files is not None
    ns = {p: i + 1
          for i, p in enumerate(sorted(p for p, _d in context.base_files))}
    data: dict[int, bytearray] = {
        ns[p]: bytearray(d) for p, d in context.base_files
    }
    bs = context.block_size
    for _pc, rec in trace:
        kind = rec[0]
        if kind == "write":
            _, _seq, ino, blockno, boff, payload = rec
            buf = data.setdefault(ino, bytearray())
            start = blockno * bs + boff
            end = start + len(payload)
            if end > len(buf):
                buf.extend(bytes(end - len(buf)))
            buf[start:end] = payload
        elif kind == "create":
            ns[rec[2]] = rec[3]
            data.setdefault(rec[3], bytearray())
        elif kind == "rename":
            ns.pop(rec[2], None)
            ns[rec[3]] = rec[4]
    image = {path: bytes(data.get(ino, b"")) for path, ino in ns.items()}
    return image, {}


def _matches_rules(image: dict[str, bytes],
                   rules: tuple[FsRule, ...]) -> bool:
    for rule in rules:
        for path, alts in rule:
            present = path in image
            ok = False
            for alt in alts:
                if alt is None:
                    ok = ok or not present
                else:
                    ok = ok or (present and image[path] == alt)
            if not ok:
                break
        else:
            return True
    return False


def _commit_violation(
    trace: list[tuple[int, Record]], context: FsContext
) -> Optional[tuple[int, str]]:
    """FS005: the fully-durable final image fails every final rule.

    Anchors the finding at the last write whose payload conflicts with
    every byte alternative for its file across all final rules (the
    write that *committed* the bad state), falling back to the last
    write, then the last record.
    """
    rules = context.final_rules
    if rules is None or context.base_files is None:
        return None
    image, _ = _final_image(trace, context)
    if _matches_rules(image, rules):
        return None
    # Final namespace: ino -> path.
    ns = {p: i + 1
          for i, p in enumerate(sorted(p for p, _d in context.base_files))}
    for _pc, rec in trace:
        if rec[0] == "create":
            ns[rec[2]] = rec[3]
        elif rec[0] == "rename":
            ns.pop(rec[2], None)
            ns[rec[3]] = rec[4]
    path_of = {ino: path for path, ino in ns.items()}
    bs = context.block_size
    writes = [(pc, rec) for pc, rec in trace if rec[0] == "write"]
    for pc, rec in reversed(writes):
        _, _seq, ino, blockno, boff, payload = rec
        path = path_of.get(ino)
        if path is None:
            continue
        alts = [alt for rule in rules for p, aa in rule if p == path
                for alt in aa if alt is not None]
        if not alts:
            continue
        start = blockno * bs + boff
        end = start + len(payload)
        if all(alt[start:end] != payload or len(alt) < end for alt in alts):
            return (pc, path)
    if writes:
        return (writes[-1][0], path_of.get(writes[-1][1][2], "?"))
    if trace:
        return (trace[-1][0], "?")
    return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def analyze_fs(program: Program, df: DataflowResult,
               context: FsContext) -> FsSummary:
    """Run the file-effect domain and package the lint facts."""
    analysis = _FsAnalysis(program, df, context)
    facts, _block_in, converged = analysis.run()
    tainted = not converged
    for state in _block_in.values():
        if state.tainted:
            tainted = True
            break

    uncovered_inos = {ino for _pc, ino, _b in facts.uncovered_writes}
    early = tuple(sorted(
        (pc, ino) for pc, (ino, had_data, _hc) in facts.fsyncs.items()
        if not had_data and ino in uncovered_inos
    ))
    dead: list[tuple[int, str]] = []
    early_pcs = {pc for pc, _ino in early}
    for pc, (_ino, had_data, had_create) in facts.fsyncs.items():
        if not had_data and not had_create and pc not in early_pcs:
            dead.append((pc, "fsync"))
    for pc, had_any in facts.syncs.items():
        if not had_any:
            dead.append((pc, "sync"))

    trace = _linear_trace(program, df, context)
    predicted: Optional[tuple[Record, ...]] = None
    violation: Optional[tuple[int, str]] = None
    if trace is not None:
        predicted = tuple(rec for _pc, rec in trace)
        violation = _commit_violation(trace, context)

    return FsSummary(
        tainted=tainted,
        boundaries=tuple(sorted(facts.boundaries)),
        uncovered_writes=tuple(sorted(facts.uncovered_writes)),
        uncovered_creates=tuple(sorted(facts.uncovered_creates)),
        volatile_renames=tuple(sorted(facts.volatile_renames)),
        early_fsyncs=early,
        torn_windows=tuple(
            (anchor, wpc, blocks)
            for anchor, (wpc, blocks) in sorted(facts.torn.items())
        ),
        dead_barriers=tuple(sorted(dead)),
        commit_violation=violation,
        ino_paths=dict(analysis.ino_paths),
        predicted_log=predicted,
    )
