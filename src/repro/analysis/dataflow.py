"""Dataflow passes: intervals, init tracking, scopes, step bounds.

The core is an unsigned-interval abstract interpretation over the CFG,
in the style of an eBPF verifier's value tracking:

* every register holds an interval ``[lo, hi]`` with
  ``0 <= lo <= hi <= 2**64 - 1``; the loader zeroes the file, so
  registers start at the *precise* value ``[0, 0]`` (which is what makes
  null-pointer dereferences through never-written bases provable);
* loops converge via *threshold widening*: instead of jumping straight
  to ``[0, 2**64)``, growing bounds snap to the nearest program constant
  (``cmp``/``mov`` immediates), so the usual ``inc / cmp / jl`` loop
  shape keeps its exact trip bound;
* conditional edges are *refined*: a ``cmp a, b`` feeding a ``jcc``
  intersects both operands with the branch condition on each out-edge,
  and an edge whose refinement is empty is infeasible and pruned;
* system-call sites are classified from the abstract ``rax``;
  ``exit``/``guess_fail`` sites are non-returning, so their fall-through
  edges are pruned and the whole fixpoint re-runs until the
  classification stabilises.

Alongside the fixpoint this module derives the *facts* the lint layer
consumes: uninitialised-register reads, memory-operand address
intervals, division sites, per-site syscall classification, guess-scope
reachability sets, and worst-case step bounds per guess scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CONDITIONAL_JUMPS, ControlFlowGraph, Insn
from repro.core import sysno
from repro.cpu import isa
from repro.cpu.registers import MASK64, RAX, RDI, RSP
from repro.mem.layout import STACK_TOP

Interval = tuple[int, int]

TOP: Interval = (0, MASK64)
_SIGNED_MAX = 1 << 63  # intervals below this behave identically signed/unsigned

#: Fixpoint pass at which joins start widening to thresholds.
_WIDEN_PASS = 3
#: Pass at which widening falls back to the trivial threshold set.
_BLOW_PASS = 40
#: Hard cap on fixpoint passes (the widened lattice converges long before).
_MAX_PASSES = 60
#: Rounds of (fixpoint, reclassify syscalls, prune noreturn edges).
_MAX_CLASSIFY_ROUNDS = 4

_GUESS_KINDS = frozenset({sysno.SYS_GUESS, sysno.SYS_GUESS_HINT})
_NORETURN_KINDS = frozenset({sysno.SYS_EXIT, sysno.SYS_GUESS_FAIL})


# -- interval arithmetic -----------------------------------------------


def const(value: int) -> Interval:
    value &= MASK64
    return (value, value)


def _fits(lo: int, hi: int) -> Interval:
    """The interval if it stays inside u64, else TOP (wraparound)."""
    if 0 <= lo <= hi <= MASK64:
        return (lo, hi)
    return TOP


def iv_add(a: Interval, b: Interval) -> Interval:
    return _fits(a[0] + b[0], a[1] + b[1])


def iv_sub(a: Interval, b: Interval) -> Interval:
    return _fits(a[0] - b[1], a[1] - b[0])


def iv_mul(a: Interval, b: Interval) -> Interval:
    return _fits(a[0] * b[0], a[1] * b[1])


def iv_and(a: Interval, b: Interval) -> Interval:
    if a[0] == a[1] and b[0] == b[1]:
        return const(a[0] & b[0])
    return (0, min(a[1], b[1]))


def iv_or(a: Interval, b: Interval) -> Interval:
    if a[0] == a[1] and b[0] == b[1]:
        return const(a[0] | b[0])
    bits = max(a[1].bit_length(), b[1].bit_length())
    return (max(a[0], b[0]), min((1 << bits) - 1, MASK64))


def iv_xor(a: Interval, b: Interval) -> Interval:
    if a[0] == a[1] and b[0] == b[1]:
        return const(a[0] ^ b[0])
    bits = max(a[1].bit_length(), b[1].bit_length())
    return (0, min((1 << bits) - 1, MASK64))


def iv_shl(a: Interval, count: int) -> Interval:
    count &= 63
    return _fits(a[0] << count, a[1] << count)


def iv_shr(a: Interval, count: int) -> Interval:
    count &= 63
    return (a[0] >> count, a[1] >> count)


def iv_udiv(a: Interval, b: Interval) -> Interval:
    divisor_lo = max(b[0], 1)
    divisor_hi = max(b[1], 1)
    return (a[0] // divisor_hi, a[1] // divisor_lo)


def iv_umod(a: Interval, b: Interval) -> Interval:
    if b[1] == 0:
        return (0, 0)  # traps anyway; lint reports it
    return (0, min(a[1], b[1] - 1))


def iv_neg(a: Interval) -> Interval:
    if a == (0, 0):
        return (0, 0)
    if a[0] == a[1]:
        return const(-a[0])
    return TOP


def iv_not(a: Interval) -> Interval:
    return (a[1] ^ MASK64, a[0] ^ MASK64)


def iv_join(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


def iv_intersect(a: Interval, b: Interval) -> Interval | None:
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    return (lo, hi) if lo <= hi else None


# -- abstract state ----------------------------------------------------


class AbsState:
    """Per-program-point abstraction: 16 intervals + a must-init mask."""

    __slots__ = ("regs", "init")

    def __init__(self, regs: list[Interval], init: int) -> None:
        self.regs = regs
        self.init = init

    @classmethod
    def entry(cls) -> "AbsState":
        # The loader zeroes every register, then points rsp at the
        # stack top; only rsp counts as deliberately initialised.
        regs: list[Interval] = [(0, 0)] * 16
        regs[RSP] = const(STACK_TOP)
        return cls(regs, 1 << RSP)

    def copy(self) -> "AbsState":
        return AbsState(list(self.regs), self.init)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AbsState)
            and self.regs == other.regs
            and self.init == other.init
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((tuple(self.regs), self.init))


def _widen_bound(
    old: Interval, new: Interval, thresholds: list[int]
) -> Interval:
    """Widening join: growing bounds snap to the next threshold."""
    lo, hi = old
    if new[0] < lo:
        lo = 0
        for t in reversed(thresholds):
            if t <= new[0]:
                lo = t
                break
    if new[1] > hi:
        hi = MASK64
        for t in thresholds:
            if t >= new[1]:
                hi = t
                break
    return (lo, hi)


def join_states(
    old: AbsState, new: AbsState, thresholds: list[int] | None
) -> AbsState:
    """Hull join, with threshold widening when *thresholds* is given."""
    regs: list[Interval] = []
    for a, b in zip(old.regs, new.regs):
        hull = iv_join(a, b)
        if thresholds is not None and hull != a:
            hull = _widen_bound(a, hull, thresholds)
        regs.append(hull)
    return AbsState(regs, old.init & new.init)


# -- facts -------------------------------------------------------------


@dataclass(frozen=True)
class SyscallFact:
    """One syscall site with its abstract in-state."""

    pc: int
    rax: Interval
    rdi: Interval
    #: Resolved syscall number, or None when rax is not a constant.
    number: int | None
    #: Abstract rsi/rdx at the site (the file-effect domain reads
    #: these: flags, offsets, lengths, destination paths).
    rsi: Interval = TOP
    rdx: Interval = TOP

    @property
    def name(self) -> str:
        if self.number is None:
            return "<unknown>"
        return sysno.syscall_name(self.number)


@dataclass(frozen=True)
class MemAccess:
    """A load/store with the abstract address interval of its operand."""

    pc: int
    addr: Interval | None  # None when statically unbounded
    width: int  # 1 or 8 bytes
    is_write: bool


@dataclass(frozen=True)
class DivSite:
    """A udiv/umod with the abstract divisor interval."""

    pc: int
    divisor: Interval


@dataclass(frozen=True)
class UninitRead:
    """A register read on a path where it was never written."""

    pc: int
    reg: int


@dataclass
class _Facts:
    syscalls: dict[int, SyscallFact] = field(default_factory=dict)
    mem_accesses: list[MemAccess] = field(default_factory=list)
    div_sites: list[DivSite] = field(default_factory=list)
    uninit_reads: list[UninitRead] = field(default_factory=list)


#: Address intervals wider than this are treated as statically unknown.
_MAX_ADDR_SPAN = 1 << 32

#: Intra-block flag provenance: see :attr:`_Transfer.flag_src`.
FlagSource = tuple[str, int, int, "int | None"]

# Flag-source kinds tracked intra-block for branch refinement.
_FLAG_ALU = frozenset({
    isa.ADDRR, isa.ADDRI, isa.SUBRR, isa.SUBRI, isa.IMULRR, isa.IMULRI,
    isa.ANDRR, isa.ANDRI, isa.ORRR, isa.ORRI, isa.XORRR, isa.XORRI,
    isa.SHLI, isa.SHRI, isa.NEG, isa.INC, isa.DEC,
})


class _Transfer:
    """Abstract transfer over one instruction, with optional recording."""

    def __init__(self, facts: _Facts | None = None) -> None:
        self.facts = facts
        #: ``("cmp", dst_reg, src_reg, imm)`` (src_reg < 0 means the
        #: imm operand is live) or ``("zero", reg, -1, None)`` for an
        #: ALU result whose only refinable relation is the zero test;
        #: None when flags are unknown at this point.
        self.flag_src: FlagSource | None = None

    # -- recording helpers ---------------------------------------------

    def _read(self, state: AbsState, reg: int, pc: int) -> Interval:
        if self.facts is not None and not (state.init >> reg) & 1:
            self.facts.uninit_reads.append(UninitRead(pc, reg))
        return state.regs[reg]

    def _write(self, state: AbsState, reg: int, value: Interval) -> None:
        state.regs[reg] = value
        state.init |= 1 << reg
        if self.flag_src is not None:
            kind = self.flag_src[0]
            if (kind == "zero" and self.flag_src[1] == reg) or (
                kind == "cmp" and reg in (self.flag_src[1], self.flag_src[2])
            ):
                self.flag_src = None

    def _mem(
        self, pc: int, addr: Interval, width: int, is_write: bool
    ) -> None:
        if self.facts is None:
            return
        bounded: Interval | None = addr
        if addr == TOP or addr[1] - addr[0] > _MAX_ADDR_SPAN:
            bounded = None
        self.facts.mem_accesses.append(MemAccess(pc, bounded, width, is_write))

    # -- the transfer proper -------------------------------------------

    def step(self, state: AbsState, insn: Insn) -> None:
        """Apply *insn* to *state* in place."""
        op = insn.opcode
        f = insn.fields
        pc = insn.pc
        I = isa

        if op == I.MOVI:
            self._write(state, f[0], const(f[1]))
        elif op == I.MOVR:
            self._write(state, f[0], self._read(state, f[1], pc))
        elif op in (I.LOAD, I.LOADB):
            addr = iv_add(self._read(state, f[1], pc), const(f[2]))
            width = 8 if op == I.LOAD else 1
            self._mem(pc, addr, width, is_write=False)
            self._write(state, f[0], TOP if op == I.LOAD else (0, 255))
        elif op in (I.STORE, I.STOREB):
            addr = iv_add(self._read(state, f[0], pc), const(f[1]))
            self._read(state, f[2], pc)
            self._mem(pc, addr, 8 if op == I.STORE else 1, is_write=True)
        elif op in (I.LOADX, I.LOADBX):
            base = self._read(state, f[1], pc)
            idx = self._read(state, f[2], pc)
            addr = iv_add(iv_add(base, iv_mul(idx, const(f[3]))), const(f[4]))
            width = 8 if op == I.LOADX else 1
            self._mem(pc, addr, width, is_write=False)
            self._write(state, f[0], TOP if op == I.LOADX else (0, 255))
        elif op in (I.STOREX, I.STOREBX):
            base = self._read(state, f[0], pc)
            idx = self._read(state, f[1], pc)
            addr = iv_add(iv_add(base, iv_mul(idx, const(f[2]))), const(f[3]))
            self._read(state, f[4], pc)
            self._mem(pc, addr, 8 if op == I.STOREX else 1, is_write=True)
        elif op == I.LEA:
            self._write(
                state, f[0], iv_add(self._read(state, f[1], pc), const(f[2]))
            )
        elif op == I.LEAX:
            base = self._read(state, f[1], pc)
            idx = self._read(state, f[2], pc)
            self._write(
                state, f[0],
                iv_add(iv_add(base, iv_mul(idx, const(f[3]))), const(f[4])),
            )
        elif op in (I.ADDRR, I.ADDRI, I.SUBRR, I.SUBRI, I.IMULRR, I.IMULRI,
                    I.ANDRR, I.ANDRI, I.ORRR, I.ORRI, I.XORRR, I.XORRI):
            dst = self._read(state, f[0], pc)
            if op in (I.ADDRR, I.SUBRR, I.IMULRR, I.ANDRR, I.ORRR, I.XORRR):
                src = self._read(state, f[1], pc)
            else:
                src = const(f[1])
            if op in (I.ADDRR, I.ADDRI):
                res = iv_add(dst, src)
            elif op in (I.SUBRR, I.SUBRI):
                res = iv_sub(dst, src)
            elif op in (I.IMULRR, I.IMULRI):
                res = iv_mul(dst, src)
            elif op in (I.ANDRR, I.ANDRI):
                res = iv_and(dst, src)
            elif op in (I.ORRR, I.ORRI):
                res = iv_or(dst, src)
            else:
                if op == I.XORRR and f[0] == f[1]:
                    res = (0, 0)  # the canonical zeroing idiom
                else:
                    res = iv_xor(dst, src)
            self._write(state, f[0], res)
            self.flag_src = ("zero", f[0], -1, None)
        elif op == I.SHLI:
            self._write(
                state, f[0], iv_shl(self._read(state, f[0], pc), f[1])
            )
            self.flag_src = ("zero", f[0], -1, None)
        elif op == I.SHRI:
            self._write(
                state, f[0], iv_shr(self._read(state, f[0], pc), f[1])
            )
            self.flag_src = ("zero", f[0], -1, None)
        elif op == I.NEG:
            self._write(state, f[0], iv_neg(self._read(state, f[0], pc)))
            self.flag_src = ("zero", f[0], -1, None)
        elif op == I.NOT:
            self._write(state, f[0], iv_not(self._read(state, f[0], pc)))
        elif op in (I.INC, I.DEC):
            val = self._read(state, f[0], pc)
            delta = const(1)
            res = iv_add(val, delta) if op == I.INC else iv_sub(val, delta)
            self._write(state, f[0], res)
            self.flag_src = ("zero", f[0], -1, None)
        elif op in (I.UDIVRR, I.UMODRR):
            dst = self._read(state, f[0], pc)
            src = self._read(state, f[1], pc)
            if self.facts is not None:
                self.facts.div_sites.append(DivSite(pc, src))
            res = iv_udiv(dst, src) if op == I.UDIVRR else iv_umod(dst, src)
            self._write(state, f[0], res)
        elif op == I.CMPRR:
            self._read(state, f[0], pc)
            self._read(state, f[1], pc)
            self.flag_src = ("cmp", f[0], f[1], None)
        elif op == I.CMPRI:
            self._read(state, f[0], pc)
            self.flag_src = ("cmp", f[0], -1, f[1])
        elif op == I.TESTRR:
            self._read(state, f[0], pc)
            self._read(state, f[1], pc)
            # test r, r is the zero-test idiom; mixed regs carry no
            # refinable relation.
            self.flag_src = ("zero", f[0], -1, None) if f[0] == f[1] else None
        elif op == I.PUSH:
            self._read(state, f[0], pc)
            state.regs[RSP] = iv_sub(state.regs[RSP], const(8))
        elif op == I.POP:
            self._write(state, f[0], TOP)
            state.regs[RSP] = iv_add(state.regs[RSP], const(8))
        elif op == I.CALL:
            state.regs[RSP] = iv_sub(state.regs[RSP], const(8))
        elif op == I.RET:
            state.regs[RSP] = iv_add(state.regs[RSP], const(8))
        elif op == I.SYSCALL:
            self._syscall(state, insn)
        # JMP/Jcc/NOP/HLT: no register effect.

    def _syscall(self, state: AbsState, insn: Insn) -> None:
        rax = self._read(state, RAX, insn.pc)
        rdi = state.regs[RDI]
        number = rax[0] if rax[0] == rax[1] else None
        if self.facts is not None:
            self.facts.syscalls[insn.pc] = SyscallFact(
                insn.pc, rax, rdi, number,
                rsi=state.regs[6], rdx=state.regs[2],
            )
            if number in _GUESS_KINDS or number == sysno.SYS_GUESS_STRATEGY \
                    or number == sysno.SYS_BRK or number == sysno.SYS_EXIT:
                self._read(state, RDI, insn.pc)
            elif number in (sysno.SYS_READ, sysno.SYS_WRITE):
                self._read(state, RDI, insn.pc)
                self._read(state, 6, insn.pc)  # rsi
                self._read(state, 2, insn.pc)  # rdx
            elif number == sysno.SYS_GUESS_HINT:
                self._read(state, RDI, insn.pc)
                self._read(state, 6, insn.pc)
            elif number in (sysno.SYS_FSYNC, sysno.SYS_CRASH_SELECT,
                            sysno.SYS_CRASH_OPTS):
                self._read(state, RDI, insn.pc)  # fd / point / dim index
            elif number in (sysno.SYS_RENAME, sysno.SYS_CRASH_SET):
                self._read(state, RDI, insn.pc)
                self._read(state, 6, insn.pc)  # rsi: dst path / option
        if number in _GUESS_KINDS and rdi[1] >= 1:
            result: Interval = (0, rdi[1] - 1)
        else:
            result = TOP
        self._write(state, RAX, result)


# -- branch refinement -------------------------------------------------

#: jcc opcode -> relation that holds on the *taken* edge.
_TAKEN_REL = {
    isa.JE: "eq", isa.JNE: "ne",
    isa.JL: "slt", isa.JLE: "sle", isa.JG: "sgt", isa.JGE: "sge",
    isa.JB: "ult", isa.JAE: "uge",
}
_NEGATE = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
}


def _chop_ne(iv: Interval, value: int) -> Interval | None:
    """Refine *iv* with ``!= value`` (endpoint chopping only)."""
    lo, hi = iv
    if lo == hi == value:
        return None
    if lo == value:
        return (lo + 1, hi)
    if hi == value:
        return (lo, hi - 1)
    return iv


def _refine_unsigned(
    dst: Interval, src: Interval, rel: str
) -> tuple[Interval, Interval] | None:
    """Intersect both operands with ``dst REL src``; None = infeasible."""
    if rel == "eq":
        meet = iv_intersect(dst, src)
        if meet is None:
            return None
        return meet, meet
    if rel == "ne":
        if src[0] == src[1]:
            new_dst = _chop_ne(dst, src[0])
            if new_dst is None:
                return None
            dst = new_dst
        if dst[0] == dst[1]:
            new_src = _chop_ne(src, dst[0])
            if new_src is None:
                return None
            src = new_src
        return dst, src
    if rel == "ult":
        if src[1] == 0:
            return None
        new_dst = iv_intersect(dst, (0, src[1] - 1))
        new_src = iv_intersect(src, (min(dst[0] + 1, MASK64), MASK64))
        if new_dst is None or new_src is None:
            return None
        return new_dst, new_src
    if rel == "ule":
        new_dst = iv_intersect(dst, (0, src[1]))
        new_src = iv_intersect(src, (dst[0], MASK64))
        if new_dst is None or new_src is None:
            return None
        return new_dst, new_src
    if rel == "ugt":
        if dst[1] == 0:
            return None
        new_dst = iv_intersect(dst, (min(src[0] + 1, MASK64), MASK64))
        new_src = iv_intersect(src, (0, dst[1] - 1))
        if new_dst is None or new_src is None:
            return None
        return new_dst, new_src
    # "uge"
    new_dst = iv_intersect(dst, (src[0], MASK64))
    new_src = iv_intersect(src, (0, dst[1]))
    if new_dst is None or new_src is None:
        return None
    return new_dst, new_src


def refine_edge(
    state: AbsState, flag_src: FlagSource | None, jcc_op: int, taken: bool
) -> AbsState | None:
    """State on one out-edge of a jcc; None when the edge is infeasible."""
    if flag_src is None:
        return state
    rel = _TAKEN_REL[jcc_op]
    if not taken:
        rel = _NEGATE[rel]

    if flag_src[0] == "zero":
        reg = flag_src[1]
        if rel == "eq":
            meet = iv_intersect(state.regs[reg], (0, 0))
            if meet is None:
                return None
            out = state.copy()
            out.regs[reg] = meet
            return out
        if rel == "ne":
            chopped = _chop_ne(state.regs[reg], 0)
            if chopped is None:
                return None
            out = state.copy()
            out.regs[reg] = chopped
            return out
        return state  # only the zero flag is refinable here

    _, dst_reg, src_reg, imm = flag_src
    dst = state.regs[dst_reg]
    imm_signed: int | None
    if src_reg >= 0:
        src: Interval = state.regs[src_reg]
        imm_signed = None
    else:
        if imm is None:  # defensive: cmp sources always carry an operand
            return state
        imm_signed = imm  # sign-extended imm32
        src = const(imm)

    if rel in ("slt", "sle", "sgt", "sge"):
        # Signed relations refine only where signed and unsigned
        # ordering agree: both operands in [0, 2**63).
        if dst[1] >= _SIGNED_MAX:
            return state
        if imm_signed is not None and imm_signed < 0:
            # dst >= 0 > imm: the relation is statically decided.
            if rel in ("slt", "sle"):
                return None
            return state
        if imm_signed is None and src[1] >= _SIGNED_MAX:
            return state
        rel = {"slt": "ult", "sle": "ule", "sgt": "ugt", "sge": "uge"}[rel]

    refined = _refine_unsigned(dst, src, rel)
    if refined is None:
        return None
    new_dst, new_src = refined
    out = state.copy()
    out.regs[dst_reg] = new_dst
    if src_reg >= 0:
        out.regs[src_reg] = new_src
    return out


# -- fixpoint ----------------------------------------------------------


def _thresholds(cfg: ControlFlowGraph) -> list[int]:
    values = {0, 1, MASK64}
    for insn in cfg.insns.values():
        if insn.opcode == isa.CMPRI or insn.opcode == isa.MOVI:
            v = insn.fields[1] & MASK64
            values.add(v)
            if v < MASK64:
                values.add(v + 1)
    return sorted(values)


def _rpo(cfg: ControlFlowGraph) -> list[int]:
    """Reverse post-order over blocks, from the entry."""
    if cfg.entry not in cfg.block_of:
        return []
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(cfg.block_of[cfg.entry], False)]
    while stack:
        block, done = stack.pop()
        if done:
            order.append(block)
            continue
        if block in seen:
            continue
        seen.add(block)
        stack.append((block, True))
        for _, succ in cfg.blocks[block].edges:
            if succ not in seen:
                stack.append((succ, False))
    order.reverse()
    return order


def _transfer_block(
    cfg: ControlFlowGraph,
    block_start: int,
    in_state: AbsState,
    noreturn: frozenset[int],
    facts: _Facts | None = None,
) -> list[tuple[int, AbsState]]:
    """Run one block; return refined out-states per feasible edge."""
    block = cfg.blocks[block_start]
    transfer = _Transfer(facts)
    state = in_state.copy()
    for insn in block.insns:
        transfer.step(state, insn)
    term = block.terminator
    outs: list[tuple[int, AbsState]] = []
    if term.opcode == isa.SYSCALL and term.pc in noreturn:
        return outs
    if term.opcode in CONDITIONAL_JUMPS:
        for kind, succ in block.edges:
            refined = refine_edge(
                state, transfer.flag_src, term.opcode, taken=(kind == "jump")
            )
            if refined is not None:
                outs.append((succ, refined))
    else:
        for _, succ in block.edges:
            outs.append((succ, state))
    return outs


def _fixpoint(
    cfg: ControlFlowGraph,
    noreturn: frozenset[int],
    thresholds: list[int],
) -> dict[int, AbsState]:
    order = _rpo(cfg)
    if not order:
        return {}
    block_in: dict[int, AbsState] = {order[0]: AbsState.entry()}
    trivial = [0, MASK64]
    for pass_num in range(_MAX_PASSES):
        if pass_num >= _BLOW_PASS:
            widen: list[int] | None = trivial
        elif pass_num >= _WIDEN_PASS:
            widen = thresholds
        else:
            widen = None
        changed = False
        for block in order:
            state = block_in.get(block)
            if state is None:
                continue
            for succ, out in _transfer_block(cfg, block, state, noreturn):
                old = block_in.get(succ)
                if old is None:
                    block_in[succ] = out.copy()
                    changed = True
                else:
                    joined = join_states(old, out, widen)
                    if joined != old:
                        block_in[succ] = joined
                        changed = True
        if not changed:
            break
    return block_in


# -- results -----------------------------------------------------------


@dataclass
class DataflowResult:
    """Everything the lint layer needs, in one bundle."""

    cfg: ControlFlowGraph
    block_in: dict[int, AbsState]
    noreturn: frozenset[int]
    syscalls: dict[int, SyscallFact]
    mem_accesses: list[MemAccess]
    div_sites: list[DivSite]
    uninit_reads: list[UninitRead]
    #: Scope key pc (program entry or guess-site pc) -> worst-case
    #: retired-instruction bound, or None when a cycle makes the scope
    #: statically unbounded.
    step_bounds: dict[int, int | None]

    @property
    def guess_sites(self) -> list[int]:
        return sorted(
            pc for pc, s in self.syscalls.items() if s.number in _GUESS_KINDS
        )

    @property
    def fail_sites(self) -> list[int]:
        return sorted(
            pc for pc, s in self.syscalls.items()
            if s.number == sysno.SYS_GUESS_FAIL
        )

    @property
    def write_sites(self) -> list[int]:
        return sorted(
            pc for pc, s in self.syscalls.items()
            if s.number == sysno.SYS_WRITE
        )

    def feasible_blocks(self) -> set[int]:
        return set(self.block_in)

    # -- guess-scope reachability --------------------------------------

    def blocks_before_first_guess(self) -> set[int]:
        """Blocks reachable from entry without crossing any guess."""
        cfg = self.cfg
        if cfg.entry not in cfg.block_of:
            return set()
        guess_pcs = set(self.guess_sites)
        start = cfg.block_of[cfg.entry]
        seen = {start}
        work = [start]
        while work:
            block_start = work.pop()
            block = cfg.blocks[block_start]
            term = block.terminator
            if term.opcode == isa.SYSCALL and term.pc in guess_pcs:
                continue  # do not cross into the guess scope
            for succ in cfg.successors(block, self.noreturn):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def reachable_from(self, block_start: int) -> set[int]:
        """Blocks reachable from the *successors* of one block."""
        cfg = self.cfg
        seen: set[int] = set()
        work = list(cfg.successors(cfg.blocks[block_start], self.noreturn))
        while work:
            b = work.pop()
            if b in seen:
                continue
            seen.add(b)
            work.extend(cfg.successors(cfg.blocks[b], self.noreturn))
        return seen


def _scope_bound(
    cfg: ControlFlowGraph,
    start_blocks: list[int],
    noreturn: frozenset[int],
    guess_pcs: set[int],
) -> int | None:
    """Longest instruction path from *start_blocks*, cut at guess sites.

    Returns None when a cycle is reachable (statically unbounded scope).
    Iterative DFS: the CFG of a 9x9 sudoku has ~1000 blocks in a chain,
    past the default recursion limit.
    """
    memo: dict[int, int | None] = {}
    onstack: set[int] = set()

    def succs_of(block_start: int) -> list[int]:
        block = cfg.blocks[block_start]
        term = block.terminator
        if term.opcode == isa.SYSCALL and term.pc in guess_pcs:
            return []  # scope ends where the next guess begins
        return cfg.successors(block, noreturn)

    for root in start_blocks:
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            block_start, done = stack.pop()
            if done:
                onstack.discard(block_start)
                best = 0
                unbounded = False
                for succ in succs_of(block_start):
                    sub = memo.get(succ)
                    if sub is None:
                        unbounded = True
                        break
                    best = max(best, sub)
                if unbounded:
                    return None
                memo[block_start] = len(cfg.blocks[block_start]) + best
                continue
            if block_start in memo:
                continue
            if block_start in onstack:
                return None  # back edge: cycle in scope
            onstack.add(block_start)
            stack.append((block_start, True))
            for succ in succs_of(block_start):
                if succ not in memo and succ not in onstack:
                    stack.append((succ, False))
                elif succ in onstack:
                    return None
    if not start_blocks:
        return 0
    return max(memo.get(b) or 0 for b in start_blocks)


def run_dataflow(cfg: ControlFlowGraph) -> DataflowResult:
    """Full pipeline: fixpoint + syscall classification + fact harvest."""
    thresholds = _thresholds(cfg)
    noreturn: frozenset[int] = frozenset()
    block_in: dict[int, AbsState] = {}
    facts = _Facts()
    for _ in range(_MAX_CLASSIFY_ROUNDS):
        block_in = _fixpoint(cfg, noreturn, thresholds)
        facts = _Facts()
        for block, state in block_in.items():
            _transfer_block(cfg, block, state, noreturn, facts)
        new_noreturn = frozenset(
            pc for pc, s in facts.syscalls.items()
            if s.number in _NORETURN_KINDS
        )
        if new_noreturn == noreturn:
            break
        noreturn = new_noreturn

    guess_pcs = {
        pc for pc, s in facts.syscalls.items() if s.number in _GUESS_KINDS
    }
    step_bounds: dict[int, int | None] = {}
    if cfg.entry in cfg.block_of:
        step_bounds[cfg.entry] = _scope_bound(
            cfg, [cfg.block_of[cfg.entry]], noreturn, guess_pcs
        )
    for pc in sorted(guess_pcs):
        block = cfg.blocks[cfg.block_of[pc]]
        starts = [s for s in cfg.successors(block, noreturn)]
        step_bounds[pc] = _scope_bound(cfg, starts, noreturn, guess_pcs)

    return DataflowResult(
        cfg=cfg,
        block_in=block_in,
        noreturn=noreturn,
        syscalls=facts.syscalls,
        mem_accesses=facts.mem_accesses,
        div_sites=facts.div_sites,
        uninit_reads=facts.uninit_reads,
        step_bounds=step_bounds,
    )
