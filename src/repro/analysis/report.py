"""Findings, the lint catalog, and report rendering (human/JSON/SARIF).

Every finding carries a stable lint id from :data:`CATALOG`; ids are
grouped by family:

* ``CF*`` control flow, ``DF*`` dataflow, ``MB*`` memory bounds,
  ``DV*`` division, ``BT*`` backtracking discipline, ``DT*``
  determinism, ``FS*`` crash consistency (file-effect domain).

Exit-code semantics match the ``repro.tools.analyze`` CLI contract:
0 = clean (info findings allowed), 1 = warnings, 2 = errors.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.fsdomain import FsSummary


class Severity(enum.IntEnum):
    """Finding severity; the int order is the escalation order."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        return {"info": "note", "warning": "warning", "error": "error"}[
            self.label
        ]


@dataclass(frozen=True)
class LintSpec:
    """Catalog entry for one lint id."""

    lint_id: str
    name: str
    default_severity: Severity
    description: str
    #: A minimal guest-source sketch that triggers the lint (shown by
    #: ``analyze --explain``; empty for the pre-FS catalog entries).
    example: str = ""


_SPECS = [
    LintSpec("CF001", "invalid-opcode", Severity.ERROR,
             "Control flow reaches a byte that does not decode to a valid "
             "instruction (traps with an invalid-opcode fault)."),
    LintSpec("CF002", "unreachable-code", Severity.WARNING,
             "Basic block can never be reached from the entry point."),
    LintSpec("CF003", "control-flow-escape", Severity.ERROR,
             "A branch target or fall-through leaves the .text segment."),
    LintSpec("CF004", "ret-without-call", Severity.ERROR,
             "ret with no call site anywhere in the program; the return "
             "address load reads unmapped or unrelated stack memory."),
    LintSpec("DF001", "uninit-register-read", Severity.WARNING,
             "Register is read on a path where it was never written "
             "(the loader zeroes it, so the read yields 0)."),
    LintSpec("DV001", "divide-by-zero", Severity.WARNING,
             "udiv/umod divisor may be zero (error when provably zero); "
             "a zero divisor raises #DE and kills the extension."),
    LintSpec("MB001", "oob-access", Severity.ERROR,
             "Memory operand is provably outside every mapped segment; "
             "the access page-faults."),
    LintSpec("MB002", "possible-oob-access", Severity.WARNING,
             "Memory operand may fall outside the mapped segments for "
             "some abstract values."),
    LintSpec("MB003", "write-to-text", Severity.ERROR,
             "Store targets the read-execute .text segment; the MMU "
             "denies the write."),
    LintSpec("BT001", "no-reachable-guess-fail", Severity.INFO,
             "sys_guess with no reachable sys_guess_fail: subtrees can "
             "only end in solutions, exits, or kills."),
    LintSpec("BT002", "guess-fail-before-guess", Severity.WARNING,
             "sys_guess_fail reachable before any sys_guess: failing "
             "with no snapshot to backtrack to aborts the search."),
    LintSpec("BT003", "non-positive-fan-out", Severity.WARNING,
             "sys_guess with a constant fan-out n <= 0: the guess fails "
             "immediately and the subtree is stillborn."),
    LintSpec("BT004", "write-inside-guess-scope", Severity.INFO,
             "sys_write reachable inside a guess scope: output from "
             "abandoned extensions is discarded with the snapshot."),
    LintSpec("DT001", "replay-unsafe-read", Severity.WARNING,
             "sys_read consumes external input; replayed extensions may "
             "observe different bytes and diverge."),
    LintSpec("DT002", "host-environment-open", Severity.WARNING,
             "sys_open depends on host filesystem state; replay across "
             "processes may diverge."),
    LintSpec("DT003", "uninterposed-syscall", Severity.WARNING,
             "Syscall number is outside the libOS interposed set; its "
             "effect is not captured by snapshots or replay."),
    LintSpec("DT004", "unresolved-syscall-number", Severity.WARNING,
             "rax at a syscall site is not a static constant; the "
             "analyzer cannot prove the call is replay-safe."),
    LintSpec("DT005", "nondet-clock-read", Severity.WARNING,
             "sys_time reads the host wall clock; re-executions observe "
             "different timestamps unless a recorder interposes."),
    LintSpec("DT006", "nondet-random-read", Severity.WARNING,
             "sys_getrandom draws host entropy; re-executions observe "
             "different bytes unless a recorder interposes."),
    LintSpec("FS001", "missing-fsync", Severity.WARNING,
             "A written block or created file is still volatile when a "
             "crash boundary (sys_crash_select / sys_exit) is reached; "
             "a crash there can lose or tear the update.",
             example=("open '/db' O_WRONLY; write 8 bytes; "
                      "sys_crash_select with no intervening fsync")),
    LintSpec("FS002", "volatile-rename", Severity.WARNING,
             "A rename record is still volatile at a crash boundary; "
             "only a global sync retires namespace updates in this "
             "file model, so the new name can vanish on crash.",
             example=("rename('/cfg.tmp', '/cfg'); sys_crash_select "
                      "without a sys_sync after the rename")),
    LintSpec("FS003", "fsync-before-data", Severity.WARNING,
             "fsync retired no data on an inode that later reaches a "
             "crash boundary with unflushed writes: the barrier ran "
             "before the writes it was meant to cover.",
             example=("open '/journal' O_CREAT; fsync(fd); then write "
                      "the journal entry and never fsync again")),
    LintSpec("FS004", "torn-write-window", Severity.WARNING,
             "Two or more distinct dirty blocks of one inode are in "
             "flight between barriers; the crash model may persist "
             "any subset, exposing a torn multi-block state.",
             example=("write block 0 and block 1 of '/data' with no "
                      "fsync between the two writes")),
    LintSpec("FS005", "write-after-commit", Severity.ERROR,
             "Even the fully durable final image violates every "
             "final-state rule of the crash plan: some write after "
             "the commit point corrupts the committed state.",
             example=("commit metadata for slot A, then overwrite "
                      "slot A's allocation bit with a stale value")),
    LintSpec("FS006", "dead-barrier", Severity.INFO,
             "A barrier provably retires nothing on every path "
             "(fsync of a clean inode, or sync with no volatile "
             "state): it costs a flush and buys no durability.",
             example=("fsync(fd) immediately after open, before any "
                      "write through the fd")),
]

#: lint id -> spec.
CATALOG: dict[str, LintSpec] = {spec.lint_id: spec for spec in _SPECS}


def catalog_fingerprint() -> str:
    """Stable digest of the lint catalog (ids, severities, texts).

    Memoisation keys include this so a grown or re-tuned catalog can
    never serve a stale cached verdict from an older analyzer.
    """
    h = hashlib.sha256()
    for spec in sorted(CATALOG.values(), key=lambda s: s.lint_id):
        h.update(repr((
            spec.lint_id, spec.name, int(spec.default_severity),
            spec.description, spec.example,
        )).encode())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class Finding:
    """One lint hit, anchored to a pc/block/source line."""

    lint_id: str
    severity: Severity
    pc: int
    message: str
    block: int | None = None
    label: str = ""
    line: int | None = None

    @property
    def spec(self) -> LintSpec:
        return CATALOG[self.lint_id]

    def to_dict(self) -> dict[str, object]:
        return {
            "id": self.lint_id,
            "name": self.spec.name,
            "severity": self.severity.label,
            "pc": self.pc,
            "block": self.block,
            "label": self.label,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class DeterminismCertificate:
    """The analyzer's replay-safety verdict for one program.

    ``certified`` means: every reachable syscall site resolves to a
    statically known number inside the libOS interposed set, none of
    them consumes external input (``read``/``open``), and control flow
    never reaches an undecodable instruction.  Those are exactly the
    properties prefix replay in the process-parallel engine relies on.
    """

    certified: bool
    reasons: tuple[str, ...] = ()
    #: syscall name -> number of static sites.
    syscall_profile: dict[str, int] = field(default_factory=dict)
    #: scope key pc (entry or guess pc) -> worst-case step bound
    #: (None = statically unbounded, e.g. a loop inside the scope).
    step_bounds: dict[int, int | None] = field(default_factory=dict)
    #: pcs the certifier flagged, with the lint id that fired there.
    nondet_sites: tuple[tuple[int, str], ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "certified": self.certified,
            "reasons": list(self.reasons),
            "syscall_profile": dict(self.syscall_profile),
            "step_bounds": {
                f"{pc:#x}": bound for pc, bound in self.step_bounds.items()
            },
            "nondet_sites": [
                {"pc": pc, "lint": lint_id} for pc, lint_id in self.nondet_sites
            ],
        }


@dataclass
class AnalysisReport:
    """Full analyzer output for one program."""

    findings: list[Finding]
    certificate: DeterminismCertificate
    entry: int
    text_size: int
    block_count: int
    insn_count: int
    elapsed: float = 0.0
    #: File-effect domain summary (None only for reports built before
    #: the FS pass existed, e.g. deserialized ones).
    fs: FsSummary | None = None

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.INFO]

    @property
    def clean(self) -> bool:
        """No warnings or errors (info findings do not spoil a program)."""
        return not self.errors and not self.warnings

    @property
    def exit_code(self) -> int:
        """CLI contract: 0 clean, 1 warnings, 2 errors."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def by_lint(self, lint_id: str) -> list[Finding]:
        return [f for f in self.findings if f.lint_id == lint_id]

    # -- rendering -----------------------------------------------------

    def render_human(self) -> str:
        lines = [
            f"guest-program verifier: {self.block_count} blocks, "
            f"{self.insn_count} insns, entry {self.entry:#x}, "
            f".text {self.text_size} bytes"
            + (f"  ({self.elapsed * 1000:.1f} ms)" if self.elapsed else "")
        ]
        if self.findings:
            rows = [("ID", "SEVERITY", "PC", "BLOCK", "MESSAGE")]
            for f in sorted(
                self.findings, key=lambda f: (-f.severity, f.pc, f.lint_id)
            ):
                where = f.label or (f"{f.block:#x}" if f.block else "-")
                if f.line is not None:
                    where += f" (line {f.line})"
                rows.append(
                    (f.lint_id, f.severity.label, f"{f.pc:#x}", where,
                     f.message)
                )
            widths = [
                max(len(row[col]) for row in rows) for col in range(4)
            ]
            for row in rows:
                lines.append(
                    "  ".join(
                        cell.ljust(widths[col]) if col < 4 else cell
                        for col, cell in enumerate(row)
                    ).rstrip()
                )
        else:
            lines.append("no findings")
        cert = self.certificate
        if cert.certified:
            lines.append(
                "determinism: CERTIFIED "
                "(all syscall sites resolved and interposed)"
            )
        else:
            lines.append("determinism: NOT CERTIFIED")
            for reason in cert.reasons:
                lines.append(f"  - {reason}")
        if self.fs is not None:
            if self.fs.fs_clean:
                lines.append(
                    "crash consistency: FS-CLEAN "
                    "(no volatile file effect reaches a crash boundary)"
                )
            else:
                suffix = (
                    " (file-effect tracking incomplete)"
                    if self.fs.tainted else ""
                )
                lines.append(f"crash consistency: NOT PROVEN{suffix}")
        if cert.syscall_profile:
            profile = ", ".join(
                f"{name}x{count}"
                for name, count in sorted(cert.syscall_profile.items())
            )
            lines.append(f"syscalls: {profile}")
        bounded = {
            pc: bound
            for pc, bound in cert.step_bounds.items() if bound is not None
        }
        if cert.step_bounds:
            worst = max(bounded.values()) if bounded else None
            unbounded = len(cert.step_bounds) - len(bounded)
            desc = f"{len(cert.step_bounds)} scopes"
            if worst is not None:
                desc += f", worst bounded scope {worst} insns"
            if unbounded:
                desc += f", {unbounded} statically unbounded"
            lines.append(f"step bounds: {desc}")
        lines.append(
            f"summary: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "entry": self.entry,
            "text_size": self.text_size,
            "blocks": self.block_count,
            "insns": self.insn_count,
            "elapsed": self.elapsed,
            "findings": [f.to_dict() for f in self.findings],
            "certificate": self.certificate.to_dict(),
            "fs": self.fs.to_dict() if self.fs is not None else None,
            "exit_code": self.exit_code,
        }

    def to_sarif(self, artifact: str = "guest.s") -> dict[str, object]:
        """Minimal SARIF 2.1.0 document (one run, one tool)."""
        rules = [
            {
                "id": spec.lint_id,
                "name": spec.name,
                "shortDescription": {"text": spec.description},
                "defaultConfiguration": {
                    "level": spec.default_severity.sarif_level
                },
            }
            for spec in CATALOG.values()
        ]
        results = []
        for f in self.findings:
            location: dict[str, object] = {
                "physicalLocation": {
                    "artifactLocation": {"uri": artifact},
                    "region": {"startLine": f.line or 1},
                },
                "logicalLocations": [
                    {"name": f.label or f"{f.pc:#x}", "kind": "function"}
                ],
            }
            results.append(
                {
                    "ruleId": f.lint_id,
                    "level": f.severity.sarif_level,
                    "message": {"text": f"{f.message} (pc {f.pc:#x})"},
                    "locations": [location],
                }
            )
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-analyze",
                            "informationUri":
                                "https://example.invalid/repro/analysis",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def sarif_text(self, artifact: str = "guest.s") -> str:
        return json.dumps(self.to_sarif(artifact), indent=2)
