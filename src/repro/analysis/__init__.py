"""Static analysis and determinism certification for guest programs.

An eBPF-verifier-style load-time checker for assembled guest
:class:`~repro.cpu.assembler.Program`\\ s.  Replay soundness — the
property the process-parallel engine's prefix rehydration rests on — is
a property of the *program*, so it is proved here at load time instead
of surfacing as a runtime ``GuessError`` deep inside a worker.

Layers (each its own module):

* :mod:`repro.analysis.cfg` — decode via the shared
  :data:`repro.cpu.isa.OPCODES` table and build the control-flow graph;
* :mod:`repro.analysis.dataflow` — interval abstract interpretation,
  must-initialized registers, guess-scope reachability, worst-case step
  bounds;
* :mod:`repro.analysis.fsdomain` — the file-effect abstract domain
  (per-fd inode bindings, per-inode durability state, barrier
  coverage) plus concrete writer-oplog prediction;
* :mod:`repro.analysis.crashprune` — analysis-guided crash-point
  pruning for the crash-consistency search, with exact survivor
  synthesis;
* :mod:`repro.analysis.lints` — the lint catalog (``CF*``/``DF*``/
  ``MB*``/``DV*``/``BT*``/``DT*``/``FS*``) and the determinism
  certifier;
* :mod:`repro.analysis.report` — findings, the human/JSON/SARIF report;
* :mod:`repro.analysis.verifier` — the engine-facing gate behind
  ``verify="off"|"warn"|"strict"``;
* :mod:`repro.analysis.differential` — cross-validation of analyzer
  claims against observed ``obs`` trace streams.
"""

from __future__ import annotations

from repro.analysis.crashprune import PrunePlan, plan_pruning
from repro.analysis.fsdomain import FsContext, FsSummary, analyze_fs
from repro.analysis.lints import analyze
from repro.analysis.report import (
    CATALOG,
    AnalysisReport,
    DeterminismCertificate,
    Finding,
    LintSpec,
    Severity,
    catalog_fingerprint,
)
from repro.analysis.verifier import (
    VERIFY_MODES,
    VerificationError,
    nondet_sites,
    verify_program,
)

__all__ = [
    "CATALOG",
    "VERIFY_MODES",
    "AnalysisReport",
    "DeterminismCertificate",
    "Finding",
    "FsContext",
    "FsSummary",
    "LintSpec",
    "PrunePlan",
    "Severity",
    "VerificationError",
    "analyze",
    "analyze_fs",
    "catalog_fingerprint",
    "nondet_sites",
    "plan_pruning",
    "verify_program",
]
