"""Static analysis and determinism certification for guest programs.

An eBPF-verifier-style load-time checker for assembled guest
:class:`~repro.cpu.assembler.Program`\\ s.  Replay soundness — the
property the process-parallel engine's prefix rehydration rests on — is
a property of the *program*, so it is proved here at load time instead
of surfacing as a runtime ``GuessError`` deep inside a worker.

Layers (each its own module):

* :mod:`repro.analysis.cfg` — decode via the shared
  :data:`repro.cpu.isa.OPCODES` table and build the control-flow graph;
* :mod:`repro.analysis.dataflow` — interval abstract interpretation,
  must-initialized registers, guess-scope reachability, worst-case step
  bounds;
* :mod:`repro.analysis.lints` — the lint catalog (``CF*``/``DF*``/
  ``MB*``/``DV*``/``BT*``/``DT*``) and the determinism certifier;
* :mod:`repro.analysis.report` — findings, the human/JSON/SARIF report;
* :mod:`repro.analysis.verifier` — the engine-facing gate behind
  ``verify="off"|"warn"|"strict"``;
* :mod:`repro.analysis.differential` — cross-validation of analyzer
  claims against observed ``obs`` trace streams.
"""

from __future__ import annotations

from repro.analysis.lints import analyze
from repro.analysis.report import (
    CATALOG,
    AnalysisReport,
    DeterminismCertificate,
    Finding,
    LintSpec,
    Severity,
)
from repro.analysis.verifier import (
    VERIFY_MODES,
    VerificationError,
    nondet_sites,
    verify_program,
)

__all__ = [
    "CATALOG",
    "VERIFY_MODES",
    "AnalysisReport",
    "DeterminismCertificate",
    "Finding",
    "LintSpec",
    "Severity",
    "VerificationError",
    "analyze",
    "nondet_sites",
    "verify_program",
]
