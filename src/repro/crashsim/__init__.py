"""Crash-consistency search over the versioned file layer.

The search dogfoods snapshots on both sides: the *subject* is the file
layer's persistence model (which on-disk images can a crash leave?),
and the *searcher* is the backtracking engine (fork over crash points
and persistence choices with ``sys_guess``, prune images that recover
cleanly with ``sys_guess_fail``).  Surviving leaves are
crash-consistency bugs, reported with the write trace that produced
them.  See docs/CRASH.md.

* :mod:`repro.crashsim.model` — plans (declarative write workloads +
  acceptable-state rules), host-side simulation, and the reference
  enumeration the hypothesis properties check against;
* :mod:`repro.crashsim.harness` — compiles a plan into a guest
  (writer + crash enumeration + checker) and drives an engine over it;
* :mod:`repro.crashsim.report` — survivor decoding, blame assignment
  and rendering.
"""

from repro.crashsim.harness import (
    crash_asm,
    crash_source,
    run_crashfind,
    survivor_multiset,
)
from repro.crashsim.model import (
    ABSENT,
    CrashPlan,
    SimResult,
    enumerate_crash_images,
    fs_context_for,
    hostfs_for,
    reference_flushed_seqs,
    reference_legal_images,
    replay_table,
    simulate,
)
from repro.crashsim.report import CrashReport, Survivor, decode_survivor

__all__ = [
    "ABSENT",
    "CrashPlan",
    "CrashReport",
    "SimResult",
    "Survivor",
    "crash_asm",
    "crash_source",
    "decode_survivor",
    "enumerate_crash_images",
    "fs_context_for",
    "hostfs_for",
    "reference_flushed_seqs",
    "reference_legal_images",
    "replay_table",
    "run_crashfind",
    "simulate",
    "survivor_multiset",
]
