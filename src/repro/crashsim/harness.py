"""Compile a crash plan into a guest and drive an engine over it.

The generated guest has three phases, all in one program:

1. **Writer** — the plan ops, straight-line, *before* the first guess
   (so the analyzer's BT004 "write inside guess scope" lint stays
   quiet and every branch of the search replays an identical log).
2. **Crash enumeration** — ``sys_guess(K + 1)`` forks over every crash
   point ``c`` (after 0..K log records); ``sys_crash_select(c)``
   prepares the crash and reports the persistence dimensions; a loop
   guesses one option per dimension (fanout from ``sys_crash_opts``)
   and pins it with ``sys_crash_set``; ``sys_crash_commit`` rebases
   the file table onto the chosen crashed image.
3. **Checker** — recovery-invariant rules compiled to open/read and
   unrolled byte compares.  A state matching any rule is legal:
   ``sys_guess_fail`` prunes it.  A state matching no rule survives as
   a solution with exit status 1 — a crash-consistency bug.

Survivor identity is the guess path ``(c, k_1, ..., k_d)``, a pure
function of the plan — which is what lets differential batteries
demand identical survivor multisets from every engine.
"""

from __future__ import annotations

from typing import Optional

from repro.core import sysno
from repro.core.machine import MachineEngine
from repro.core.result import SearchResult
from repro.crashsim.model import (
    ABSENT,
    CrashPlan,
    SimResult,
    hostfs_for,
    simulate,
)
from repro.crashsim.report import CrashReport, decode_survivor
from repro.libos.files import O_RDONLY


def _collect_paths(plan: CrashPlan) -> list[str]:
    paths: list[str] = []

    def add(p: str) -> None:
        if p not in paths:
            paths.append(p)

    for op in plan.ops:
        if op[0] == "open":
            add(op[1])
        elif op[0] == "rename":
            add(op[1])
            add(op[2])
    for rules in (plan.consistent, plan.final):
        for rule in rules:
            for path, _alts in rule:
                add(path)
    return paths


def _checker_buf_size(plan: CrashPlan, sim: SimResult) -> int:
    longest = 0
    for rules in (plan.consistent, plan.final):
        for rule in rules:
            for _path, alts in rule:
                for alt in alts:
                    if alt is not ABSENT:
                        longest = max(longest, len(alt))
    for _path, data in plan.files:
        longest = max(longest, len(data))
    for path in sim.table.paths():
        longest = max(longest, len(sim.table.contents(path) or b""))
    # Headroom so a file longer than every alternative still reads back
    # with its true length and fails the length compare.
    return longest + plan.block_size + 8


def _emit_dnf(lines: list[str], prefix: str, rules: tuple,
              path_label: dict[str, str], chk: int,
              ok_label: str, fail_label: str) -> None:
    """Emit the DNF checker: jump to *ok_label* if any rule matches
    the on-disk state, *fail_label* if none does."""
    for ri, rule in enumerate(rules):
        rl = f"{prefix}_r{ri}"
        next_rule = f"{prefix}_r{ri + 1}" if ri + 1 < len(rules) else fail_label
        lines.append(f"{rl}:")
        for fi, (path, alts) in enumerate(rule):
            fl = f"{rl}_f{fi}"
            lines += [
                f"    mov rax, {sysno.SYS_OPEN}",
                f"    mov rdi, {path_label[path]}",
                f"    mov rsi, {O_RDONLY}",
                "    syscall",
                "    cmp rax, 0",
                f"    jl {fl}_absent",
                "    mov r12, rax",
                f"    mov rax, {sysno.SYS_READ}",
                "    mov rdi, r12",
                "    mov rsi, chkbuf",
                f"    mov rdx, {chk}",
                "    syscall",
                "    mov r11, rax",
                f"    mov rax, {sysno.SYS_CLOSE}",
                "    mov rdi, r12",
                "    syscall",
            ]
            byte_alts = [a for a in alts if a is not ABSENT]
            for ai, alt in enumerate(byte_alts):
                nxt = (f"{fl}_a{ai + 1}" if ai + 1 < len(byte_alts)
                       else f"{fl}_none")
                lines.append(f"{fl}_a{ai}:")
                lines.append(f"    cmp r11, {len(alt)}")
                lines.append(f"    jne {nxt}")
                if alt:
                    lines.append("    mov r10, chkbuf")
                for j, b in enumerate(alt):
                    lines.append(f"    movb r9, [r10 + {j}]")
                    lines.append(f"    cmp r9, {b}")
                    lines.append(f"    jne {nxt}")
                lines.append(f"    jmp {fl}_ok")
            lines.append(f"{fl}_none:")
            lines.append(f"    jmp {next_rule}")
            lines.append(f"{fl}_absent:")
            if any(a is ABSENT for a in alts):
                lines.append(f"    jmp {fl}_ok")
            else:
                lines.append(f"    jmp {next_rule}")
            lines.append(f"{fl}_ok:")
        lines.append(f"    jmp {ok_label}")


def crash_asm(plan: CrashPlan, sim: Optional[SimResult] = None) -> str:
    """Compile *plan* into the crash-search guest program."""
    sim = sim if sim is not None else simulate(plan)
    if not plan.consistent:
        raise ValueError(f"{plan.name}: consistent rules must be non-empty")
    if not plan.final:
        raise ValueError(f"{plan.name}: final rules must be non-empty")

    paths = _collect_paths(plan)
    path_label = {p: f"path_{i}" for i, p in enumerate(paths)}
    chk = _checker_buf_size(plan, sim)

    data_lines = [".data"]
    for p in paths:
        data_lines.append(f'{path_label[p]}: .asciz "{p}"')
    payload_label: dict[int, str] = {}
    for oi, op in enumerate(plan.ops):
        if op[0] == "pwrite":
            label = f"wr_{oi}"
            payload_label[oi] = label
            body = ", ".join(str(b) for b in op[3])
            data_lines.append(f"{label}: .byte {body}")
    data_lines.append(f"chkbuf: .zero {chk}")

    text = [".text", "_start:"]
    # --- phase 1: the writer, straight-line, pre-guess -----------------
    for oi, op in enumerate(plan.ops):
        kind = op[0]
        if kind == "open":
            _, path, flags = op
            text += [
                f"    ; open {path} -> fd",
                f"    mov rax, {sysno.SYS_OPEN}",
                f"    mov rdi, {path_label[path]}",
                f"    mov rsi, {flags}",
                "    syscall",
            ]
        elif kind == "pwrite":
            _, fd, offset, data, tag = op
            text += [
                f"    ; pwrite fd={fd} off={offset} [{tag}]",
                f"    mov rax, {sysno.SYS_LSEEK}",
                f"    mov rdi, {fd}",
                f"    mov rsi, {offset}",
                "    mov rdx, 0",
                "    syscall",
                f"    mov rax, {sysno.SYS_WRITE}",
                f"    mov rdi, {fd}",
                f"    mov rsi, {payload_label[oi]}",
                f"    mov rdx, {len(data)}",
                "    syscall",
            ]
        elif kind == "fsync":
            text += [
                f"    mov rax, {sysno.SYS_FSYNC}",
                f"    mov rdi, {op[1]}",
                "    syscall",
            ]
        elif kind == "sync":
            text += [
                f"    mov rax, {sysno.SYS_SYNC}",
                "    syscall",
            ]
        elif kind == "rename":
            _, src, dst, tag = op
            text += [
                f"    ; rename {src} -> {dst} [{tag}]",
                f"    mov rax, {sysno.SYS_RENAME}",
                f"    mov rdi, {path_label[src]}",
                f"    mov rsi, {path_label[dst]}",
                "    syscall",
            ]
        elif kind == "close":
            text += [
                f"    mov rax, {sysno.SYS_CLOSE}",
                f"    mov rdi, {op[1]}",
                "    syscall",
            ]
        else:  # pragma: no cover - simulate() validated the plan
            raise ValueError(f"unknown op {kind!r}")

    # --- phase 2: crash enumeration ------------------------------------
    text += [
        "    ; fork over crash points: after 0..K issued records",
        f"    mov rax, {sysno.SYS_GUESS}",
        f"    mov rdi, {sim.K + 1}",
        "    syscall",
        "    mov r15, rax",
        "    mov rdi, rax",
        f"    mov rax, {sysno.SYS_CRASH_SELECT}",
        "    syscall",
        "    mov r14, rax",
        "    mov r13, 0",
        "dim_loop:",
        "    cmp r13, r14",
        "    jge enum_done",
        "    mov rdi, r13",
        f"    mov rax, {sysno.SYS_CRASH_OPTS}",
        "    syscall",
        "    mov rdi, rax",
        f"    mov rax, {sysno.SYS_GUESS}",
        "    syscall",
        "    mov rsi, rax",
        "    mov rdi, r13",
        f"    mov rax, {sysno.SYS_CRASH_SET}",
        "    syscall",
        "    inc r13",
        "    jmp dim_loop",
        "enum_done:",
        f"    mov rax, {sysno.SYS_CRASH_COMMIT}",
        "    syscall",
        # At the final crash point the workload finished: the image
        # must satisfy the (stricter) final rules; everywhere else any
        # consistent state is legal.
        f"    cmp r15, {sim.K}",
        "    je final_check",
    ]
    _emit_dnf(text, "cons", plan.consistent, path_label, chk,
              ok_label="state_ok", fail_label="state_bug")
    text.append("final_check:")
    _emit_dnf(text, "fin", plan.final, path_label, chk,
              ok_label="state_ok", fail_label="state_bug")
    text += [
        "state_ok:",
        f"    mov rax, {sysno.SYS_GUESS_FAIL}",
        "    syscall",
        "state_bug:",
        "    mov rdi, 1",
        f"    mov rax, {sysno.SYS_EXIT}",
        "    syscall",
    ]
    return "\n".join(data_lines + text) + "\n"


# ----------------------------------------------------------------------
# Driving an engine
# ----------------------------------------------------------------------


def survivor_multiset(result: SearchResult) -> tuple:
    """Engine-independent identity of a search's surviving states."""
    return tuple(sorted(s.path for s in result.solutions))


def run_crashfind(
    plan: CrashPlan,
    engine: str = "snapshot",
    workers: int = 2,
    strategy: str = "dfs",
    journal: Optional[str] = None,
    resume: bool = False,
    chaos=None,
    task_step_budget: Optional[int] = 25_000,
    batch_size: int = 4,
) -> CrashReport:
    """Search *plan* for crash-consistency bugs on the chosen engine.

    ``engine`` is ``"snapshot"`` (in-process :class:`MachineEngine`) or
    ``"process"`` (:class:`ProcessParallelEngine` with *workers*
    processes; *journal*/*resume*/*chaos* plug in the durability
    machinery for the differential batteries).
    """
    sim = simulate(plan)
    asm = crash_asm(plan, sim)
    hostfs = hostfs_for(plan)
    if engine == "snapshot":
        eng = MachineEngine(strategy=strategy, hostfs=hostfs)
        result = eng.run(asm)
        engine_desc = "snapshot"
    elif engine == "process":
        from repro.core.cluster import ProcessParallelEngine

        eng = ProcessParallelEngine(
            workers=workers,
            strategy=strategy,
            batch_size=batch_size,
            task_step_budget=task_step_budget,
            journal=journal,
            resume=resume,
            chaos=chaos,
            hostfs=hostfs,
        )
        result = eng.run(asm)
        engine_desc = f"process x{workers}"
    else:
        raise ValueError(f"unknown engine {engine!r}")

    survivors = [decode_survivor(sim, s.path) for s in result.solutions]
    survivors.sort(key=lambda s: s.path)
    return CrashReport(
        plan_name=plan.name,
        engine=engine_desc,
        expect_bug=plan.expect_bug,
        expected_blame=plan.expected_blame,
        crash_points=sim.K + 1,
        survivors=survivors,
        stats={"evaluations": result.stats.evaluations,
               "solutions": len(result.solutions),
               "exhausted": result.exhausted},
    )
