"""Compile a crash plan into a guest and drive an engine over it.

The generated guest has three phases, all in one program:

1. **Writer** — the plan ops, straight-line, *before* the first guess
   (so the analyzer's BT004 "write inside guess scope" lint stays
   quiet and every branch of the search replays an identical log).
2. **Crash enumeration** — ``sys_guess(K + 1)`` forks over every crash
   point ``c`` (after 0..K log records); ``sys_crash_select(c)``
   prepares the crash and reports the persistence dimensions; a loop
   guesses one option per dimension (fanout from ``sys_crash_opts``)
   and pins it with ``sys_crash_set``; ``sys_crash_commit`` rebases
   the file table onto the chosen crashed image.
3. **Checker** — recovery-invariant rules compiled to open/read and
   unrolled byte compares.  A state matching any rule is legal:
   ``sys_guess_fail`` prunes it.  A state matching no rule survives as
   a solution with exit status 1 — a crash-consistency bug.

Survivor identity is the guess path ``(c, k_1, ..., k_d)``, a pure
function of the plan — which is what lets differential batteries
demand identical survivor multisets from every engine.

With ``prune=True``, :func:`run_crashfind` first runs the static
analyzer over the guest: when the file-effect domain's predicted
oplog matches the dynamic log exactly, crash points the structural
argument in :mod:`repro.analysis.crashprune` proves redundant are
compiled out of the guest (rejected right after the first guess), and
their survivors are synthesized back from the explored representative
points — the report's survivor multiset is identical either way.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.core import sysno
from repro.core.machine import MachineEngine
from repro.core.result import SearchResult
from repro.crashsim.model import (
    ABSENT,
    CrashPlan,
    SimResult,
    fs_context_for,
    hostfs_for,
    image_matches,
    simulate,
)
from repro.crashsim.report import CrashReport, decode_survivor
from repro.libos.files import O_RDONLY


def _collect_paths(plan: CrashPlan) -> list[str]:
    paths: list[str] = []

    def add(p: str) -> None:
        if p not in paths:
            paths.append(p)

    for op in plan.ops:
        if op[0] == "open":
            add(op[1])
        elif op[0] == "rename":
            add(op[1])
            add(op[2])
    for rules in (plan.consistent, plan.final):
        for rule in rules:
            for path, _alts in rule:
                add(path)
    return paths


def _checker_buf_size(plan: CrashPlan, sim: SimResult) -> int:
    longest = 0
    for rules in (plan.consistent, plan.final):
        for rule in rules:
            for _path, alts in rule:
                for alt in alts:
                    if alt is not ABSENT:
                        longest = max(longest, len(alt))
    for _path, data in plan.files:
        longest = max(longest, len(data))
    for path in sim.table.paths():
        longest = max(longest, len(sim.table.contents(path) or b""))
    # Headroom so a file longer than every alternative still reads back
    # with its true length and fails the length compare.
    return longest + plan.block_size + 8


def _emit_dnf(lines: list[str], prefix: str, rules: tuple,
              path_label: dict[str, str], chk: int,
              ok_label: str, fail_label: str) -> None:
    """Emit the DNF checker: jump to *ok_label* if any rule matches
    the on-disk state, *fail_label* if none does."""
    for ri, rule in enumerate(rules):
        rl = f"{prefix}_r{ri}"
        next_rule = f"{prefix}_r{ri + 1}" if ri + 1 < len(rules) else fail_label
        lines.append(f"{rl}:")
        for fi, (path, alts) in enumerate(rule):
            fl = f"{rl}_f{fi}"
            lines += [
                f"    mov rax, {sysno.SYS_OPEN}",
                f"    mov rdi, {path_label[path]}",
                f"    mov rsi, {O_RDONLY}",
                "    syscall",
                "    cmp rax, 0",
                f"    jl {fl}_absent",
                "    mov r12, rax",
                f"    mov rax, {sysno.SYS_READ}",
                "    mov rdi, r12",
                "    mov rsi, chkbuf",
                f"    mov rdx, {chk}",
                "    syscall",
                "    mov r11, rax",
                f"    mov rax, {sysno.SYS_CLOSE}",
                "    mov rdi, r12",
                "    syscall",
            ]
            byte_alts = [a for a in alts if a is not ABSENT]
            for ai, alt in enumerate(byte_alts):
                nxt = (f"{fl}_a{ai + 1}" if ai + 1 < len(byte_alts)
                       else f"{fl}_none")
                lines.append(f"{fl}_a{ai}:")
                lines.append(f"    cmp r11, {len(alt)}")
                lines.append(f"    jne {nxt}")
                if alt:
                    lines.append("    mov r10, chkbuf")
                for j, b in enumerate(alt):
                    lines.append(f"    movb r9, [r10 + {j}]")
                    lines.append(f"    cmp r9, {b}")
                    lines.append(f"    jne {nxt}")
                lines.append(f"    jmp {fl}_ok")
            lines.append(f"{fl}_none:")
            lines.append(f"    jmp {next_rule}")
            lines.append(f"{fl}_absent:")
            if any(a is ABSENT for a in alts):
                lines.append(f"    jmp {fl}_ok")
            else:
                lines.append(f"    jmp {next_rule}")
            lines.append(f"{fl}_ok:")
        lines.append(f"    jmp {ok_label}")


def crash_source(
    plan: CrashPlan,
    sim: Optional[SimResult] = None,
    pruned_points: Sequence[int] = (),
) -> tuple[str, dict[str, int]]:
    """Compile *plan* into the crash-search guest program.

    Returns ``(source, tag_lines)`` where ``tag_lines`` maps each plan
    tag (and ``create:<path>`` for creating opens) to the 1-based
    source line of the syscall that issues its records — the anchor
    the FS lint tests compare findings against.  ``pruned_points`` are
    crash points the guest rejects immediately after the first guess
    (see ``repro.analysis.crashprune``).
    """
    sim = sim if sim is not None else simulate(plan)
    if not plan.consistent:
        raise ValueError(f"{plan.name}: consistent rules must be non-empty")
    if not plan.final:
        raise ValueError(f"{plan.name}: final rules must be non-empty")
    for point in pruned_points:
        if not 0 <= point <= sim.K:
            raise ValueError(f"{plan.name}: pruned point {point} out of "
                             f"range 0..{sim.K}")

    paths = _collect_paths(plan)
    path_label = {p: f"path_{i}" for i, p in enumerate(paths)}
    chk = _checker_buf_size(plan, sim)

    data_lines = [".data"]
    for p in paths:
        data_lines.append(f'{path_label[p]}: .asciz "{p}"')
    payload_label: dict[int, str] = {}
    for oi, op in enumerate(plan.ops):
        if op[0] == "pwrite":
            label = f"wr_{oi}"
            payload_label[oi] = label
            body = ", ".join(str(b) for b in op[3])
            data_lines.append(f"{label}: .byte {body}")
    data_lines.append(f"chkbuf: .zero {chk}")

    tag_lines: dict[str, int] = {}

    text = [".text", "_start:"]

    def _mark(tag: Optional[str]) -> None:
        # The line just appended is the op's effect syscall.
        if tag is not None:
            tag_lines.setdefault(tag, len(data_lines) + len(text))

    # --- phase 1: the writer, straight-line, pre-guess -----------------
    for oi, op in enumerate(plan.ops):
        kind = op[0]
        if kind == "open":
            _, path, flags = op
            text += [
                f"    ; open {path} -> fd",
                f"    mov rax, {sysno.SYS_OPEN}",
                f"    mov rdi, {path_label[path]}",
                f"    mov rsi, {flags}",
                "    syscall",
            ]
            _mark(f"create:{path}")
        elif kind == "pwrite":
            _, fd, offset, data, tag = op
            text += [
                f"    ; pwrite fd={fd} off={offset} [{tag}]",
                f"    mov rax, {sysno.SYS_LSEEK}",
                f"    mov rdi, {fd}",
                f"    mov rsi, {offset}",
                "    mov rdx, 0",
                "    syscall",
                f"    mov rax, {sysno.SYS_WRITE}",
                f"    mov rdi, {fd}",
                f"    mov rsi, {payload_label[oi]}",
                f"    mov rdx, {len(data)}",
                "    syscall",
            ]
            _mark(tag)
        elif kind == "fsync":
            text += [
                f"    mov rax, {sysno.SYS_FSYNC}",
                f"    mov rdi, {op[1]}",
                "    syscall",
            ]
        elif kind == "sync":
            text += [
                f"    mov rax, {sysno.SYS_SYNC}",
                "    syscall",
            ]
        elif kind == "rename":
            _, src, dst, tag = op
            text += [
                f"    ; rename {src} -> {dst} [{tag}]",
                f"    mov rax, {sysno.SYS_RENAME}",
                f"    mov rdi, {path_label[src]}",
                f"    mov rsi, {path_label[dst]}",
                "    syscall",
            ]
            _mark(tag)
        elif kind == "close":
            text += [
                f"    mov rax, {sysno.SYS_CLOSE}",
                f"    mov rdi, {op[1]}",
                "    syscall",
            ]
        else:  # pragma: no cover - simulate() validated the plan
            raise ValueError(f"unknown op {kind!r}")

    # --- phase 2: crash enumeration ------------------------------------
    text += [
        "    ; fork over crash points: after 0..K issued records",
        f"    mov rax, {sysno.SYS_GUESS}",
        f"    mov rdi, {sim.K + 1}",
        "    syscall",
        "    mov r15, rax",
    ]
    for point in sorted(pruned_points):
        # Statically redundant crash point: kill the branch before the
        # engine forks a single snapshot for its dimension product.
        text += [
            f"    cmp r15, {point}",
            "    je point_pruned",
        ]
    text += [
        "    mov rdi, r15",
        f"    mov rax, {sysno.SYS_CRASH_SELECT}",
        "    syscall",
        "    mov r14, rax",
        "    mov r13, 0",
        "dim_loop:",
        "    cmp r13, r14",
        "    jge enum_done",
        "    mov rdi, r13",
        f"    mov rax, {sysno.SYS_CRASH_OPTS}",
        "    syscall",
        "    mov rdi, rax",
        f"    mov rax, {sysno.SYS_GUESS}",
        "    syscall",
        "    mov rsi, rax",
        "    mov rdi, r13",
        f"    mov rax, {sysno.SYS_CRASH_SET}",
        "    syscall",
        "    inc r13",
        "    jmp dim_loop",
        "enum_done:",
        f"    mov rax, {sysno.SYS_CRASH_COMMIT}",
        "    syscall",
        # At the final crash point the workload finished: the image
        # must satisfy the (stricter) final rules; everywhere else any
        # consistent state is legal.
        f"    cmp r15, {sim.K}",
        "    je final_check",
    ]
    _emit_dnf(text, "cons", plan.consistent, path_label, chk,
              ok_label="state_ok", fail_label="state_bug")
    text.append("final_check:")
    _emit_dnf(text, "fin", plan.final, path_label, chk,
              ok_label="state_ok", fail_label="state_bug")
    text += [
        "state_ok:",
        f"    mov rax, {sysno.SYS_GUESS_FAIL}",
        "    syscall",
        "state_bug:",
        "    mov rdi, 1",
        f"    mov rax, {sysno.SYS_EXIT}",
        "    syscall",
    ]
    if pruned_points:
        text += [
            "point_pruned:",
            f"    mov rax, {sysno.SYS_GUESS_FAIL}",
            "    syscall",
        ]
    return "\n".join(data_lines + text) + "\n", tag_lines


def crash_asm(
    plan: CrashPlan,
    sim: Optional[SimResult] = None,
    pruned_points: Sequence[int] = (),
) -> str:
    """Compile *plan* into the crash-search guest program (source only)."""
    return crash_source(plan, sim, pruned_points)[0]


# ----------------------------------------------------------------------
# Driving an engine
# ----------------------------------------------------------------------


def survivor_multiset(result: SearchResult) -> tuple:
    """Engine-independent identity of a search's surviving states."""
    return tuple(sorted(s.path for s in result.solutions))


def _plan_pruned_points(plan: CrashPlan, sim: SimResult):
    """Static pruning plan for *plan*, or None when the analysis
    cannot vouch for it.

    The gate is exact: the file-effect domain must have predicted the
    writer oplog record-for-record equal to the dynamic log.  Any
    mismatch (or no prediction at all) declines pruning — correctness
    never depends on the static pass being right, only the speedup
    does.
    """
    from repro.analysis import analyze
    from repro.analysis.crashprune import plan_pruning
    from repro.cpu.assembler import assemble

    program = assemble(crash_asm(plan, sim))
    report = analyze(program, fs_context=fs_context_for(plan))
    summary = report.fs
    if summary is None or summary.predicted_log is None:
        return None
    if list(summary.predicted_log) != list(sim.log):
        return None
    prune_plan = plan_pruning(tuple(sim.log))
    return prune_plan if prune_plan.pruned else None


def _synthesize_survivors(
    sim: SimResult, plan: CrashPlan, prune_plan,
    explored_paths: Iterable[tuple],
) -> list:
    """Recover the pruned points' survivors from the explored ones.

    Each synthesized path is decoded through the same
    :func:`decode_survivor` as a real one (fresh fork, real
    ``sys_crash_*`` replay), then cross-checked against the plan's
    intermediate rules: by construction its image equals the source
    survivor's, so it must violate them too — anything else means the
    static mirror diverged from the file layer, and we refuse to
    report rather than report wrongly.
    """
    from repro.analysis.crashprune import synthesize_choices

    by_point: dict[int, list[tuple]] = {}
    for path in explored_paths:
        by_point.setdefault(path[0], []).append(path)
    out = []
    for point in prune_plan.pruned:
        rep = prune_plan.representative(point)
        for path in by_point.get(rep, ()):
            choices = synthesize_choices(prune_plan, point, path[1:])
            if choices is None:
                continue
            survivor = decode_survivor(sim, (point, *choices))
            if image_matches(survivor.image, plan.consistent):
                raise RuntimeError(
                    f"{plan.name}: synthesized survivor at point {point} "
                    f"(from {path}) satisfies the consistency rules; "
                    "static pruning model diverged from the file layer"
                )
            out.append(replace(survivor, synthesized=True))
    return out


def run_crashfind(
    plan: CrashPlan,
    engine: str = "snapshot",
    workers: int = 2,
    strategy: str = "dfs",
    journal: Optional[str] = None,
    resume: bool = False,
    chaos=None,
    task_step_budget: Optional[int] = 25_000,
    batch_size: int = 4,
    prune: bool = False,
) -> CrashReport:
    """Search *plan* for crash-consistency bugs on the chosen engine.

    ``engine`` is ``"snapshot"`` (in-process :class:`MachineEngine`) or
    ``"process"`` (:class:`ProcessParallelEngine` with *workers*
    processes; *journal*/*resume*/*chaos* plug in the durability
    machinery for the differential batteries).  ``prune=True`` enables
    analysis-guided crash-point pruning; the survivor multiset is
    identical to an unpruned run (statically-skipped points get their
    survivors synthesized back from the explored representatives).
    """
    sim = simulate(plan)
    prune_plan = _plan_pruned_points(plan, sim) if prune else None
    asm = crash_asm(
        plan, sim,
        pruned_points=prune_plan.pruned if prune_plan is not None else (),
    )
    hostfs = hostfs_for(plan)
    if engine == "snapshot":
        eng = MachineEngine(strategy=strategy, hostfs=hostfs)
        result = eng.run(asm)
        engine_desc = "snapshot"
    elif engine == "process":
        from repro.core.cluster import ProcessParallelEngine

        eng = ProcessParallelEngine(
            workers=workers,
            strategy=strategy,
            batch_size=batch_size,
            task_step_budget=task_step_budget,
            journal=journal,
            resume=resume,
            chaos=chaos,
            hostfs=hostfs,
        )
        result = eng.run(asm)
        engine_desc = f"process x{workers}"
    else:
        raise ValueError(f"unknown engine {engine!r}")

    survivors = [decode_survivor(sim, s.path) for s in result.solutions]
    stats: dict = {"evaluations": result.stats.evaluations,
                   "solutions": len(result.solutions),
                   "exhausted": result.exhausted}
    if prune:
        if prune_plan is not None:
            survivors.extend(_synthesize_survivors(
                sim, plan, prune_plan, (s.path for s in result.solutions)
            ))
            stats.update({
                "pruned": True,
                "points_total": sim.K + 1,
                "points_pruned": len(prune_plan.pruned),
                "images_total": prune_plan.images_total,
                "images_explored": prune_plan.images_explored,
            })
        else:
            stats.update({"pruned": False,
                          "points_total": sim.K + 1,
                          "points_pruned": 0})
    survivors.sort(key=lambda s: s.path)
    return CrashReport(
        plan_name=plan.name,
        engine=engine_desc,
        expect_bug=plan.expect_bug,
        expected_blame=plan.expected_blame,
        crash_points=sim.K + 1,
        survivors=survivors,
        stats=stats,
    )
