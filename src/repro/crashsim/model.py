"""Host-side crash-consistency model: plans, simulation, reference.

A :class:`CrashPlan` is a declarative description of a write workload
(the *plan ops*) plus the acceptable on-disk states after a crash (DNF
*rules*).  The harness compiles a plan to a guest program; this module
runs the same workload host-side against a real :class:`FileTable` so
survivors coming back from the search can be decoded into records,
blame tags and images.

It also carries a deliberately *independent* implementation of the
persistence model — :func:`reference_flushed_seqs` walks barriers
forward (the file layer retires pending records instead), and
:func:`reference_legal_images` enumerates crash images by brute-force
subset generation with an explicit prefix-closure legality check (the
file layer builds a product of per-dimension options instead).  The
hypothesis properties in tests/crashsim/test_properties.py pin the two
implementations to each other; a divergence means one of them is
wrong about what a crash can do.

Plan op tuples::

    ("open",   path, flags)            # fds are assigned 3, 4, ... in
    ("pwrite", fd, offset, data, tag)  # open order; plans reference
    ("fsync",  fd)                     # them by those numbers
    ("sync",)
    ("rename", src, dst, tag)
    ("close",  fd)

Rule format (shared with the generated guest checker)::

    rules = (rule, ...)                # any rule matching => state OK
    rule  = ((path, alternatives), ...)# every file constraint must hold
    alternatives = (bytes | ABSENT, ...)  # file equals one alternative
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.libos.files import O_CREAT, O_RDWR, FileTable, HostFS


class _Absent:
    """Sentinel alternative: the file does not exist in the image."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ABSENT"


ABSENT = _Absent()


@dataclass(frozen=True)
class CrashPlan:
    """A crash-consistency test case: workload + acceptable states.

    ``consistent`` rules must admit every *legal intermediate* image
    (the invariant recovery relies on); ``final`` rules additionally
    pin the post-workload image (checked only at the last crash point,
    where nothing may be lost any more).  ``expect_bug`` declares
    whether the search should find survivors, and ``expected_blame``
    names at least one write tag every detected bug must blame.
    """

    name: str
    files: tuple[tuple[str, bytes], ...]
    ops: tuple[tuple, ...]
    consistent: tuple
    final: tuple
    expect_bug: bool
    expected_blame: frozenset[str] = field(default_factory=frozenset)
    block_size: int = 8
    description: str = ""
    #: FS lint ids the static analyzer must raise on this plan's guest
    #: (empty for FS-clean plans); asserted by tests and the CI sweep.
    expected_fs: frozenset[str] = field(default_factory=frozenset)


def hostfs_for(plan: CrashPlan) -> HostFS:
    return HostFS(dict(plan.files), block_size=plan.block_size)


def fs_context_for(plan: CrashPlan):
    """Build the static analyzer's FS context from a crash plan.

    Hands the file-effect domain exactly what the dynamic layer will
    see: block size, the base files (which pin inode numbering), and
    the final-state rules with :data:`ABSENT` translated to the
    analyzer's ``None`` spelling.
    """
    from repro.analysis.fsdomain import FsContext

    rules = tuple(
        tuple(
            (path, tuple(None if alt is ABSENT else alt for alt in alts))
            for path, alts in rule
        )
        for rule in plan.final
    )
    return FsContext(
        block_size=plan.block_size,
        base_files=tuple(sorted(plan.files)),
        final_rules=rules,
    )


@dataclass
class SimResult:
    """Host-side replay of a plan's writer phase.

    ``table`` is a live :class:`FileTable` frozen at the end of the
    writer phase — fork it before mutating.  ``tags`` maps record seq
    to the plan tag that produced it; ``K`` (== ``len(log)``) is the
    final crash point, so the search guesses over ``K + 1`` points.
    """

    plan: CrashPlan
    table: FileTable
    log: tuple
    tags: dict[int, str]
    K: int


def replay_table(plan: CrashPlan) -> tuple[FileTable, dict[int, str]]:
    """Run the plan's ops against a fresh host-side FileTable.

    Returns the table plus the seq->tag map.  Raises if an op fails or
    an ``open`` returns a different fd than the plan assumed — that is
    a plan-authoring error, not a crash-consistency finding.
    """
    table = FileTable(hostfs_for(plan))
    tags: dict[int, str] = {}
    next_fd = 3

    def _tag_new(before: int, tag: Optional[str]) -> None:
        if tag is None:
            return
        for rec in table.oplog[before:]:
            tags[rec[1]] = tag

    for op in plan.ops:
        before = len(table.oplog)
        kind = op[0]
        if kind == "open":
            _, path, flags = op
            fd = table.open(path, flags)
            if fd != next_fd:
                raise ValueError(
                    f"{plan.name}: open({path!r}) returned fd {fd}, "
                    f"plan expected {next_fd}"
                )
            next_fd += 1
            _tag_new(before, f"create:{path}")
        elif kind == "pwrite":
            _, fd, offset, data, tag = op
            if table.lseek(fd, offset, 0) != offset:
                raise ValueError(f"{plan.name}: lseek({fd}, {offset}) failed")
            ret = table.write(fd, data)
            if ret != len(data):
                raise ValueError(f"{plan.name}: write({fd}) -> {ret}")
            _tag_new(before, tag)
        elif kind == "fsync":
            if table.fsync(op[1]) < 0:
                raise ValueError(f"{plan.name}: fsync({op[1]}) failed")
        elif kind == "sync":
            table.sync()
        elif kind == "rename":
            _, src, dst, tag = op
            if table.rename(src, dst) != 0:
                raise ValueError(f"{plan.name}: rename({src!r}) failed")
            _tag_new(before, tag)
        elif kind == "close":
            if table.close(op[1]) != 0:
                raise ValueError(f"{plan.name}: close({op[1]}) failed")
        else:
            raise ValueError(f"{plan.name}: unknown op {kind!r}")
    return table, tags


def simulate(plan: CrashPlan) -> SimResult:
    """Replay the writer phase host-side and package the result."""
    table, tags = replay_table(plan)
    log = table.oplog
    return SimResult(plan=plan, table=table, log=log, tags=tags, K=len(log))


# ----------------------------------------------------------------------
# Rule evaluation (host-side mirror of the generated guest checker)
# ----------------------------------------------------------------------


def image_matches(image: dict[str, bytes], rules: tuple) -> bool:
    """True if *image* satisfies any rule (the DNF the checker runs)."""
    for rule in rules:
        for path, alts in rule:
            present = path in image
            ok = False
            for alt in alts:
                if alt is ABSENT:
                    ok = ok or not present
                else:
                    ok = ok or (present and image[path] == alt)
            if not ok:
                break
        else:
            return True
    return False


# ----------------------------------------------------------------------
# Reference enumeration (independent of the file layer's)
# ----------------------------------------------------------------------


def reference_flushed_seqs(log: Iterable[tuple], upto: int) -> set[int]:
    """Seqs made durable by barriers within ``log[:upto]``.

    Forward scan: each ``fsync`` marks every earlier data record of its
    inode (and the inode's creation record) durable; each ``sync``
    marks everything earlier durable.  Quadratic and obvious — the
    point is to be a different shape than the file layer's
    retire-as-you-go replay.
    """
    window = list(log)[:upto]
    flushed: set[int] = set()
    for i, rec in enumerate(window):
        if rec[0] == "fsync":
            ino = rec[2]
            for prior in window[:i]:
                if prior[0] == "write" and prior[2] == ino:
                    flushed.add(prior[1])
                elif prior[0] == "create" and prior[3] == ino:
                    flushed.add(prior[1])
        elif rec[0] == "sync":
            for prior in window[:i]:
                if prior[0] in ("write", "create", "rename"):
                    flushed.add(prior[1])
    return flushed


def _base_state(base_files: dict[str, bytes]) -> tuple[dict, dict]:
    """The initial durable state, numbering inodes exactly like
    :class:`FileTable` does (sorted path order, starting at 1)."""
    ns: dict[str, int] = {}
    data: dict[int, bytearray] = {}
    for i, path in enumerate(sorted(base_files)):
        ns[path] = i + 1
        data[i + 1] = bytearray(base_files[path])
    return ns, data


def _apply_records(ns: dict, data: dict, recs, block_size: int) -> None:
    for rec in sorted(recs, key=lambda r: r[1]):
        kind = rec[0]
        if kind == "write":
            _, _seq, ino, block, off, payload = rec
            buf = data.setdefault(ino, bytearray())
            start = block * block_size + off
            end = start + len(payload)
            if end > len(buf):
                buf.extend(bytes(end - len(buf)))
            buf[start:end] = payload
        elif kind == "create":
            ns[rec[2]] = rec[3]
            data.setdefault(rec[3], bytearray())
        elif kind == "rename":
            _, _seq, src, dst, ino = rec
            ns.pop(src, None)
            ns[dst] = ino


def _freeze(ns: dict, data: dict) -> frozenset:
    return frozenset(
        (path, bytes(data.get(ino, b""))) for path, ino in ns.items()
    )


def reference_legal_images(
    log: Iterable[tuple],
    upto: int,
    base_files: dict[str, bytes],
    block_size: int,
) -> set[frozenset]:
    """Every legal on-disk image after a crash at log index *upto*,
    by brute force.

    An image is the flushed state plus any subset S of the at-risk
    records such that, for every ``(ino, block)``, the data records of
    that block in S form a seq-prefix of the block's at-risk sequence
    (the cache writes back whole blocks, so a later write to a block
    cannot land without the earlier ones).  Namespace records are
    individually optional.  Exponential in the at-risk count — only
    usable for the small logs the property tests generate, which is
    the point: it is the specification, not the implementation.
    """
    window = list(log)[:upto]
    effects = [r for r in window if r[0] in ("write", "create", "rename")]
    flushed = reference_flushed_seqs(window, upto)
    at_risk = [r for r in effects if r[1] not in flushed]

    per_block: dict[tuple, list[int]] = {}
    for rec in at_risk:
        if rec[0] == "write":
            per_block.setdefault((rec[2], rec[3]), []).append(rec[1])

    def legal(subset_seqs: set[int]) -> bool:
        for seqs in per_block.values():
            taken = [s for s in seqs if s in subset_seqs]
            if taken != seqs[: len(taken)]:
                return False
        return True

    images: set[frozenset] = set()
    for bits in itertools.product((False, True), repeat=len(at_risk)):
        subset = [r for r, keep in zip(at_risk, bits) if keep]
        if not legal({r[1] for r in subset}):
            continue
        ns, data = _base_state(base_files)
        kept = [r for r in effects if r[1] in flushed] + subset
        _apply_records(ns, data, kept, block_size)
        images.add(_freeze(ns, data))
    return images


def enumerate_crash_images(table: FileTable, point: int) -> set[frozenset]:
    """Every crash image the *file layer* enumerates at *point*, by
    driving the ``sys_crash_*`` surface over forks of *table* exactly
    like the generated guest does."""
    probe = table.fork_cow()
    ndims = probe.crash_select(point)
    if ndims < 0:
        raise ValueError(f"crash_select({point}) -> {ndims}")
    option_counts = [probe.crash_opts(i) for i in range(ndims)]
    probe.free()
    images: set[frozenset] = set()
    for choices in itertools.product(*(range(m) for m in option_counts)):
        leaf = table.fork_cow()
        assert leaf.crash_select(point) == ndims
        for i, k in enumerate(choices):
            assert leaf.crash_set(i, k) == 0
        leaf.crash_commit()
        images.add(frozenset(
            (path, leaf.contents(path)) for path in leaf.paths()
        ))
        leaf.free()
    return images
