"""Survivor decoding, blame assignment and report rendering.

The search returns surviving leaves as bare guess paths
``(c, k_1, ..., k_d)`` — the crash point plus one persistence choice
per dimension.  This module replays that path against the host-side
:class:`~repro.libos.files.FileTable` to recover what the engine
cannot know: which write records the crash image lost, which plan
operations (by tag) produced them, and what the resulting on-disk
image looks like.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.crashsim.model import SimResult


@dataclass
class Survivor:
    """One crash image that defeated the consistency checker."""

    #: The engine's guess path: (crash_point, choice per dimension).
    path: tuple[int, ...]
    crash_point: int
    #: Persistence choice per dimension, in dimension order.
    choices: tuple[int, ...]
    #: At-risk records the image lost, as (seq, tag, description).
    lost: tuple[tuple[int, Optional[str], str], ...]
    #: At-risk records the image kept, same shape.
    kept: tuple[tuple[int, Optional[str], str], ...]
    #: Plan tags held responsible for the inconsistency.
    blame: frozenset[str]
    #: The crashed on-disk image (path -> contents).
    image: dict[str, bytes]
    #: True when this survivor was recovered from a pruned crash point
    #: (analysis-guided pruning) rather than found by the engine; the
    #: decoded content is identical either way.
    synthesized: bool = False

    def as_dict(self) -> dict:
        return {
            "path": list(self.path),
            "crash_point": self.crash_point,
            "choices": list(self.choices),
            "lost": [[seq, tag, desc] for seq, tag, desc in self.lost],
            "kept": [[seq, tag, desc] for seq, tag, desc in self.kept],
            "blame": sorted(self.blame),
            "image": {p: data.hex() for p, data in sorted(self.image.items())},
            "synthesized": self.synthesized,
        }


def _describe(rec: tuple) -> str:
    kind = rec[0]
    if kind == "write":
        return f"write ino={rec[2]} block={rec[3]} off={rec[4]} {len(rec[5])}B"
    if kind == "create":
        return f"create {rec[2]}"
    if kind == "rename":
        return f"rename {rec[2]} -> {rec[3]}"
    return kind  # pragma: no cover - barriers are never at risk


def decode_survivor(sim: SimResult, path: tuple[int, ...]) -> Survivor:
    """Replay a surviving guess path into a full :class:`Survivor`.

    Blame: the tags of the at-risk records the image *lost* (or kept
    only a prefix of) — losing them is what broke the invariant.  When
    nothing was lost the image is the most-complete state at that
    crash point and is *still* inconsistent, so the workload wrote a
    bad durable state outright: blame falls on the last tagged record
    the image absorbed (e.g. a corrupt metadata commit).
    """
    if not path:
        raise ValueError("survivor path is empty")
    point = path[0]
    table = sim.table.fork_cow()
    try:
        ndims = table.crash_select(point)
        if ndims < 0:
            raise ValueError(f"crash_select({point}) -> {ndims}")
        choices = tuple(path[1:])
        if len(choices) != ndims:
            raise ValueError(
                f"path {path} has {len(choices)} choices for {ndims} dims"
            )
        dims = table.crash_dims()
        by_seq = {rec[1]: rec for rec in sim.log}
        lost: list[tuple[int, Optional[str], str]] = []
        kept: list[tuple[int, Optional[str], str]] = []
        for dim, k in zip(dims, choices):
            if dim["kind"] == "block":
                seqs = dim["seqs"]
                kept_seqs, lost_seqs = seqs[:k], seqs[k:]
            else:
                seqs = [dim["seq"]]
                kept_seqs, lost_seqs = (seqs, []) if k else ([], seqs)
            for s in kept_seqs:
                kept.append((s, sim.tags.get(s), _describe(by_seq[s])))
            for s in lost_seqs:
                lost.append((s, sim.tags.get(s), _describe(by_seq[s])))
        for i, k in enumerate(choices):
            table.crash_set(i, k)
        table.crash_commit()
        image = {p: table.contents(p) for p in table.paths()}
    finally:
        table.free()
    blame = frozenset(tag for _seq, tag, _d in lost if tag)
    if not blame:
        for rec in reversed(list(sim.log)[:point]):
            tag = sim.tags.get(rec[1])
            if tag:
                blame = frozenset((tag,))
                break
    lost.sort(key=lambda e: e[0])
    kept.sort(key=lambda e: e[0])
    return Survivor(
        path=tuple(path),
        crash_point=point,
        choices=choices,
        lost=tuple(lost),
        kept=tuple(kept),
        blame=blame,
        image=image,
    )


@dataclass
class CrashReport:
    """The outcome of one crash-consistency search over a plan."""

    plan_name: str
    engine: str
    expect_bug: bool
    expected_blame: frozenset[str]
    #: Number of crash points searched (log length + 1).
    crash_points: int
    survivors: list[Survivor] = field(default_factory=list)
    #: Engine counters (evaluations, snapshots, ...), for the CLI.
    stats: dict = field(default_factory=dict)

    @property
    def found_bug(self) -> bool:
        return bool(self.survivors)

    @property
    def blame_matches(self) -> bool:
        """At least one survivor blames every expected tag."""
        if not self.expected_blame:
            return True
        return any(self.expected_blame <= s.blame for s in self.survivors)

    @property
    def verdict_ok(self) -> bool:
        """Did the search behave as the plan declared it should?"""
        if self.expect_bug:
            return self.found_bug and self.blame_matches
        return not self.found_bug

    def survivor_multiset(self) -> tuple:
        """Engine-independent identity of the surviving states: the
        sorted guess paths (differential batteries compare these)."""
        return tuple(sorted(s.path for s in self.survivors))

    def as_dict(self) -> dict:
        return {
            "plan": self.plan_name,
            "engine": self.engine,
            "expect_bug": self.expect_bug,
            "expected_blame": sorted(self.expected_blame),
            "crash_points": self.crash_points,
            "found_bug": self.found_bug,
            "verdict_ok": self.verdict_ok,
            "survivors": [s.as_dict() for s in self.survivors],
            "stats": self.stats,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [
            f"plan: {self.plan_name}   engine: {self.engine}",
            f"crash points searched: {self.crash_points}",
            f"expected: {'bug' if self.expect_bug else 'clean'}"
            + (f" blaming {sorted(self.expected_blame)}"
               if self.expected_blame else ""),
            f"survivors: {len(self.survivors)}",
        ]
        for s in self.survivors:
            lines.append(
                f"  crash @{s.crash_point} choices={list(s.choices)} "
                f"blame={sorted(s.blame)}"
                + (" (synthesized)" if s.synthesized else "")
            )
            for seq, tag, desc in s.lost:
                lines.append(f"    lost  seq={seq} [{tag or '-'}] {desc}")
            for seq, tag, desc in s.kept:
                lines.append(f"    kept  seq={seq} [{tag or '-'}] {desc}")
            for p, data in sorted(s.image.items()):
                preview = data[:32].hex() + ("..." if len(data) > 32 else "")
                lines.append(f"    image {p} = {len(data)}B {preview}")
        lines.append("verdict: " + ("OK" if self.verdict_ok else "MISMATCH"))
        return "\n".join(lines)
