"""CDCL SAT solver.

A conflict-driven clause-learning solver in the MiniSat tradition:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning and backjumping;
* VSIDS variable activity with exponential decay and phase saving;
* geometric restarts and learned-clause database reduction;
* assumption-based solving, and :meth:`Solver.push` / :meth:`Solver.pop`
  built on selector literals (clauses added inside a push carry the
  negated selector, so popping deactivates them *and* every learned
  clause derived from them — the standard sound incremental scheme);
* :meth:`Solver.clone` -- an O(state) logical copy used by the
  multi-path solver service (§3.2) to branch a solved problem.

The solver is deterministic for a given seed and clause order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class SolverStats:
    """Work counters for one solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0
    learned_literals: int = 0
    restarts: int = 0
    db_reductions: int = 0
    clones: int = 0


@dataclass
class SolverResult:
    """Outcome of one ``solve`` call."""

    sat: Optional[bool]  # True / False / None (budget exhausted)
    model: dict[int, bool] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.sat is True


class Solver:
    """A CDCL solver over integer literals (DIMACS convention)."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.learned: list[list[int]] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[list[int]]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        self._cla_activity: dict[int, float] = {}
        self._phase: dict[int, bool] = {}
        self._units: list[int] = []  # level-0 facts from 1-literal clauses
        self._selectors: list[int] = []
        self.stats = SolverStats()
        self._max_learned = 4000

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def _grow_to(self, var: int) -> None:
        if var > self.num_vars:
            self.num_vars = var

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a problem clause (tagged with the current push selector)."""
        clause = list(dict.fromkeys(lits))  # dedupe, keep order
        if not clause:
            raise ValueError("empty clause makes the formula trivially UNSAT")
        if any(-lit in clause for lit in clause):
            return  # tautology
        for lit in clause:
            self._grow_to(abs(lit))
        if self._selectors:
            clause.append(-self._selectors[-1])
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        self.clauses.append(clause)
        self._watch(clause)

    def _watch(self, clause: list[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # Incremental interface
    # ------------------------------------------------------------------

    def push(self) -> None:
        """Open a scope; clauses added until the matching pop are
        retractable."""
        self._selectors.append(self.new_var())

    def pop(self) -> None:
        """Retract the most recent scope (and all learning based on it)."""
        if not self._selectors:
            raise ValueError("pop without matching push")
        selector = self._selectors.pop()
        # Permanently satisfy the scope's clauses; learned clauses that
        # depend on them carry -selector and die with them.
        self._units.append(-selector)

    def clone(self) -> "Solver":
        """An independent logical copy (clauses, learning, heuristics).

        This is the solver-state "snapshot": branching a solved problem
        keeps every learned clause and activity score, which is exactly
        the intermediate state §2 wants to reuse for p∧q after p.
        """
        other = Solver.__new__(Solver)
        other.num_vars = self.num_vars
        other.clauses = [list(c) for c in self.clauses]
        other.learned = [list(c) for c in self.learned]
        other._watches = {}
        for clause in other.clauses:
            other._watch(clause)
        for clause in other.learned:
            other._watch(clause)
        other._assign = {}
        other._level = {}
        other._reason = {}
        other._trail = []
        other._trail_lim = []
        other._qhead = 0
        other._activity = dict(self._activity)
        other._var_inc = self._var_inc
        other._cla_activity = {}
        other._phase = dict(self._phase)
        other._units = list(self._units)
        other._selectors = list(self._selectors)
        other.stats = SolverStats(clones=self.stats.clones + 1)
        other._max_learned = self._max_learned
        return other

    # ------------------------------------------------------------------
    # Assignment helpers
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        val = self._assign.get(abs(lit))
        if val is None:
            return None
        return val if lit > 0 else not val

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        val = self._value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        split = self._trail_lim[level]
        for lit in self._trail[split:]:
            var = abs(lit)
            self._phase[var] = self._assign[var]
            del self._assign[var]
            del self._level[var]
            self._reason.pop(var, None)
        del self._trail[split:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            neg = -lit
            watchers = self._watches.get(neg)
            if not watchers:
                continue
            self._watches[neg] = kept = []
            idx = 0
            n = len(watchers)
            while idx < n:
                clause = watchers[idx]
                idx += 1
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    kept.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(first) is False:
                    kept.extend(watchers[idx:])
                    return clause
                self._enqueue(first, clause)
                self.stats.propagations += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """Derive the 1UIP learned clause and the backjump level."""
        current_level = len(self._trail_lim)
        learned: list[int] = [0]  # slot 0 gets the asserting literal
        seen: set[int] = set()
        counter = 0
        lit = None
        reason: Optional[list[int]] = conflict
        index = len(self._trail) - 1

        while True:
            assert reason is not None
            for q in reason:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            while abs(self._trail[index]) not in seen:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen.discard(var)
            index -= 1
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason.get(var)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self._level[abs(l)] for l in learned[1:]), reverse=True)
        back = levels[0]
        # Put a literal of the backjump level in watch slot 1.
        for i, l in enumerate(learned[1:], start=1):
            if self._level[abs(l)] == back:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, back

    def _record_learned(self, clause: list[int]) -> None:
        self.stats.learned += 1
        self.stats.learned_literals += len(clause)
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        self.learned.append(clause)
        self._watch(clause)
        self._cla_activity[id(clause)] = self.stats.conflicts
        if len(self.learned) > self._max_learned:
            self._reduce_db()

    def _reduce_db(self) -> None:
        """Drop the colder half of the learned-clause database."""
        self.stats.db_reductions += 1
        locked = {id(r) for r in self._reason.values() if r is not None}
        ranked = sorted(
            self.learned,
            key=lambda c: self._cla_activity.get(id(c), 0.0),
            reverse=True,
        )
        keep_count = len(ranked) // 2
        keep, drop = ranked[:keep_count], ranked[keep_count:]
        survivors = keep + [c for c in drop if id(c) in locked or len(c) <= 2]
        dropped = {id(c) for c in drop} - {id(c) for c in survivors}
        if not dropped:
            self.learned = survivors
            return
        self.learned = survivors
        for lit, watchers in list(self._watches.items()):
            self._watches[lit] = [c for c in watchers if id(c) not in dropped]
        for cid in dropped:
            self._cla_activity.pop(cid, None)

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _pick_branch(self) -> Optional[int]:
        best_var, best_act = None, -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self._assign:
                act = self._activity.get(var, 0.0)
                if act > best_act:
                    best_var, best_act = var, act
        if best_var is None:
            return None
        polarity = self._phase.get(best_var, False)
        return best_var if polarity else -best_var

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Iterable[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> SolverResult:
        """Decide satisfiability under *assumptions*.

        Returns ``SolverResult(sat=None)`` if *max_conflicts* ran out.
        The solver is reusable after every outcome.
        """
        assumed = list(assumptions) + list(self._selectors)
        self._backtrack(0)
        self._qhead = 0
        for unit in self._units:
            if not self._enqueue(unit, None):
                return SolverResult(sat=False)
        if self._propagate() is not None:
            return SolverResult(sat=False)

        restart_limit = 100.0
        conflicts_here = 0
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                conflicts_since_restart += 1
                if len(self._trail_lim) == 0:
                    return SolverResult(sat=False)
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._record_learned(learned)
                self._enqueue(learned[0], learned if len(learned) > 1 else None)
                self._var_inc /= 0.95
                if max_conflicts is not None and conflicts_here >= max_conflicts:
                    self._backtrack(0)
                    return SolverResult(sat=None)
                if (
                    conflicts_since_restart >= restart_limit
                    and len(self._trail_lim) > len(assumed)
                ):
                    self.stats.restarts += 1
                    restart_limit *= 1.5
                    conflicts_since_restart = 0
                    self._backtrack(len(assumed))
                continue

            level = len(self._trail_lim)
            if level < len(assumed):
                lit = assumed[level]
                val = self._value(lit)
                if val is False:
                    self._backtrack(0)
                    return SolverResult(sat=False)
                self._new_decision_level()
                if val is None:
                    self._enqueue(lit, None)
                continue

            lit = self._pick_branch()
            if lit is None:
                model = {
                    v: self._assign[v]
                    for v in range(1, self.num_vars + 1)
                    if v in self._assign
                }
                self._backtrack(0)
                return SolverResult(sat=True, model=model)
            self.stats.decisions += 1
            self._new_decision_level()
            self._enqueue(lit, None)
