"""The multi-path incremental solver service (§3.2).

"One could use lightweight snapshots directly to create a multi-path
incremental SAT/SMT solver service, built using a single-path incremental
solver.  In this case, the service waits for client requests consisting
of an opaque reference to a previously solved problem p and an
incremental constraint q, and returns to the client the solution to p∧q
together with an opaque reference to that new problem."

This module implements exactly that interface.  The "snapshot" of solver
state is a solver clone (learned clauses, activities, phases preserved);
each reference is a node in a tree of solved problems, and clients may
branch any node any number of times — siblings never observe each
other's constraints, mirroring snapshot immutability.

For the E5/E8 experiments the service also supports a *from-scratch*
mode (``incremental=False``) that rebuilds the solver per request, which
is the baseline the paper's claim is measured against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolverResult


@dataclass
class SolveOutcome:
    """What the service returns for one request."""

    ref: int
    sat: Optional[bool]
    model: dict[int, bool] = field(default_factory=dict)
    #: Conflicts the underlying solver spent on *this* request only.
    conflicts: int = 0
    #: Learned clauses inherited from the parent reference (the reused
    #: intermediate state §2 highlights).
    inherited_learned: int = 0


class _Node:
    """One solved problem in the service's tree."""

    __slots__ = ("ref", "parent", "solver", "clauses", "alive")

    def __init__(self, ref: int, parent: Optional["_Node"], solver: Solver,
                 clauses: list):
        self.ref = ref
        self.parent = parent
        self.solver = solver
        self.clauses = clauses  # this node's own increment
        self.alive = True


class IncrementalSolverService:
    """A solver service keyed by opaque problem references.

    Parameters
    ----------
    incremental:
        ``True`` (default): branch requests clone the parent solver and
        add only the increment — learned state is inherited.
        ``False``: every request replays the full clause stack into a
        fresh solver (the from-scratch baseline).
    """

    def __init__(self, incremental: bool = True):
        self.incremental = incremental
        self._refs = itertools.count(1)
        self._nodes: dict[int, _Node] = {}
        #: Total conflicts across all requests (the E5 cost metric).
        self.total_conflicts = 0
        self.requests = 0

    # ------------------------------------------------------------------

    def solve(self, cnf: CNF) -> SolveOutcome:
        """Solve a fresh problem p; returns its opaque reference."""
        return self._solve_increment(None, cnf.clauses, cnf.num_vars)

    def extend(self, ref: int, clauses: Iterable[Iterable[int]]) -> SolveOutcome:
        """Solve p∧q where p is the problem behind *ref* and q is
        *clauses*; returns a new reference for the conjunction."""
        node = self._nodes.get(ref)
        if node is None or not node.alive:
            raise KeyError(f"unknown or released problem reference {ref}")
        return self._solve_increment(node, [tuple(c) for c in clauses], 0)

    def release(self, ref: int) -> None:
        """Drop a reference (its descendants stay valid)."""
        node = self._nodes.get(ref)
        if node is not None:
            node.alive = False
            node.solver = None  # type: ignore[assignment]

    # ------------------------------------------------------------------

    def _solve_increment(self, parent: Optional[_Node], clauses, num_vars) -> SolveOutcome:
        self.requests += 1
        if self.incremental:
            solver = parent.solver.clone() if parent is not None else Solver()
            inherited = len(solver.learned)
        else:
            solver = Solver()
            inherited = 0
            for ancestor_clauses in self._stack(parent):
                for clause in ancestor_clauses:
                    solver.add_clause(clause)
        if num_vars:
            solver._grow_to(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        before = solver.stats.conflicts
        result: SolverResult = solver.solve()
        spent = solver.stats.conflicts - before
        self.total_conflicts += spent
        ref = next(self._refs)
        node = _Node(ref, parent, solver, list(clauses))
        self._nodes[ref] = node
        return SolveOutcome(
            ref=ref,
            sat=result.sat,
            model=result.model,
            conflicts=spent,
            inherited_learned=inherited,
        )

    def _stack(self, node: Optional[_Node]) -> list[list]:
        """Clause increments from the root down to *node* inclusive."""
        out: list[list] = []
        while node is not None:
            out.append(node.clauses)
            node = node.parent
        out.reverse()
        return out

    # ------------------------------------------------------------------

    def live_references(self) -> int:
        return sum(1 for n in self._nodes.values() if n.alive)
