"""CNF formulas and DIMACS I/O.

Literals follow the DIMACS convention: variable *v* is the positive
integer ``v``, its negation ``-v``.  Variable numbering starts at 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class CNF:
    """A formula in conjunctive normal form."""

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause, growing ``num_vars`` as needed."""
        clause = tuple(lits)
        if not clause:
            raise ValueError("empty clause")
        if any(lit == 0 for lit in clause):
            raise ValueError("literal 0 is reserved (DIMACS terminator)")
        self.num_vars = max(self.num_vars, max(abs(l) for l in clause))
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def evaluate(self, model: dict[int, bool]) -> bool:
        """True if *model* (var -> bool) satisfies every clause."""
        for clause in self.clauses:
            if not any(
                model.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS CNF document.

    Accepts comments (``c ...``), the problem line (``p cnf V C``), and
    clauses possibly spanning lines, each terminated by ``0``.
    """
    cnf = CNF()
    declared_vars: Optional[int] = None
    pending: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"bad problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                if pending:
                    cnf.add_clause(pending)
                    pending = []
            else:
                pending.append(lit)
    if pending:
        cnf.add_clause(pending)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf


def to_dimacs(cnf: CNF, comment: str = "") -> str:
    """Serialise *cnf* as a DIMACS document."""
    lines = []
    if comment:
        for c in comment.splitlines():
            lines.append(f"c {c}")
    lines.append(f"p cnf {cnf.num_vars} {len(cnf.clauses)}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"
