"""Incremental SAT solving (the paper's Z3 stand-in).

§2 motivates lightweight snapshots with incremental SMT solving: "an
incremental solver given formula p immediately followed by formula p∧q
can solve both in less time than solving p and then solving p∧q from
scratch".  This package provides:

* :mod:`repro.sat.cnf` -- CNF formulas, DIMACS I/O;
* :mod:`repro.sat.solver` -- a CDCL solver (watched literals, 1UIP
  learning, VSIDS, phase saving, restarts) with assumption-based
  incremental ``push``/``pop`` and O(state) cloning;
* :mod:`repro.sat.gen` -- seeded formula generators (random k-SAT,
  pigeonhole, graph coloring encodings);
* :mod:`repro.sat.service` -- the multi-path incremental solver service
  of §3.2, where clients branch solved problems by opaque reference.
"""

from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.gen import pigeonhole, random_ksat
from repro.sat.service import IncrementalSolverService, SolveOutcome
from repro.sat.solver import Solver, SolverResult

__all__ = [
    "CNF",
    "IncrementalSolverService",
    "Solver",
    "SolveOutcome",
    "SolverResult",
    "parse_dimacs",
    "pigeonhole",
    "random_ksat",
    "to_dimacs",
]
