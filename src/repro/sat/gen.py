"""Seeded formula generators for experiments.

All generators are deterministic under their ``seed`` so experiment runs
are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sat.cnf import CNF


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int = 0,
    planted: bool = False,
) -> CNF:
    """Uniform random k-SAT.

    With ``planted=True`` a hidden satisfying assignment is planted: each
    clause is resampled until the hidden model satisfies it, guaranteeing
    SAT instances for incremental-solving experiments at any density.
    """
    if k > num_vars:
        raise ValueError("k cannot exceed num_vars")
    rng = random.Random(seed)
    hidden = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
    cnf = CNF(num_vars=num_vars)
    while len(cnf.clauses) < num_clauses:
        variables = rng.sample(range(1, num_vars + 1), k)
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        if planted and not any(hidden[abs(l)] == (l > 0) for l in clause):
            continue
        cnf.clauses.append(clause)
    return cnf


def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): provably UNSAT, exponentially hard for
    resolution — a stress test for clause learning."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    cnf = CNF(num_vars=pigeons * holes)
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


def graph_coloring(
    num_nodes: int,
    edges: list[tuple[int, int]],
    colors: int,
) -> CNF:
    """Encode k-coloring of a graph (nodes numbered from 0)."""

    def var(node: int, color: int) -> int:
        return node * colors + color + 1

    cnf = CNF(num_vars=num_nodes * colors)
    for node in range(num_nodes):
        cnf.add_clause([var(node, c) for c in range(colors)])
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                cnf.add_clause([-var(node, c1), -var(node, c2)])
    for a, b in edges:
        for c in range(colors):
            cnf.add_clause([-var(a, c), -var(b, c)])
    return cnf


def random_graph(
    num_nodes: int, edge_prob: float, seed: int = 0
) -> list[tuple[int, int]]:
    """Erdős–Rényi G(n, p) edge list."""
    rng = random.Random(seed)
    return [
        (a, b)
        for a in range(num_nodes)
        for b in range(a + 1, num_nodes)
        if rng.random() < edge_prob
    ]


def incremental_batches(
    num_vars: int,
    base_clauses: int,
    batch_clauses: int,
    batches: int,
    k: int = 3,
    seed: int = 0,
) -> tuple[CNF, list[list[tuple[int, ...]]]]:
    """A base formula p plus successive clause batches q1, q2, ... with a
    planted model satisfying the whole conjunction, so every prefix
    p ∧ q1 ∧ ... ∧ qi is SAT (the §2 incremental-solver workload)."""
    total = base_clauses + batch_clauses * batches
    full = random_ksat(num_vars, total, k=k, seed=seed, planted=True)
    base = CNF(num_vars=num_vars, clauses=list(full.clauses[:base_clauses]))
    steps = [
        list(full.clauses[base_clauses + i * batch_clauses :
                          base_clauses + (i + 1) * batch_clauses])
        for i in range(batches)
    ]
    return base, steps
