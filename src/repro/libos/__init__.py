"""The backtracking libOS.

The libOS of Figure 2: it loads the guest at (simulated) ring 3, handles
every VM exit, interposes on all guest system calls so extension side
effects stay contained, and cooperates with the snapshot manager and the
search-strategy scheduler.

* :mod:`repro.libos.loader` -- maps an assembled program into a fresh
  address space (text RX, data RW, stack, heap).
* :mod:`repro.libos.files` -- the copy-on-write file layer giving each
  extension an "immutable logical copy of open disk files" (§4).
* :mod:`repro.libos.console` -- per-path capture of guest stdout/stderr.
* :mod:`repro.libos.syscalls` -- the syscall dispatch table; guess calls
  surface as typed actions for the engine's scheduler.
* :mod:`repro.libos.libos` -- :class:`LibOS`, tying the above together.
"""

from repro.libos.console import Console
from repro.libos.files import FileTable, HostFS
from repro.libos.libos import ExecState, LibOS
from repro.libos.loader import load_program
from repro.libos.syscalls import (
    Action,
    ContinueAction,
    ExitAction,
    GuessAction,
    GuessFailAction,
    KillAction,
    StrategyAction,
)

__all__ = [
    "Action",
    "Console",
    "ContinueAction",
    "ExecState",
    "ExitAction",
    "FileTable",
    "GuessAction",
    "GuessFailAction",
    "HostFS",
    "KillAction",
    "LibOS",
    "StrategyAction",
    "load_program",
]
