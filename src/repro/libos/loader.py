"""Guest program loader.

Maps an assembled :class:`~repro.cpu.assembler.Program` into a fresh
address space the way the Dune sandbox loads an application at ring 3:

* ``.text`` read-execute at the program's text base;
* ``.data`` read-write, followed by a BSS-like scratch area;
* a demand-zero stack below :data:`~repro.mem.layout.STACK_TOP`;
* the heap break initialised at :data:`~repro.mem.layout.HEAP_BASE`
  (grown on demand via the ``brk`` system call).

:func:`memory_map` computes the page-granular segment extents without
building an address space; it is the single source of truth shared by
:func:`load_program` and the static analyzer's memory-bounds checks, so
the two can never disagree about what the loader maps.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.cpu.assembler import Program
from repro.cpu.registers import RegisterFile
from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.mem.layout import (
    DEFAULT_STACK_PAGES,
    HEAP_BASE,
    MMAP_BASE,
    PAGE_SIZE,
    STACK_TOP,
    page_align_up,
)
from repro.mem.pagetable import Permission


class Segment(NamedTuple):
    """One statically mapped region: ``[lo, hi)`` with *perm*."""

    name: str
    lo: int
    hi: int
    perm: Permission

    def contains(self, addr: int) -> bool:
        return self.lo <= addr < self.hi

    @property
    def writable(self) -> bool:
        return bool(self.perm & Permission.WRITE)


def memory_map(
    program: Program,
    stack_pages: int = DEFAULT_STACK_PAGES,
    bss_pages: int = 16,
) -> list[Segment]:
    """The page-granular segments :func:`load_program` will map."""
    text_len = page_align_up(max(len(program.text), 1))
    data_len = (
        page_align_up(max(len(program.data), 1)) + bss_pages * PAGE_SIZE
    )
    stack_base = STACK_TOP - stack_pages * PAGE_SIZE
    return [
        Segment("text", program.text_base,
                program.text_base + text_len, Permission.RX),
        Segment("data", program.data_base,
                program.data_base + data_len, Permission.RW),
        Segment("stack", stack_base, STACK_TOP, Permission.RW),
    ]


def load_program(
    program: Program,
    pool: FramePool,
    stack_pages: int = DEFAULT_STACK_PAGES,
    bss_pages: int = 16,
    name: Optional[str] = None,
) -> tuple[AddressSpace, RegisterFile]:
    """Build the initial address space and register file for *program*.

    Returns ``(space, regs)`` with ``rip`` at the entry point and ``rsp``
    at the stack top.
    """
    space = AddressSpace(pool, name=name or "guest")
    segments = {
        seg.name: seg for seg in memory_map(program, stack_pages, bss_pages)
    }

    text = segments["text"]
    space.map_region(text.lo, max(len(program.text), 1), Permission.RX,
                     data=program.text or b"\x00")

    data = segments["data"]
    if program.data:
        data_pages = page_align_up(len(program.data))
        space.map_region(data.lo, data_pages, Permission.RW,
                         data=program.data)
        if bss_pages:
            space.map_region(data.lo + data_pages,
                             bss_pages * PAGE_SIZE, Permission.RW)
    else:
        space.map_region(data.lo, data.hi - data.lo, Permission.RW)

    stack = segments["stack"]
    space.map_region(stack.lo, stack.hi - stack.lo, Permission.RW)

    space.set_brk_base(HEAP_BASE)
    space.mmap_next = MMAP_BASE

    regs = RegisterFile()
    regs.rip = program.entry
    regs.rsp = STACK_TOP
    return space, regs
