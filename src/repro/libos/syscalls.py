"""System-call dispatch.

The libOS "interposes on these calls to ensure that all visible side
effects are contained within the extension" (§4).  POSIX-ish calls are
serviced directly against the per-path COW state (file table, console,
heap); the three guess calls are *not* serviced here — they surface as
typed actions so the engine's scheduler (the search strategy) decides
what runs next, keeping policy out of the libOS mechanism.

Guest ABI (simulated, modelled on Linux x86-64):

=================  =====  ==========================================
call               rax    arguments
=================  =====  ==========================================
read               0      rdi=fd, rsi=buf, rdx=len -> rax=n or -errno
write              1      rdi=fd, rsi=buf, rdx=len -> rax=n or -errno
open               2      rdi=path (cstr), rsi=flags -> rax=fd/-errno
close              3      rdi=fd
lseek              8      rdi=fd, rsi=off, rdx=whence
brk                12     rdi=new break (0 queries) -> rax=break
exit               60     rdi=status (never returns)
fsync              74     rdi=fd -> rax=0 or -errno (per-inode barrier)
rename             82     rdi=src (cstr), rsi=dst (cstr) -> rax=0/-errno
sync               162    -> rax=0 (global barrier, incl. renames)
time               201    -> rax=wall-clock nanoseconds
getrandom          318    rdi=buf, rsi=len -> rax=len or -errno
sys_guess          0x1000 rdi=n -> rax=extension number
sys_guess_fail     0x1001 never returns
sys_guess_strategy 0x1002 rdi=strategy id -> rax=1
sys_guess_hint     0x1003 rdi=n, rsi=ptr to n signed i64 hints
sys_crash_select   0x1100 rdi=log index -> rax=#dimensions or -errno
sys_crash_opts     0x1101 rdi=dim -> rax=#options or -errno
sys_crash_set      0x1102 rdi=dim, rsi=choice -> rax=0 or -errno
sys_crash_commit   0x1103 -> rax=#records kept or -errno
=================  =====  ==========================================

The ``sys_crash_*`` quartet exposes the file layer's persistence model
(docs/CRASH.md): select a crash point in the operation log, fix one
persistence choice per dimension (typically each drawn from
``sys_guess``), then commit — the file table rebases onto the chosen
crash image and the guest's recovery/checker code reads exactly what a
remount after power loss would see.

``time``, ``getrandom`` and ``read(0, ...)`` are the libOS's
nondeterministic surface.  When a :class:`repro.core.recorder.Recorder`
is attached (``dispatcher.nondet``) their outcomes are routed through it
— recorded on first execution, replayed on every re-execution — which is
what lets nondeterministic guests shard and resume (docs/REPLAY.md).
Without a recorder they read the live host clock/entropy/input source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core import sysno
from repro.core.recorder import live_random, live_time_ns
from repro.core.sysno import STRATEGY_NAMES, syscall_name
from repro.obs import events as _events
from repro.obs.trace import TRACER as _TRACER
from repro.interpose.policy import (
    Containment,
    InterpositionPolicy,
    Verdict,
    ENOSYS,
)
from repro.libos.console import Console
from repro.libos.files import FileTable
from repro.mem.addrspace import AddressSpace
from repro.mem.faults import PageFaultError
from repro.vmm.vcpu import VCpu

_EFAULT = 14
_EBADF = 9
_EINVAL_ = 22
_I64_SIGN = 1 << 63

from repro.mem.pagetable import Permission as _Permission

_RW_PERM = _Permission.RW


@dataclass
class ContinueAction:
    """Syscall fully handled; re-enter the guest."""


@dataclass
class ExitAction:
    """Guest called exit(status): the path completed."""

    status: int


@dataclass
class GuessAction:
    """Guest called sys_guess(n): take a snapshot, fan out n extensions."""

    n: int
    hints: Optional[tuple[float, ...]] = None


@dataclass
class GuessFailAction:
    """Guest called sys_guess_fail(): discard this extension."""


@dataclass
class StrategyAction:
    """Guest called sys_guess_strategy(id)."""

    name: str


@dataclass
class KillAction:
    """The path must be terminated by policy or error."""

    reason: str


Action = Union[
    ContinueAction, ExitAction, GuessAction, GuessFailAction,
    StrategyAction, KillAction,
]

_CONTINUE = ContinueAction()


class SyscallDispatcher:
    """Decodes and services guest system calls for one libOS instance."""

    #: Longest getrandom request the libOS will service in one call.
    MAX_GETRANDOM = 4096

    def __init__(self, policy: InterpositionPolicy, input=None):
        self.policy = policy
        #: Per-call counts for the F2 accounting benchmark.
        self.counts: dict[int, int] = {}
        #: Scripted stdin (:class:`repro.libos.console.InputSource`) or
        #: None; fd-0 reads return EOF without one.
        self.input = input
        #: Attached :class:`repro.core.recorder.Recorder`, or None for
        #: replay-mode "off".  Set by the engine, not the libOS.
        self.nondet = None
        self._pc: Optional[int] = None

    def dispatch(
        self,
        vcpu: VCpu,
        space: AddressSpace,
        files: FileTable,
        console: Console,
    ) -> Action:
        """Service the syscall encoded in the vCPU's registers."""
        regs = vcpu.regs
        number = regs.rax
        self._pc = regs.rip
        self.counts[number] = self.counts.get(number, 0) + 1
        if _TRACER.enabled:
            _TRACER.emit(
                _events.LIBOS_SYSCALL, nr=number, name=syscall_name(number)
            )
        try:
            return self._dispatch(number, regs, space, files, console)
        except PageFaultError:
            # Guest passed a bad pointer; mirror Linux and return -EFAULT.
            regs.rax = -_EFAULT & ((1 << 64) - 1)
            return _CONTINUE

    def _dispatch(self, number, regs, space, files, console) -> Action:
        if number == sysno.SYS_WRITE:
            return self._write(regs, space, files, console)
        if number == sysno.SYS_READ:
            return self._read(regs, space, files)
        if number == sysno.SYS_OPEN:
            return self._open(regs, space, files)
        if number == sysno.SYS_CLOSE:
            regs.rax = files.close(regs.rdi)
            return _CONTINUE
        if number == sysno.SYS_LSEEK:
            regs.rax = files.lseek(regs.rdi, _signed(regs.rsi), regs.rdx)
            return _CONTINUE
        if number == sysno.SYS_BRK:
            return self._brk(regs, space, files)
        if number == sysno.SYS_MMAP:
            return self._mmap(regs, space, files)
        if number == sysno.SYS_MUNMAP:
            return self._munmap(regs, space, files)
        if number == sysno.SYS_EXIT:
            return ExitAction(status=_signed(regs.rdi))
        if number == sysno.SYS_FSYNC:
            return self._fsync(regs, files)
        if number == sysno.SYS_RENAME:
            src = space.read_cstr(regs.rdi).decode("utf-8", errors="replace")
            dst = space.read_cstr(regs.rsi).decode("utf-8", errors="replace")
            regs.rax = _errno64(files.rename(src, dst))
            return _CONTINUE
        if number == sysno.SYS_SYNC:
            flushed = files.sync()
            if _TRACER.enabled:
                _TRACER.emit(_events.FILE_SYNC, records=flushed)
            regs.rax = 0
            return _CONTINUE
        if number == sysno.SYS_CRASH_SELECT:
            result = files.crash_select(_signed(regs.rdi))
            if _TRACER.enabled and result >= 0:
                _TRACER.emit(_events.CRASH_SELECT,
                             point=_signed(regs.rdi), dims=result)
            regs.rax = _errno64(result)
            return _CONTINUE
        if number == sysno.SYS_CRASH_OPTS:
            regs.rax = _errno64(files.crash_opts(_signed(regs.rdi)))
            return _CONTINUE
        if number == sysno.SYS_CRASH_SET:
            regs.rax = _errno64(
                files.crash_set(_signed(regs.rdi), _signed(regs.rsi))
            )
            return _CONTINUE
        if number == sysno.SYS_CRASH_COMMIT:
            result = files.crash_commit()
            if _TRACER.enabled and result >= 0:
                _TRACER.emit(_events.CRASH_COMMIT, kept=result)
            regs.rax = _errno64(result)
            return _CONTINUE
        if number == sysno.SYS_TIME:
            return self._time(regs)
        if number == sysno.SYS_GETRANDOM:
            return self._getrandom(regs, space)
        if number == sysno.SYS_GUESS:
            return GuessAction(n=regs.rdi)
        if number == sysno.SYS_GUESS_FAIL:
            return GuessFailAction()
        if number == sysno.SYS_GUESS_STRATEGY:
            name = STRATEGY_NAMES.get(regs.rdi)
            if name is None:
                return KillAction(f"unknown strategy id {regs.rdi}")
            regs.rax = 1
            return StrategyAction(name)
        if number == sysno.SYS_GUESS_HINT:
            n = regs.rdi
            ptr = regs.rsi
            hints = tuple(
                float(_signed(space.read_u64(ptr + 8 * i))) for i in range(n)
            )
            return GuessAction(n=n, hints=hints)
        # Unknown syscall: the §5 soundness rule decides.
        files.audit.note("syscall", f"#{number}", Verdict.DENY)
        if self.policy.check_unknown_syscall(number) == "kill":
            return KillAction(f"refused syscall #{number}")
        regs.rax = -ENOSYS & ((1 << 64) - 1)
        return _CONTINUE

    # ------------------------------------------------------------------

    def _write(self, regs, space, files, console) -> Action:
        fd, buf, length = regs.rdi, regs.rsi, regs.rdx
        data = space.read(buf, length)
        if fd in (1, 2):
            files.audit.note(
                "write", f"fd{fd} {length}B", Verdict.ALLOW, Containment.OUTPUT
            )
            regs.rax = console.write(data)
        else:
            regs.rax = _errno64(files.write(fd, data))
        return _CONTINUE

    def _read(self, regs, space, files) -> Action:
        fd, buf, length = regs.rdi, regs.rsi, regs.rdx
        if fd == 0:
            data = self._nondet(
                "input", lambda: self.input.read(length)
                if self.input is not None else b""
            )
            if data:
                space.write(buf, data[:length])
            regs.rax = min(len(data), length)
            return _CONTINUE
        if fd in (1, 2):
            regs.rax = 0  # reading the output console makes no sense
            return _CONTINUE
        result = files.read(fd, length)
        if isinstance(result, int):
            regs.rax = _errno64(result)
        else:
            space.write(buf, result)
            regs.rax = len(result)
        return _CONTINUE

    def _fsync(self, regs, files) -> Action:
        result = files.fsync(regs.rdi)
        if result < 0:
            regs.rax = _errno64(result)
            return _CONTINUE
        if _TRACER.enabled:
            _TRACER.emit(_events.FILE_FSYNC, fd=regs.rdi, records=result)
        regs.rax = 0  # POSIX: success is 0; the record count is trace-only
        return _CONTINUE

    def _time(self, regs) -> Action:
        payload = self._nondet("time", live_time_ns)
        regs.rax = int.from_bytes(payload[:8], "little")
        return _CONTINUE

    def _getrandom(self, regs, space) -> Action:
        buf, length = regs.rdi, regs.rsi
        if length == 0 or length > self.MAX_GETRANDOM:
            regs.rax = -_EINVAL_ & ((1 << 64) - 1)
            return _CONTINUE
        payload = self._nondet("random", lambda: live_random(length))
        space.write(buf, payload[:length])
        regs.rax = min(len(payload), length)
        return _CONTINUE

    def _nondet(self, kind, generate) -> bytes:
        """Resolve a nondeterministic outcome, via the recorder if any."""
        if self.nondet is not None:
            return self.nondet.intercept(kind, self._pc, generate)
        return generate()

    def _open(self, regs, space, files) -> Action:
        path = space.read_cstr(regs.rdi).decode("utf-8", errors="replace")
        regs.rax = _errno64(files.open(path, regs.rsi))
        return _CONTINUE

    def _mmap(self, regs, space, files) -> Action:
        """Anonymous private mappings only: mmap(0, length) -> base.

        Address hints, file-backed mappings and protection flags beyond
        RW are refused (-EINVAL): §5's sound-minimal rule applied to the
        memory API.  Regions grow downward from the libOS-chosen mmap
        base and are demand-zero (COW of the zero frame).
        """
        hint, length = regs.rdi, regs.rsi
        if hint != 0 or length == 0:
            regs.rax = -_EINVAL_ & ((1 << 64) - 1)
            return _CONTINUE
        size = (length + 4095) & ~4095
        base = (space.mmap_next - size) & ~4095
        space.map_region(base, size, _RW_PERM)
        space.mmap_next = base
        files.audit.note(
            "mmap", f"{size // 1024}KiB at {base:#x}", Verdict.ALLOW,
            Containment.COW,
        )
        regs.rax = base
        return _CONTINUE

    def _munmap(self, regs, space, files) -> Action:
        addr, length = regs.rdi, regs.rsi
        if addr & 4095 or length == 0:
            regs.rax = -_EINVAL_ & ((1 << 64) - 1)
            return _CONTINUE
        space.unmap_region(addr, length)
        files.audit.note("munmap", f"{addr:#x}", Verdict.ALLOW,
                         Containment.COW)
        regs.rax = 0
        return _CONTINUE

    def _brk(self, regs, space, files) -> Action:
        target = regs.rdi
        current = space.brk_end
        if target == 0 or target < space.brk_base:
            regs.rax = current
            return _CONTINUE
        space.sbrk(target - current)
        files.audit.note(
            "brk", f"{current:#x} -> {target:#x}", Verdict.ALLOW,
            Containment.LOGGED,
        )
        regs.rax = space.brk_end
        return _CONTINUE


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _I64_SIGN else value


def _errno64(value: int) -> int:
    """Encode a possibly-negative errno return as unsigned 64-bit."""
    return value & ((1 << 64) - 1)
