"""Per-path console capture and scripted console input.

Guest writes to stdout/stderr are part of the *path's* state: two sibling
extensions must each see only their own output (Figure 1 prints one board
per solution path).  The console is therefore forked together with the
address space and file table on every snapshot.

Console *input* (:class:`InputSource`) is the opposite: a stream from
outside the search, consumed in execution order across the whole tree.
Which path sees which bytes therefore depends on exploration order —
that is precisely the DT001 nondeterminism the analyzer flags, and the
record/replay recorder (:mod:`repro.core.recorder`) is what makes reads
from it repeatable.
"""

from __future__ import annotations

from repro.core.errors import InputExhaustedError


class InputSource:
    """Scripted stdin for guests that read fd 0.

    ``read(n)`` hands out up to *n* bytes from the script.  Once the
    script runs dry, behaviour follows ``on_exhausted``:

    * ``"eof"`` (default) — return ``b""`` forever, like a closed pipe;
    * ``"error"`` — raise :class:`InputExhaustedError`, for harnesses
      that consider reading past the script a bug in the guest.
    """

    __slots__ = ("_data", "_pos", "on_exhausted")

    def __init__(self, data: bytes = b"", on_exhausted: str = "eof"):
        if on_exhausted not in ("eof", "error"):
            raise ValueError(
                f"on_exhausted must be 'eof' or 'error', got {on_exhausted!r}"
            )
        self._data = bytes(data)
        self._pos = 0
        self.on_exhausted = on_exhausted

    def read(self, length: int) -> bytes:
        if length <= 0:
            return b""
        if self._pos >= len(self._data):
            if self.on_exhausted == "error":
                raise InputExhaustedError(
                    "guest read past the end of its scripted input",
                    consumed=self._pos,
                )
            return b""
        chunk = self._data[self._pos:self._pos + length]
        self._pos += len(chunk)
        return chunk

    @property
    def remaining(self) -> int:
        """Bytes of script not yet consumed."""
        return len(self._data) - self._pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InputSource({self._pos}/{len(self._data)} consumed)"


class Console:
    """An append-only output buffer with cheap forking.

    Forks share the already-written chunks (they are immutable bytes) and
    append independently, mirroring how the COW layers share history and
    diverge from the snapshot point.
    """

    __slots__ = ("_chunks",)

    def __init__(self, _chunks: tuple[bytes, ...] = ()):
        self._chunks: list[bytes] = list(_chunks)

    def write(self, data: bytes) -> int:
        """Append guest output; returns the byte count (like write(2))."""
        if data:
            self._chunks.append(bytes(data))
        return len(data)

    def fork_cow(self) -> "Console":
        """Fork the console at the current output position."""
        return Console(tuple(self._chunks))

    @property
    def data(self) -> bytes:
        """Everything written along this path so far."""
        return b"".join(self._chunks)

    @property
    def text(self) -> str:
        """Output decoded as UTF-8 (replacement on invalid bytes)."""
        return self.data.decode("utf-8", errors="replace")

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Console({len(self)} bytes)"
