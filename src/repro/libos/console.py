"""Per-path console capture.

Guest writes to stdout/stderr are part of the *path's* state: two sibling
extensions must each see only their own output (Figure 1 prints one board
per solution path).  The console is therefore forked together with the
address space and file table on every snapshot.
"""

from __future__ import annotations


class Console:
    """An append-only output buffer with cheap forking.

    Forks share the already-written chunks (they are immutable bytes) and
    append independently, mirroring how the COW layers share history and
    diverge from the snapshot point.
    """

    __slots__ = ("_chunks",)

    def __init__(self, _chunks: tuple[bytes, ...] = ()):
        self._chunks: list[bytes] = list(_chunks)

    def write(self, data: bytes) -> int:
        """Append guest output; returns the byte count (like write(2))."""
        if data:
            self._chunks.append(bytes(data))
        return len(data)

    def fork_cow(self) -> "Console":
        """Fork the console at the current output position."""
        return Console(tuple(self._chunks))

    @property
    def data(self) -> bytes:
        """Everything written along this path so far."""
        return b"".join(self._chunks)

    @property
    def text(self) -> str:
        """Output decoded as UTF-8 (replacement on invalid bytes)."""
        return self.data.decode("utf-8", errors="replace")

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Console({len(self)} bytes)"
