"""Versioned copy-on-write file layer with crash simulation.

Each partial candidate includes "a logical copy of open disk files"
(§4).  This layer realises that with **two** stacked views per file:

* a *flushed* view — refcounted :class:`FileData` inodes holding what a
  crash could never lose (COW-shared across forks, copied only when a
  flush mutates a shared inode); and
* a *volatile* view — a block-granular page cache of unflushed writes,
  private to each :class:`FileTable` fork, recorded as an append-only
  operation log.

Writes land in the volatile view; ``fsync(fd)`` is a per-inode barrier
that moves that inode's pending blocks (and its creation record) into
the flushed view, and ``sync`` is a global barrier that also flushes
namespace operations (creates and renames).  This fixes the fork-based
strawman's flaw that "changes made to files are visible to other
processes" (§3): siblings never see each other's writes, flushed *or*
pending.

The split is what makes crash states first-class (docs/CRASH.md): the
legal on-disk images after a crash at log index ``c`` are exactly the
durable base (everything a barrier within ``log[:c]`` covered) plus any
per-block *seq-prefix* of the leftover pending records, with each
pending namespace record independently applied or lost.
:meth:`FileTable.crash_select` / :meth:`~FileTable.crash_opts` /
:meth:`~FileTable.crash_set` / :meth:`~FileTable.crash_commit` expose
that enumeration to guests as the ``sys_crash_*`` system calls, so a
backtracking search can fork over every legal crash image and run
recovery/checker code against each one.

The :class:`HostFS` is the immutable backing store (the host filesystem
as the libOS sees it); its files are durable from the start.  Guests
materialise private COW copies on open.

Operation-log record formats (tuples, ``seq`` is a per-table counter)::

    ("write",  seq, ino, block, off, data)   # one record per block touched
    ("create", seq, path, ino)
    ("rename", seq, src, dst, ino)
    ("fsync",  seq, ino)                     # barrier markers
    ("sync",   seq)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.interpose.policy import (
    AuditLog,
    Containment,
    InterpositionPolicy,
    PermissivePolicy,
    Verdict,
)

EBADF = 9
EACCES = 13
ENOENT = 2
EINVAL = 22

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
_ACCMODE = 3

DEFAULT_BLOCK_SIZE = 4096


class HostFS:
    """Immutable host-side backing files (path -> initial contents).

    ``block_size`` is the persistence granularity of the file layer
    built over this store: pending writes are recorded per block, and a
    crash may tear a multi-block write at block boundaries but never
    within a block (block-write atomicity, the standard disk model).
    """

    def __init__(self, files: Optional[dict[str, bytes]] = None,
                 block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._files = dict(files or {})
        self.block_size = block_size

    def add(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def get(self, path: str) -> Optional[bytes]:
        return self._files.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def snapshot_files(self) -> dict[str, bytes]:
        """A picklable copy of the backing files (cluster shipping)."""
        return dict(self._files)


@dataclass
class FileStats:
    """Aggregate file-layer counters, shared by every fork of a table
    (like the audit log): accounting, not per-path state, so it is not
    rolled back with snapshots."""

    cow_bytes: int = 0          #: bytes physically copied (COW + overlay)
    records: int = 0            #: oplog records appended
    fsyncs: int = 0
    syncs: int = 0
    renames: int = 0
    flushed_records: int = 0    #: pending records retired by barriers
    crash_selects: int = 0
    crash_commits: int = 0

    def as_dict(self) -> dict:
        return {
            "cow_bytes": self.cow_bytes,
            "records": self.records,
            "fsyncs": self.fsyncs,
            "syncs": self.syncs,
            "renames": self.renames,
            "flushed_records": self.flushed_records,
            "crash_selects": self.crash_selects,
            "crash_commits": self.crash_commits,
        }


class FileData:
    """Refcounted *flushed* contents of one inode (copied when a
    barrier must mutate a shared inode)."""

    __slots__ = ("data", "refcount", "ino")

    def __init__(self, data: bytes = b"", ino: int = 0):
        self.data = bytearray(data)
        self.refcount = 1
        self.ino = ino


@dataclass
class _OpenFile:
    """Per-table fd state (position is private; contents live in the
    table's inode/overlay maps, keyed by ino)."""

    path: str
    ino: int
    pos: int
    writable: bool


class _CrashPrep:
    """A prepared crash point: durable base + persistence dimensions.

    ``dims`` is immutable after :meth:`FileTable.crash_select` and is
    shared across forks; ``choices`` is per-fork (the search guesses a
    choice per dimension down different branches).
    """

    __slots__ = ("point", "durable_ns", "durable_data", "dims", "choices")

    def __init__(self, point, durable_ns, durable_data, dims, choices):
        self.point = point
        self.durable_ns = durable_ns
        self.durable_data = durable_data
        self.dims = dims
        self.choices = choices

    def fork(self) -> "_CrashPrep":
        return _CrashPrep(self.point, self.durable_ns, self.durable_data,
                          self.dims, list(self.choices))


# ----------------------------------------------------------------------
# The persistence model: durable state as a function of the log
# ----------------------------------------------------------------------


def apply_write(data: dict[int, bytearray], rec: tuple,
                block_size: int) -> None:
    """Apply one ``write`` record to a durable image (zero-extending)."""
    _, _seq, ino, block, off, payload = rec
    buf = data.setdefault(ino, bytearray())
    start = block * block_size + off
    end = start + len(payload)
    if end > len(buf):
        buf.extend(bytes(end - len(buf)))
    buf[start:end] = payload


def apply_ns(ns: dict[str, int], rec: tuple) -> None:
    """Apply one namespace record (``create``/``rename``) to *ns*."""
    if rec[0] == "create":
        ns[rec[2]] = rec[3]
    else:  # rename
        _, _seq, src, dst, ino = rec
        ns.pop(src, None)
        ns[dst] = ino


def replay_durable(
    log: Iterable[tuple],
    base_ns: dict[str, int],
    base_data: dict[int, bytes],
    upto: int,
    block_size: int,
) -> tuple[dict[str, int], dict[int, bytearray], list[tuple]]:
    """Durable state after a crash when ``log[:upto]`` has been issued.

    Walks the log applying *only* what barriers covered: ``fsync(ino)``
    retires that inode's pending data records and its creation record;
    ``sync`` retires everything pending, in seq order.  Returns
    ``(ns, data, pending)`` — the guaranteed-durable namespace and
    contents, plus the leftover *at-risk* records in seq order (issued
    before the crash but covered by no barrier; a crash may persist any
    legal subset of them, see :func:`crash_dimensions`).
    """
    ns = dict(base_ns)
    data = {ino: bytearray(b) for ino, b in base_data.items()}
    pend_data: dict[int, list[tuple]] = {}
    pend_ns: list[tuple] = []
    for rec in list(log)[:upto]:
        kind = rec[0]
        if kind == "write":
            pend_data.setdefault(rec[2], []).append(rec)
        elif kind in ("create", "rename"):
            pend_ns.append(rec)
        elif kind == "fsync":
            ino = rec[2]
            for w in pend_data.pop(ino, ()):
                apply_write(data, w, block_size)
            kept = []
            for r in pend_ns:
                if r[0] == "create" and r[3] == ino:
                    apply_ns(ns, r)
                else:
                    kept.append(r)
            pend_ns = kept
        elif kind == "sync":
            flushed = pend_ns + [
                w for recs in pend_data.values() for w in recs
            ]
            for r in sorted(flushed, key=lambda r: r[1]):
                if r[0] == "write":
                    apply_write(data, r, block_size)
                else:
                    apply_ns(ns, r)
            pend_data = {}
            pend_ns = []
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown record kind {kind!r}")
    pending = sorted(
        pend_ns + [w for recs in pend_data.values() for w in recs],
        key=lambda r: r[1],
    )
    return ns, data, pending


def crash_dimensions(pending: list[tuple]) -> tuple:
    """Group at-risk records into independent persistence dimensions.

    Data records group by ``(ino, block)``: the disk may persist any
    *seq-prefix* of a block's pending records (later writes to a block
    cannot land without the earlier ones — the cache writes back whole
    blocks), so a dimension with ``m`` records has ``m + 1`` options.
    Each namespace record is its own two-option dimension (lost or
    applied).  Dimensions are ordered by the seq of their first record —
    a property of the log alone, so every engine and every resumed
    worker enumerates identically.
    """
    index: dict[tuple, list[tuple]] = {}
    for rec in pending:
        if rec[0] == "write":
            key = ("blk", rec[2], rec[3])
        else:
            key = ("ns", rec[1])
        index.setdefault(key, []).append(rec)
    return tuple((key, tuple(recs)) for key, recs in index.items())


def dimension_options(dim: tuple) -> int:
    """Number of legal choices for one dimension."""
    key, recs = dim
    return len(recs) + 1 if key[0] == "blk" else 2


def chosen_records(dims: tuple, choices: list[int]) -> list[tuple]:
    """The records a crash image persists, given a choice per dimension
    (seq order, ready to apply over the durable base)."""
    applied: list[tuple] = []
    for (key, recs), k in zip(dims, choices):
        if key[0] == "blk":
            applied.extend(recs[:k])
        elif k:
            applied.extend(recs)
    applied.sort(key=lambda r: r[1])
    return applied


# ----------------------------------------------------------------------


class FileTable:
    """A guest's view of its files, forkable in O(open files + dirty
    blocks).

    Forking copies the fd table, the name->ino namespace and the
    volatile overlay, but shares every flushed :class:`FileData` inode;
    a barrier that must mutate a shared inode copies it first.  The
    overlay copy is what keeps the paper's isolation property intact
    for *unflushed* state too: siblings never observe each other's
    pending blocks.
    """

    def __init__(
        self,
        hostfs: Optional[HostFS] = None,
        policy: Optional[InterpositionPolicy] = None,
        audit: Optional[AuditLog] = None,
        stats: Optional[FileStats] = None,
    ):
        self.hostfs = hostfs if hostfs is not None else HostFS()
        self.policy = policy if policy is not None else PermissivePolicy()
        self.audit = audit if audit is not None else AuditLog()
        self.stats = stats if stats is not None else FileStats()
        self.block_size = self.hostfs.block_size
        self._fds: dict[int, _OpenFile] = {}
        #: This path's view of the namespace (includes pending creates
        #: and renames; the durable namespace is ``_base_ns`` + log).
        self._namespace: dict[str, int] = {}
        #: Flushed contents per inode (COW-shared across forks).
        self._inodes: dict[int, FileData] = {}
        #: Unflushed merged view per inode (flushed + pending applied).
        self._working: dict[int, bytearray] = {}
        #: Pending (unflushed) write records per inode, in seq order.
        self._pending: dict[int, list[tuple]] = {}
        #: Every record since the last rebase (crash commit), in order.
        self._oplog: list[tuple] = []
        #: Durable state at log start: path->ino and ino->contents.
        self._base_ns: dict[str, int] = {}
        self._base: dict[int, bytes] = {}
        self._crash: Optional[_CrashPrep] = None
        self._next_fd = 3  # 0-2 are stdio, handled by the console
        self._next_ino = 1
        self._next_seq = 0
        #: Bytes physically copied by this table (cost accounting).
        self.cow_bytes = 0
        # Materialise the backing store eagerly (sorted, so inode
        # numbering is a function of the store alone): backing files are
        # durable from the start, and crash images must include them
        # even when the guest never opened them.
        for path, backing in sorted(self.hostfs.snapshot_files().items()):
            ino = self._alloc_ino(backing)
            self._namespace[path] = ino
            self._base_ns[path] = ino

    # ------------------------------------------------------------------
    # Forking
    # ------------------------------------------------------------------

    def fork_cow(self) -> "FileTable":
        """Logical copy: shared flushed inodes, private overlay/positions."""
        clone = FileTable(self.hostfs, self.policy, self.audit, self.stats)
        clone._next_fd = self._next_fd
        clone._next_ino = self._next_ino
        clone._next_seq = self._next_seq
        clone._namespace = dict(self._namespace)
        clone._base_ns = dict(self._base_ns)
        clone._base = dict(self._base)  # immutable bytes, shared
        for fdata in self._inodes.values():
            fdata.refcount += 1
        clone._inodes = dict(self._inodes)
        for ino, work in self._working.items():
            clone._working[ino] = bytearray(work)
            clone.cow_bytes += len(work)
            self.stats.cow_bytes += len(work)
        clone._pending = {ino: list(recs)
                          for ino, recs in self._pending.items()}
        clone._oplog = list(self._oplog)
        for fd, of in self._fds.items():
            clone._fds[fd] = _OpenFile(of.path, of.ino, of.pos, of.writable)
        if self._crash is not None:
            clone._crash = self._crash.fork()
        return clone

    def free(self) -> None:
        """Drop all references held by this table."""
        for fdata in self._inodes.values():
            fdata.refcount -= 1
        self._inodes.clear()
        self._fds.clear()
        self._namespace.clear()
        self._working.clear()
        self._pending.clear()
        self._oplog.clear()

    def _own(self, ino: int) -> FileData:
        """Make *ino*'s flushed block exclusive to this table (COW)."""
        fdata = self._inodes[ino]
        if fdata.refcount == 1:
            return fdata
        fresh = FileData(bytes(fdata.data), ino=ino)
        fdata.refcount -= 1
        self._inodes[ino] = fresh
        self.cow_bytes += len(fresh.data)
        self.stats.cow_bytes += len(fresh.data)
        return fresh

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _log(self, rec: tuple) -> None:
        self._oplog.append(rec)
        self.stats.records += 1

    def _alloc_ino(self, initial: bytes) -> int:
        ino = self._next_ino
        self._next_ino += 1
        self._inodes[ino] = FileData(initial, ino=ino)
        self._base[ino] = bytes(initial)
        return ino

    def _view(self, ino: int):
        """Merged contents: overlay when dirty, else flushed."""
        if ino in self._working:
            return self._working[ino]
        return self._inodes[ino].data

    # ------------------------------------------------------------------
    # POSIX-ish operations (return value >= 0, or -errno)
    # ------------------------------------------------------------------

    def open(self, path: str, flags: int) -> int:
        errno = self.policy.check_open(path, flags)
        if errno is not None:
            self.audit.note("open", path, Verdict.DENY)
            return -errno
        if path in self._namespace:
            ino = self._namespace[path]
        else:
            backing = self.hostfs.get(path)
            if backing is None:
                if not flags & O_CREAT:
                    self.audit.note("open", f"{path} (ENOENT)", Verdict.DENY)
                    return -ENOENT
                ino = self._alloc_ino(b"")
                self._namespace[path] = ino
                # A fresh file exists only in the page cache until its
                # creation record is flushed (fsync of the file, or sync).
                self._log(("create", self._seq(), path, ino))
            else:
                # Backing file added to the HostFS after this table was
                # built: materialise it late, still durable from birth.
                ino = self._alloc_ino(backing)
                self._namespace[path] = ino
                self._base_ns[path] = ino
        fd = self._next_fd
        self._next_fd += 1
        writable = (flags & _ACCMODE) in (O_WRONLY, O_RDWR)
        self._fds[fd] = _OpenFile(path, ino, 0, writable)
        self.audit.note("open", path, Verdict.ALLOW, Containment.COW)
        return fd

    def close(self, fd: int) -> int:
        of = self._fds.pop(fd, None)
        if of is None:
            return -EBADF
        self.audit.note("close", of.path, Verdict.ALLOW)
        return 0

    def read(self, fd: int, n: int) -> bytes | int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        # Reads merge the flushed and volatile views: a range spanning a
        # flushed block and an unflushed appended block comes back
        # stitched (regression: tests/libos/test_files.py).
        view = self._view(of.ino)
        data = bytes(view[of.pos : of.pos + n])
        of.pos += len(data)
        self.audit.note("read", f"{of.path} {len(data)}B", Verdict.ALLOW)
        return data

    def write(self, fd: int, data: bytes) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        if not of.writable:
            self.audit.note("write", f"{of.path} (RO)", Verdict.DENY)
            return -EACCES
        if not data:
            return 0
        ino = of.ino
        work = self._working.get(ino)
        if work is None:
            base = self._inodes[ino].data
            work = bytearray(base)
            self._working[ino] = work
            self.cow_bytes += len(base)
            self.stats.cow_bytes += len(base)
        end = of.pos + len(data)
        if end > len(work):
            work.extend(bytes(end - len(work)))
        work[of.pos : end] = data
        # Record the write block-granularly: a multi-block write becomes
        # several records, so a crash can tear it at block boundaries.
        bs = self.block_size
        pend = self._pending.setdefault(ino, [])
        off = 0
        while off < len(data):
            block, boff = divmod(of.pos + off, bs)
            chunk = bytes(data[off : off + bs - boff])
            rec = ("write", self._seq(), ino, block, boff, chunk)
            self._log(rec)
            pend.append(rec)
            off += len(chunk)
        of.pos = end
        self.audit.note(
            "write", f"{of.path} {len(data)}B", Verdict.ALLOW, Containment.COW
        )
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        if whence == 0:
            pos = offset
        elif whence == 1:
            pos = of.pos + offset
        elif whence == 2:
            # SEEK_END is against the *merged* size: unflushed appended
            # blocks count (regression: tests/libos/test_files.py).
            pos = len(self._view(of.ino)) + offset
        else:
            return -EINVAL
        if pos < 0:
            return -EINVAL
        of.pos = pos
        return pos

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------

    def _flush_ino(self, ino: int) -> int:
        """Retire *ino*'s pending records into the flushed view."""
        pend = self._pending.pop(ino, None)
        count = 0
        if pend:
            fdata = self._own(ino)
            bs = self.block_size
            for rec in pend:
                _, _seq, _ino, block, off, payload = rec
                start = block * bs + off
                end = start + len(payload)
                if end > len(fdata.data):
                    fdata.data.extend(bytes(end - len(fdata.data)))
                fdata.data[start:end] = payload
            count = len(pend)
        self._working.pop(ino, None)
        self.stats.flushed_records += count
        return count

    def fsync(self, fd: int) -> int:
        """Per-inode barrier: this file's pending blocks — and, like a
        journalling filesystem, its creation record — become durable.
        Renames stay volatile until ``sync`` (directory-level barrier).

        Returns the number of data records flushed (>= 0), or -errno.
        """
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        flushed = self._flush_ino(of.ino)
        self._log(("fsync", self._seq(), of.ino))
        self.stats.fsyncs += 1
        self.audit.note("fsync", f"{of.path} {flushed} rec", Verdict.ALLOW,
                        Containment.COW)
        return flushed

    def sync(self) -> int:
        """Global barrier: every pending record — data and namespace
        (creates *and* renames) — becomes durable.

        Returns the number of data records flushed.
        """
        flushed = 0
        for ino in sorted(self._pending):
            flushed += self._flush_ino(ino)
        # Namespace records become durable too; the authoritative replay
        # happens in replay_durable, keyed off this log marker (_base_ns
        # itself stays frozen at the log-start state until a rebase).
        self._log(("sync", self._seq()))
        self.stats.syncs += 1
        self.audit.note("sync", f"{flushed} rec", Verdict.ALLOW,
                        Containment.COW)
        return flushed

    def rename(self, src: str, dst: str) -> int:
        """Move *src* to *dst* in the volatile namespace; durable only
        after ``sync`` (the classic rename-without-dir-sync hazard)."""
        ino = self._namespace.get(src)
        if ino is None:
            self.audit.note("rename", f"{src} (ENOENT)", Verdict.DENY)
            return -ENOENT
        del self._namespace[src]
        self._namespace[dst] = ino
        self._log(("rename", self._seq(), src, dst, ino))
        self.stats.renames += 1
        self.audit.note("rename", f"{src} -> {dst}", Verdict.ALLOW,
                        Containment.COW)
        return 0

    # ------------------------------------------------------------------
    # Crash simulation (the sys_crash_* surface)
    # ------------------------------------------------------------------

    def crash_select(self, point: int) -> int:
        """Prepare a crash after the first *point* log records were
        issued.  Returns the number of persistence dimensions (each to
        be fixed with :meth:`crash_set`), or -EINVAL."""
        if not 0 <= point <= len(self._oplog):
            return -EINVAL
        ns, data, pending = replay_durable(
            self._oplog, self._base_ns, self._base, point, self.block_size
        )
        dims = crash_dimensions(pending)
        self._crash = _CrashPrep(
            point, ns, {ino: bytes(b) for ino, b in data.items()},
            dims, [0] * len(dims),
        )
        self.stats.crash_selects += 1
        self.audit.note("crash_select", f"@{point} {len(dims)} dim",
                        Verdict.ALLOW, Containment.COW)
        return len(dims)

    def crash_opts(self, i: int) -> int:
        """Number of legal choices for dimension *i*, or -EINVAL."""
        if self._crash is None or not 0 <= i < len(self._crash.dims):
            return -EINVAL
        return dimension_options(self._crash.dims[i])

    def crash_set(self, i: int, k: int) -> int:
        """Fix dimension *i* to option *k* (how many of its pending
        records the crash image keeps), or -EINVAL."""
        if self._crash is None or not 0 <= i < len(self._crash.dims):
            return -EINVAL
        if not 0 <= k < dimension_options(self._crash.dims[i]):
            return -EINVAL
        self._crash.choices[i] = k
        return 0

    def crash_commit(self) -> int:
        """Materialise the selected crash image and *become* it.

        All fds are dropped (the crash "closed" them), the overlay and
        log are cleared, and the table rebases onto the crashed image —
        exactly what a remount sees.  Returns the number of at-risk
        records the image kept, or -EINVAL without a prior select.
        """
        prep = self._crash
        if prep is None:
            return -EINVAL
        applied = chosen_records(prep.dims, prep.choices)
        ns = dict(prep.durable_ns)
        data = {ino: bytearray(b) for ino, b in prep.durable_data.items()}
        for rec in applied:
            if rec[0] == "write":
                apply_write(data, rec, self.block_size)
            else:
                apply_ns(ns, rec)
        for fdata in self._inodes.values():
            fdata.refcount -= 1
        self._inodes = {}
        self._fds.clear()
        self._working.clear()
        self._pending.clear()
        self._oplog = []
        self._namespace = {}
        self._base_ns = {}
        self._base = {}
        for path, ino in ns.items():
            content = bytes(data.get(ino, b""))
            self._namespace[path] = ino
            self._base_ns[path] = ino
            if ino not in self._inodes:
                self._inodes[ino] = FileData(content, ino=ino)
                self._base[ino] = content
        self._crash = None
        self.stats.crash_commits += 1
        self.audit.note("crash_commit", f"{len(applied)} rec kept",
                        Verdict.ALLOW, Containment.COW)
        return len(applied)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def contents(self, path: str) -> Optional[bytes]:
        """This path's merged view of *path* (None if not present)."""
        ino = self._namespace.get(path)
        return bytes(self._view(ino)) if ino is not None else None

    def durable_contents(self, path: str) -> Optional[bytes]:
        """What *path* is guaranteed to hold after a crash right now
        (barrier-covered state only; None if not durably present)."""
        ns, data, _pending = replay_durable(
            self._oplog, self._base_ns, self._base,
            len(self._oplog), self.block_size,
        )
        ino = ns.get(path)
        return bytes(data.get(ino, b"")) if ino is not None else None

    def durable_paths(self) -> list[str]:
        ns, _data, _pending = replay_durable(
            self._oplog, self._base_ns, self._base,
            len(self._oplog), self.block_size,
        )
        return sorted(ns)

    def paths(self) -> list[str]:
        return sorted(self._namespace)

    @property
    def oplog(self) -> tuple:
        """The operation log since the last rebase (read-only)."""
        return tuple(self._oplog)

    def crash_dims(self) -> Optional[list[dict]]:
        """Describe the prepared crash's dimensions (None w/o select)."""
        if self._crash is None:
            return None
        out = []
        for key, recs in self._crash.dims:
            if key[0] == "blk":
                out.append({
                    "kind": "block", "ino": key[1], "block": key[2],
                    "options": len(recs) + 1,
                    "seqs": [r[1] for r in recs],
                })
            else:
                rec = recs[0]
                out.append({
                    "kind": rec[0], "seq": rec[1], "options": 2,
                    "detail": rec[2:],
                })
        return out

    def open_fds(self) -> list[int]:
        return sorted(self._fds)
