"""Copy-on-write file layer.

Each partial candidate includes "a logical copy of open disk files" (§4).
We realise that with whole-file copy-on-write: file contents live in
refcounted :class:`FileData` blocks; forking a :class:`FileTable` shares
every block and copies it only when an extension writes.  This fixes the
fork-based strawman's flaw that "changes made to files are visible to
other processes" (§3): siblings never see each other's file writes.

The :class:`HostFS` is the immutable backing store (the host filesystem
as the libOS sees it); guests materialise private COW copies on open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.interpose.policy import (
    AuditLog,
    Containment,
    InterpositionPolicy,
    PermissivePolicy,
    Verdict,
)

EBADF = 9
EACCES = 13
ENOENT = 2
EINVAL = 22

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
_ACCMODE = 3


class HostFS:
    """Immutable host-side backing files (path -> initial contents)."""

    def __init__(self, files: Optional[dict[str, bytes]] = None):
        self._files = dict(files or {})

    def add(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def get(self, path: str) -> Optional[bytes]:
        return self._files.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._files


class FileData:
    """Refcounted file contents; copied when a sharer writes."""

    __slots__ = ("data", "refcount")

    def __init__(self, data: bytes = b""):
        self.data = bytearray(data)
        self.refcount = 1


@dataclass
class _OpenFile:
    """Per-table fd state (position is private; data may be shared)."""

    path: str
    fdata: FileData
    pos: int
    writable: bool


class FileTable:
    """A guest's view of its files, forkable in O(open files).

    Forking copies the fd table and the name->data namespace but shares
    all :class:`FileData` blocks; a write to a shared block copies it
    first (whole-file COW — file granularity keeps the model simple while
    preserving the isolation property the paper needs).
    """

    def __init__(
        self,
        hostfs: Optional[HostFS] = None,
        policy: Optional[InterpositionPolicy] = None,
        audit: Optional[AuditLog] = None,
    ):
        self.hostfs = hostfs if hostfs is not None else HostFS()
        self.policy = policy if policy is not None else PermissivePolicy()
        self.audit = audit if audit is not None else AuditLog()
        self._fds: dict[int, _OpenFile] = {}
        #: This path's view of file contents by name (COW-shared blocks).
        self._namespace: dict[str, FileData] = {}
        self._next_fd = 3  # 0-2 are stdio, handled by the console
        #: Bytes physically copied by file-level COW (cost accounting).
        self.cow_bytes = 0

    # ------------------------------------------------------------------
    # Forking
    # ------------------------------------------------------------------

    def fork_cow(self) -> "FileTable":
        """Logical copy: shared data blocks, private positions."""
        clone = FileTable(self.hostfs, self.policy, self.audit)
        clone._next_fd = self._next_fd
        for name, fdata in self._namespace.items():
            fdata.refcount += 1
            clone._namespace[name] = fdata
        for fd, of in self._fds.items():
            of.fdata.refcount += 1
            clone._fds[fd] = _OpenFile(of.path, of.fdata, of.pos, of.writable)
        return clone

    def free(self) -> None:
        """Drop all references held by this table."""
        for of in self._fds.values():
            of.fdata.refcount -= 1
        for fdata in self._namespace.values():
            fdata.refcount -= 1
        self._fds.clear()
        self._namespace.clear()

    def _own(self, of: _OpenFile) -> FileData:
        """Make *of*'s data block exclusive to this table (COW).

        A block is exclusive when every reference to it comes from this
        table (its fds plus its namespace entry).  Otherwise the block is
        shared with a snapshot or sibling and must be copied, rebinding
        all of this table's aliases to the private copy.
        """
        fdata = of.fdata
        local_refs = sum(1 for o in self._fds.values() if o.fdata is fdata)
        if self._namespace.get(of.path) is fdata:
            local_refs += 1
        if fdata.refcount == local_refs:
            return fdata
        fresh = FileData(bytes(fdata.data))
        fresh.refcount = 0
        self.cow_bytes += len(fresh.data)
        for other in self._fds.values():
            if other.fdata is fdata:
                other.fdata = fresh
                fresh.refcount += 1
                fdata.refcount -= 1
        if self._namespace.get(of.path) is fdata:
            self._namespace[of.path] = fresh
            fresh.refcount += 1
            fdata.refcount -= 1
        return fresh

    # ------------------------------------------------------------------
    # POSIX-ish operations (return value >= 0, or -errno)
    # ------------------------------------------------------------------

    def open(self, path: str, flags: int) -> int:
        errno = self.policy.check_open(path, flags)
        if errno is not None:
            self.audit.note("open", path, Verdict.DENY)
            return -errno
        if path in self._namespace:
            fdata = self._namespace[path]
        else:
            backing = self.hostfs.get(path)
            if backing is None:
                if not flags & O_CREAT:
                    self.audit.note("open", f"{path} (ENOENT)", Verdict.DENY)
                    return -ENOENT
                fdata = FileData()
            else:
                fdata = FileData(backing)
            self._namespace[path] = fdata
        fdata.refcount += 1
        fd = self._next_fd
        self._next_fd += 1
        writable = (flags & _ACCMODE) in (O_WRONLY, O_RDWR)
        self._fds[fd] = _OpenFile(path, fdata, 0, writable)
        self.audit.note("open", path, Verdict.ALLOW, Containment.COW)
        return fd

    def close(self, fd: int) -> int:
        of = self._fds.pop(fd, None)
        if of is None:
            return -EBADF
        of.fdata.refcount -= 1
        self.audit.note("close", of.path, Verdict.ALLOW)
        return 0

    def read(self, fd: int, n: int) -> bytes | int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        data = bytes(of.fdata.data[of.pos : of.pos + n])
        of.pos += len(data)
        self.audit.note("read", f"{of.path} {len(data)}B", Verdict.ALLOW)
        return data

    def write(self, fd: int, data: bytes) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        if not of.writable:
            self.audit.note("write", f"{of.path} (RO)", Verdict.DENY)
            return -EACCES
        fdata = self._own(of)
        end = of.pos + len(data)
        if end > len(fdata.data):
            fdata.data.extend(bytes(end - len(fdata.data)))
        fdata.data[of.pos : end] = data
        of.pos = end
        self.audit.note(
            "write", f"{of.path} {len(data)}B", Verdict.ALLOW, Containment.COW
        )
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        of = self._fds.get(fd)
        if of is None:
            return -EBADF
        if whence == 0:
            pos = offset
        elif whence == 1:
            pos = of.pos + offset
        elif whence == 2:
            pos = len(of.fdata.data) + offset
        else:
            return -EINVAL
        if pos < 0:
            return -EINVAL
        of.pos = pos
        return pos

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def contents(self, path: str) -> Optional[bytes]:
        """This path's view of *path* (None if never materialised)."""
        fdata = self._namespace.get(path)
        return bytes(fdata.data) if fdata is not None else None

    def open_fds(self) -> list[int]:
        return sorted(self._fds)
