"""The libOS facade: guest lifecycle and VM-exit handling.

One :class:`LibOS` instance manages one guest program's executions.  It
owns the loader, the syscall dispatcher and the interposition policy; the
engine (:mod:`repro.core.machine`) owns the snapshot manager and the
search strategy and consumes the typed actions produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.assembler import Program
from repro.cpu.registers import RegisterFile
from repro.interpose.policy import (
    AuditLog,
    InterpositionPolicy,
    SoundMinimalPolicy,
)
from repro.libos.console import Console
from repro.libos.files import FileStats, FileTable, HostFS
from repro.libos.loader import load_program
from repro.libos.syscalls import (
    Action,
    ContinueAction,
    ExitAction,
    KillAction,
    SyscallDispatcher,
)
from repro.mem.addrspace import AddressSpace
from repro.mem.frames import FramePool
from repro.vmm.vcpu import VCpu, VmExit, VmExitReason


@dataclass
class ExecState:
    """The mutable state of one executing extension step."""

    space: AddressSpace
    files: FileTable
    console: Console

    def free(self) -> None:
        self.space.free()
        self.files.free()


class LibOS:
    """The backtracking libOS of Figure 2 (mechanism only, no policy).

    Parameters
    ----------
    policy:
        Interposition policy; defaults to the paper's sound-but-minimal
        design point.
    hostfs:
        Backing files visible to guests via ``open``.
    input:
        Scripted stdin (:class:`repro.libos.console.InputSource`) for
        guests that read fd 0; without one those reads return EOF.
    """

    def __init__(
        self,
        policy: Optional[InterpositionPolicy] = None,
        hostfs: Optional[HostFS] = None,
        input=None,
    ):
        self.policy = policy if policy is not None else SoundMinimalPolicy()
        self.hostfs = hostfs if hostfs is not None else HostFS()
        self.audit = AuditLog()
        #: Aggregate file-layer counters across every fork of the file
        #: table (accounting, like the audit log — not per-path state).
        self.file_stats = FileStats()
        self.dispatcher = SyscallDispatcher(self.policy, input=input)
        #: Page faults the libOS saw escape the COW layer (hard faults).
        self.hard_faults = 0

    def load(self, program: Program, pool: FramePool) -> tuple[ExecState, RegisterFile]:
        """Create the initial execution state for *program*."""
        space, regs = load_program(program, pool)
        files = FileTable(self.hostfs, self.policy, self.audit,
                          stats=self.file_stats)
        return ExecState(space, files, Console()), regs

    def handle_exit(self, exit_event: VmExit, vcpu: VCpu, state: ExecState) -> Action:
        """Turn a VM exit into an engine-visible action.

        ``SYSCALL`` exits are dispatched; ``HLT`` is treated as a clean
        ``exit(rax)`` (the idiom our guests use to finish); faults and
        step-budget expiry kill the offending extension, mirroring how
        the real libOS would reflect an unhandled fault.
        """
        reason = exit_event.reason
        if reason is VmExitReason.SYSCALL:
            return self.dispatcher.dispatch(vcpu, state.space, state.files,
                                            state.console)
        if reason is VmExitReason.HLT:
            return ExitAction(status=_low32(vcpu.regs.rax))
        if reason is VmExitReason.PAGE_FAULT:
            self.hard_faults += 1
            return KillAction(f"unhandled page fault: {exit_event.fault}")
        if reason is VmExitReason.CPU_EXCEPTION:
            return KillAction(f"cpu exception: {exit_event.fault}")
        if reason is VmExitReason.STEP_LIMIT:
            return KillAction("extension step budget exhausted")
        raise AssertionError(f"unhandled exit {exit_event!r}")  # pragma: no cover


def _low32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value
