"""Dune-like virtualization layer.

The paper builds on Dune [1], which uses VT-x to run a libOS at non-root
ring 0 and the application at non-root ring 3, with the host Linux kernel
at root ring 0 (Figure 2).  This package models that control structure:

* :class:`Vmcs` -- per-vCPU state the hardware would keep (guest
  registers live in the interpreter; the VMCS tracks rings and exit info);
* :class:`VCpu` -- one virtual CPU: enters the guest, translates CPU
  stops into typed :class:`VmExit` events, and counts exits per reason
  (the F2 architecture-accounting benchmark reads these counters);
* :class:`Ring` -- the privilege levels of Figure 2.

The "hardware" here is :mod:`repro.cpu`; what this layer adds is the
boundary crossing: guest execution always returns to the libOS through a
VM exit, never by ad-hoc callbacks.
"""

from repro.vmm.vcpu import Ring, VCpu, Vmcs, VmExit, VmExitReason

__all__ = ["Ring", "VCpu", "Vmcs", "VmExit", "VmExitReason"]
