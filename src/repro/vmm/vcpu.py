"""Virtual CPU: the VM-entry/VM-exit boundary.

A :class:`VCpu` owns an interpreter and presents the libOS with the
hardware-virtualization contract: call :meth:`VCpu.enter` (VMRESUME), get
back a :class:`VmExit` naming why the guest stopped.  System calls, halts,
page faults the MMU could not resolve, CPU exceptions and step-budget
expiry all surface as exits; the libOS decides what happens next.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.interpreter import (
    CpuExit,
    DivideError,
    ExitReason,
    Interpreter,
    InvalidOpcodeError,
)
from repro.cpu.registers import RegisterFile
from repro.mem.addrspace import AddressSpace
from repro.mem.faults import PageFaultError


class Ring(enum.Enum):
    """Privilege levels of the Figure 2 architecture."""

    ROOT_RING0 = "root-ring0"          # host Linux kernel
    NON_ROOT_RING0 = "non-root-ring0"  # the backtracking libOS
    NON_ROOT_RING3 = "non-root-ring3"  # the guest application


class VmExitReason(enum.Enum):
    """Why control returned from the guest to the libOS."""

    SYSCALL = "syscall"
    HLT = "hlt"
    PAGE_FAULT = "page_fault"
    CPU_EXCEPTION = "cpu_exception"
    STEP_LIMIT = "step_limit"


@dataclass
class VmExit:
    """One VM exit event, with its qualification payload."""

    reason: VmExitReason
    steps: int
    #: For PAGE_FAULT / CPU_EXCEPTION: the underlying exception object.
    fault: Optional[Exception] = None


@dataclass
class Vmcs:
    """The software VMCS: per-vCPU control and accounting state."""

    current_ring: Ring = Ring.NON_ROOT_RING0
    entries: int = 0
    exits: int = 0
    exit_counts: Counter = field(default_factory=Counter)
    guest_instructions: int = 0


class VCpu:
    """One virtual CPU running a guest at non-root ring 3."""

    def __init__(self, cpu_id: int = 0, icache: Optional[dict] = None):
        self.cpu_id = cpu_id
        self.vmcs = Vmcs()
        self.regs = RegisterFile()
        self._icache: dict = icache if icache is not None else {}
        self._interp: Optional[Interpreter] = None

    def attach(self, space: AddressSpace) -> None:
        """Point the vCPU at a guest address space (e.g. after restore)."""
        if self._interp is None:
            self._interp = Interpreter(space, self.regs, self._icache)
        else:
            self._interp.attach_space(space)

    @property
    def space(self) -> AddressSpace:
        if self._interp is None:
            raise RuntimeError("no address space attached")
        return self._interp.space

    def enter(self, max_steps: Optional[int] = None) -> VmExit:
        """VMRESUME: run the guest until the next VM exit."""
        if self._interp is None:
            raise RuntimeError("no address space attached")
        self.vmcs.entries += 1
        self.vmcs.current_ring = Ring.NON_ROOT_RING3
        cpu_exit = self._interp.run(max_steps=max_steps)
        self.vmcs.current_ring = Ring.NON_ROOT_RING0
        self.vmcs.exits += 1
        self.vmcs.guest_instructions += cpu_exit.steps
        vm_exit = _translate(cpu_exit)
        self.vmcs.exit_counts[vm_exit.reason] += 1
        return vm_exit


def _translate(cpu_exit: CpuExit) -> VmExit:
    if cpu_exit.reason is ExitReason.SYSCALL:
        return VmExit(VmExitReason.SYSCALL, cpu_exit.steps)
    if cpu_exit.reason is ExitReason.HLT:
        return VmExit(VmExitReason.HLT, cpu_exit.steps)
    if cpu_exit.reason is ExitReason.STEP_LIMIT:
        return VmExit(VmExitReason.STEP_LIMIT, cpu_exit.steps)
    fault = cpu_exit.fault
    if isinstance(fault, PageFaultError):
        return VmExit(VmExitReason.PAGE_FAULT, cpu_exit.steps, fault=fault)
    if isinstance(fault, (DivideError, InvalidOpcodeError)):
        return VmExit(VmExitReason.CPU_EXCEPTION, cpu_exit.steps, fault=fault)
    raise AssertionError(f"unmapped CPU exit {cpu_exit!r}")  # pragma: no cover
