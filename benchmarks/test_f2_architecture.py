"""F2 — Figure 2: the architecture walk.

Accounts for every layer of the Figure 2 stack on a real guest run:
ring-3 guest instructions, VM exits by reason, libOS syscall dispatch
counts, page-fault/COW activity in the virtual-memory subsystem, TLB
shootdowns at snapshot points, and snapshot-manager traffic driven by
the search-strategy scheduler.
"""

from repro.bench import Table
from repro.core.machine import MachineEngine
from repro.core.sysno import (
    SYS_EXIT,
    SYS_GUESS,
    SYS_GUESS_FAIL,
    SYS_GUESS_STRATEGY,
    SYS_WRITE,
)
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm


def run_instrumented():
    engine = MachineEngine("dfs")
    result = engine.run(nqueens_asm(6))
    return engine, result


def test_f2_layer_accounting(benchmark, show):
    engine, result = benchmark(run_instrumented)
    extra = result.stats.extra
    exits = extra["vm_exit_counts"]
    syscalls = extra["syscall_counts"]

    # Guest ring 3 -> VM exit boundary: every syscall the guest made is
    # one SYSCALL exit handled at (simulated) non-root ring 0.
    assert exits["syscall"] == sum(syscalls.values())
    # The strategy evaluated one extension per restore plus the root.
    assert extra["snapshots_restored"] == result.stats.evaluations - 1
    # Every candidate is one snapshot taken at a sys_guess site.
    assert extra["snapshots_taken"] == syscalls[SYS_GUESS] == result.stats.candidates
    # Terminations: every path ends in exactly one fail or exit.
    assert syscalls[SYS_GUESS_FAIL] == result.stats.fails
    assert syscalls[SYS_EXIT] == len(result.solutions) == KNOWN_SOLUTION_COUNTS[6]
    assert syscalls[SYS_GUESS_STRATEGY] == 1

    table = Table(
        "F2: per-layer accounting, n-queens N=6 (Figure 2 stack)",
        ["layer", "event", "count"],
    )
    table.add("guest (non-root ring 3)", "instructions", extra["guest_instructions"])
    table.add("vmm boundary", "vm entries/exits", extra["vm_exits"])
    table.add("vmm boundary", "syscall exits", exits["syscall"])
    table.add("libOS (non-root ring 0)", "sys_guess", syscalls[SYS_GUESS])
    table.add("libOS (non-root ring 0)", "sys_guess_fail", syscalls[SYS_GUESS_FAIL])
    table.add("libOS (non-root ring 0)", "write(console)", syscalls.get(SYS_WRITE, 0))
    table.add("snapshot manager", "taken", extra["snapshots_taken"])
    table.add("snapshot manager", "restored", extra["snapshots_restored"])
    table.add("snapshot manager", "peak live", extra["snapshots_peak_live"])
    table.add("virtual memory", "frames copied (COW)", extra["frames_copied"])
    table.add("virtual memory", "peak frames", extra["frames_peak"])
    show(table)


def test_f2_cow_faults_bounded_by_writes(benchmark):
    """COW work is bounded by pages *written* per extension, not by the
    address-space size — the property hardware nested paging gives the
    real system."""
    engine, result = benchmark(run_instrumented)
    extra = result.stats.extra
    # n-queens dirties only the few data/stack pages it writes: the
    # frames copied per evaluation must stay in the single digits.
    per_eval = extra["frames_copied"] / max(result.stats.evaluations, 1)
    assert per_eval < 8, f"COW copies per evaluation too high: {per_eval}"
