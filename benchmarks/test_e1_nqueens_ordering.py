"""E1 — §5's toy-problem ordering.

"When applied to toy applications like n-queens, our prototype performs
(as expected) substantially worse than a hand-coded implementation, but
better than a Prolog implementation running on XSB."

We reproduce the ordering hand-coded < system-level snapshots < Prolog
on the same problem.  Caveat recorded in EXPERIMENTS.md: both our CPU
and our Prolog engine are Python interpreters, which compresses the
middle of the range compared to native hardware — the *ordering* is the
claim under test, plus the bookkeeping contrast (trail writes per
solution vs zero guest-side bookkeeping).
"""

from repro.baselines import handcoded_nqueens_count
from repro.bench import Table, time_once
from repro.core.machine import MachineEngine
from repro.prolog.library import count_nqueens_solutions
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm

N = 8


def test_e1_ordering(benchmark, show):
    t_hand, hand_count = time_once(lambda: handcoded_nqueens_count(N))
    t_prolog, (prolog_count, prolog_engine) = time_once(
        lambda: count_nqueens_solutions(N)
    )

    result = benchmark(lambda: MachineEngine("dfs").run(nqueens_asm(N)))
    t_snap, _ = time_once(lambda: MachineEngine("dfs").run(nqueens_asm(N)))

    assert hand_count == prolog_count == len(result.solutions) \
        == KNOWN_SOLUTION_COUNTS[N]

    table = Table(
        f"E1: n-queens N={N} — hand-coded vs snapshots vs Prolog",
        ["implementation", "time (s)", "slowdown vs hand",
         "guest bookkeeping"],
    )
    table.add("hand-coded (native)", t_hand, 1.0, "explicit undo in code")
    table.add(
        "system-level snapshots", t_snap, t_snap / t_hand,
        "none (0 undo ops)",
    )
    table.add(
        "Prolog (WAM-style)", t_prolog, t_prolog / t_hand,
        f"{prolog_engine.stats.trail_writes:,} trail writes",
    )
    show(table)

    # The §5 ordering: hand-coded < snapshots < Prolog.
    assert t_hand < t_snap
    assert t_snap < t_prolog, (
        f"snapshot engine ({t_snap:.2f}s) should beat Prolog "
        f"({t_prolog:.2f}s)"
    )


def test_e1_bookkeeping_contrast(benchmark):
    """The structural half of the claim: Prolog pays per-binding trail
    bookkeeping; the snapshot guest executes zero undo operations."""
    _count, engine = benchmark(lambda: count_nqueens_solutions(6))
    assert engine.stats.trail_writes > 1000
    # Machine-guest source contains no undo path at all: the fail label
    # goes straight to sys_guess_fail.
    source = nqueens_asm(6)
    fail_block = source.split("fail:")[1]
    assert "mov" not in fail_block.replace(
        "mov   rax, 0x1001", ""
    ).split("syscall")[0]
