"""E4 — §2's S2E claim: snapshot state forking vs software COW.

"S2E [...] is currently implemented by snapshotting in software all
QEMU data structures [...] System-level backtracking can remove all the
ad-hoc instrumentation and cut several layers of indirection."

Same symbolic explorer, same guest, two forking substrates.  Claims
under test:

* snapshot fork cost is O(1); software-COW fork cost is O(state pages),
  so the gap grows with state (ballast) size;
* the software backend interposes on every concrete write; the snapshot
  backend interposes on none;
* both backends discover identical path sets.
"""

from repro.bench import Table, fmt_ratio, time_once
from repro.symex import SymbolicExplorer
from repro.symex.programs import branch_tree

DEPTH = 6
BALLASTS = [0, 64 * 4096, 512 * 4096]  # 0 / 256 KiB / 2 MiB


def explore(backend: str, ballast: int):
    src, sym = branch_tree(DEPTH, writes_per_level=2)
    return SymbolicExplorer(src, sym, backend=backend, ballast=ballast).run()


def test_e4_fork_cost_scaling(benchmark, show):
    rows = []
    for ballast in BALLASTS:
        # min-of-2 wall clocks: the suite runs under load and a single
        # sample is too noisy for an ordering assertion.
        t_snap, snap = time_once(lambda b=ballast: explore("snapshot", b))
        t_snap = min(t_snap, time_once(lambda b=ballast: explore("snapshot", b))[0])
        t_sw, sw = time_once(lambda b=ballast: explore("swcow", b))
        t_sw = min(t_sw, time_once(lambda b=ballast: explore("swcow", b))[0])
        assert snap.path_count == sw.path_count == 2 ** DEPTH
        rows.append((ballast, t_snap, snap, t_sw, sw))

    benchmark(lambda: explore("snapshot", BALLASTS[0]))

    table = Table(
        f"E4: symbolic state forking, branch tree depth={DEPTH}",
        ["state ballast (KiB)", "snap fork work", "swcow fork work",
         "swcow instr. writes", "snap time (s)", "swcow time (s)",
         "swcow/snap time"],
    )
    for ballast, t_snap, snap, t_sw, sw in rows:
        table.add(
            ballast // 1024,
            snap.extra["fork_work"], sw.extra["fork_work"],
            sw.extra["instrumented_writes"],
            t_snap, t_sw, fmt_ratio(t_sw, t_snap),
        )
    show(table)

    # O(1) vs O(state): snapshot fork work is flat across ballast sizes;
    # software-COW fork work grows with them.
    snap_work = [r[2].extra["fork_work"] for r in rows]
    sw_work = [r[4].extra["fork_work"] for r in rows]
    assert snap_work[0] == snap_work[-1]
    assert sw_work[-1] > 5 * sw_work[0]
    # Per-write instrumentation exists only in the software backend.
    assert rows[0][4].extra["instrumented_writes"] > 0
    assert rows[0][2].extra["instrumented_writes"] == 0
    # With a large state the snapshot backend wins wall-clock too.
    assert rows[-1][1] < rows[-1][3]


def test_e4_agreement(benchmark):
    """Both substrates must explore the same path set (correctness)."""
    result = benchmark(lambda: explore("snapshot", 0))
    other = explore("swcow", 0)
    assert sorted(p.status for p in result.paths) == sorted(
        p.status for p in other.paths
    )
    assert result.bugs == other.bugs == []
