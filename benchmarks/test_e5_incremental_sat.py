"""E5 — §2's incremental-solver claim.

"An incremental solver given formula p immediately followed by formula
p∧q can solve both in less time than solving p and then solving p∧q
from scratch without leveraging the knowledge of p.  By creating a
lightweight snapshot for solved problem p, we can ensure that p∧q is
solved incrementally."

We solve a hard base p near the 3-SAT phase transition, then extend it
with successive clause batches q1..qk, comparing the solver-state-
snapshot path (clone: learned clauses and heuristics inherited) against
from-scratch re-solving.  The win must exist and grow with |p|.
"""

from repro.bench import Table, fmt_ratio, time_once
from repro.sat.gen import incremental_batches
from repro.sat.service import IncrementalSolverService

BATCH, STEPS = 15, 5
SIZES = [60, 100, 150]  # variables; clauses = 4.2x


def run_chain(incremental: bool, num_vars: int):
    base, steps = incremental_batches(
        num_vars, int(num_vars * 4.2), BATCH, STEPS, seed=7
    )
    service = IncrementalSolverService(incremental=incremental)
    outcome = service.solve(base)
    assert outcome.sat is True
    ref = outcome.ref
    for batch in steps:
        outcome = service.extend(ref, batch)
        assert outcome.sat is True
        ref = outcome.ref
    return service


def test_e5_incremental_vs_scratch(benchmark, show):
    rows = []
    for num_vars in SIZES:
        t_inc, inc = time_once(lambda n=num_vars: run_chain(True, n))
        t_scr, scr = time_once(lambda n=num_vars: run_chain(False, n))
        rows.append((num_vars, t_inc, inc, t_scr, scr))

    benchmark(lambda: run_chain(True, SIZES[0]))

    table = Table(
        f"E5: p then p∧q1..q{STEPS} — incremental (snapshot) vs scratch",
        ["vars in p", "inc conflicts", "scratch conflicts",
         "conflict ratio", "inc time (s)", "scratch time (s)",
         "time speedup"],
    )
    for num_vars, t_inc, inc, t_scr, scr in rows:
        table.add(
            num_vars, inc.total_conflicts, scr.total_conflicts,
            fmt_ratio(scr.total_conflicts, max(inc.total_conflicts, 1)),
            t_inc, t_scr, fmt_ratio(t_scr, t_inc),
        )
    show(table)

    # The claim: incremental beats scratch on every size, by conflicts
    # and by wall-clock, with a clear margin at the largest size.
    for num_vars, t_inc, inc, t_scr, scr in rows:
        assert inc.total_conflicts < scr.total_conflicts
    assert rows[-1][3] > 2 * rows[-1][1]  # >=2x wall-clock at 150 vars


def test_e5_learned_state_is_inherited(benchmark):
    """The mechanism: the clone carries p's learned clauses into p∧q."""
    base, steps = incremental_batches(100, 420, BATCH, 1, seed=7)
    service = IncrementalSolverService(incremental=True)
    first = service.solve(base)

    def extend_once():
        return service.extend(first.ref, steps[0])

    outcome = benchmark(extend_once)
    assert outcome.inherited_learned > 0
