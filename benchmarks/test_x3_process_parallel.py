"""X3 (extension) — real process parallelism via replay rehydration.

X1 simulates Figure 2's multi-core exploration inside one process; X3
runs it for real: the coordinator shards decision-prefix tasks across
worker processes, each of which rehydrates its subtree by replay and
explores it with local snapshots.  The bench records sequential vs
N-worker wall clock on find-all 8-queens into ``BENCH_parallel.json`` at
the repository root, together with the cost counters that explain the
ratio (replay overhead, tasks, IPC round-trips).

Speedup is hardware-dependent: on a single-core container the process
engine *loses* (same work + replay + IPC, no parallelism), so the >= 1.5x
acceptance assertion is gated on having at least 4 usable cores.  The
recorded JSON always carries the honest measurement and the core count
it was measured on.
"""

import json
import time
from pathlib import Path

from benchmarks._gates import gates_forced, record_gate, usable_cores
from repro.bench import Table
from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

N = 8
WORKERS = 4
TASK_STEP_BUDGET = 8_000
#: Forced-gate bound for serial hardware: the process engine may lose
#: (same work + replay + IPC, no parallelism) but must not collapse.
SERIAL_SPEEDUP_FLOOR = 0.05
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def test_x3_process_parallel_speedup(show):
    guest = nqueens_asm(N)

    t0 = time.perf_counter()
    sequential = MachineEngine().run(guest)
    seq_s = time.perf_counter() - t0
    expected = sorted(boards_from_result(sequential))
    assert len(expected) == KNOWN_SOLUTION_COUNTS[N]

    # Forced gates double as a distributed smoke: the measured leg runs
    # over loopback TCP workers instead of pipes.
    forced = gates_forced() and usable_cores() < 4
    transport = "tcp" if forced else "pipe"
    engine = ProcessParallelEngine(
        workers=WORKERS, task_step_budget=TASK_STEP_BUDGET,
        transport=transport,
    )
    t0 = time.perf_counter()
    parallel = engine.run(guest)
    par_s = time.perf_counter() - t0
    assert sorted(boards_from_result(parallel)) == expected
    assert parallel.exhausted

    extra = parallel.stats.extra
    cores = usable_cores()
    speedup = seq_s / par_s if par_s else float("inf")

    table = Table(
        f"X3: process-parallel search, n-queens N={N}",
        ["config", "wall s", "speedup", "tasks", "replay insns",
         "explore insns"],
    )
    table.add("sequential", f"{seq_s:.3f}", "1.00x", 1, 0,
              sequential.stats.extra["guest_instructions"])
    table.add(f"{WORKERS} workers ({cores} cores)", f"{par_s:.3f}",
              f"{speedup:.2f}x", extra["tasks_completed"],
              extra["replay_steps"], extra["guest_instructions"])
    show(table)

    record = {
        "workload": f"nqueens-{N}-find-all",
        "solutions": len(expected),
        "cores_available": cores,
        "workers": WORKERS,
        "task_step_budget": TASK_STEP_BUDGET,
        "sequential_s": round(seq_s, 4),
        "parallel_s": round(par_s, 4),
        "speedup": round(speedup, 3),
        "tasks_completed": extra["tasks_completed"],
        "tasks_spilled": extra["tasks_spilled"],
        "peak_task_frontier": extra["peak_task_frontier"],
        "replay_steps": extra["replay_steps"],
        "explore_steps": extra["guest_instructions"],
        "sequential_steps": sequential.stats.extra["guest_instructions"],
        "worker_crashes": extra["worker_crashes"],
        "transport": transport,
    }
    gate_ran = cores >= 4 or gates_forced()
    record_gate(
        record, "speedup", gate_ran, forced, transport=transport,
        bound=(1.5 if cores >= 4 else SERIAL_SPEEDUP_FLOOR),
    )
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Work conservation holds on any hardware: the cluster explores the
    # same instructions the sequential engine does, paying replay on top.
    assert record["explore_steps"] == record["sequential_steps"]
    assert record["replay_steps"] > 0

    # The strict speedup claim needs real parallel hardware; forced
    # gates assert the serial bounded-slowdown bar instead of skipping.
    if cores >= 4:
        assert speedup >= 1.5, (
            f"expected >=1.5x on {cores} cores, measured {speedup:.2f}x"
        )
    elif gates_forced():
        assert speedup >= SERIAL_SPEEDUP_FLOOR, (
            f"forced gate: {transport} engine collapsed to "
            f"{speedup:.3f}x on {cores} core(s)"
        )


def test_x3_worker_scaling(show):
    """Smaller instance, worker sweep: correctness at every width and the
    sharding overhead profile (tasks and replay grow as budgets shrink)."""
    guest = nqueens_asm(6)
    expected = sorted(boards_from_result(MachineEngine().run(guest)))

    table = Table(
        "X3: worker sweep, n-queens N=6",
        ["workers", "wall s", "tasks", "replay insns"],
    )
    for workers in (1, 2, 4):
        engine = ProcessParallelEngine(workers=workers, task_step_budget=3000)
        t0 = time.perf_counter()
        result = engine.run(guest)
        wall = time.perf_counter() - t0
        assert sorted(boards_from_result(result)) == expected
        extra = result.stats.extra
        table.add(workers, f"{wall:.3f}", extra["tasks_completed"],
                  extra["replay_steps"])
    show(table)
