"""X1 (extension) — Figure 2's multi-vCPU exploration.

The paper's architecture draws one extension-evaluation box per core.
This bench drives the multi-worker engine across worker counts, showing
(a) correctness is preserved under arbitrary interleaving, (b) workers
stay ~fully occupied (the available parallel speedup on real hardware),
and (c) the memory price of parallelism: more simultaneously-live
snapshots, still far below one image per worker thanks to COW sharing.
"""

from repro.bench import Table
from repro.core.machine import MachineEngine
from repro.core.parallel import ParallelMachineEngine
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

N = 6


def test_x1_worker_sweep(benchmark, show):
    sequential = MachineEngine().run(nqueens_asm(N))
    expected = sorted(boards_from_result(sequential))

    rows = []
    for workers in (1, 2, 4, 8):
        engine = ParallelMachineEngine(workers=workers, quantum=40)
        result = engine.run(nqueens_asm(N))
        assert sorted(boards_from_result(result)) == expected
        rows.append((workers, result))

    benchmark(lambda: ParallelMachineEngine(workers=4, quantum=40).run(
        nqueens_asm(N)))

    table = Table(
        f"X1: parallel workers, n-queens N={N}",
        ["workers", "occupancy", "peak busy", "peak live snapshots",
         "peak frames"],
    )
    for workers, result in rows:
        extra = result.stats.extra
        table.add(workers, f"{extra['occupancy']:.2f}",
                  extra["peak_busy_workers"], extra["snapshots_peak_live"],
                  extra["frames_peak"])
    show(table)

    # Shape: all workers actually saturate, and the snapshot tree grows
    # with parallelism but nowhere near one image per worker.
    four = dict(rows)[4].stats.extra
    assert four["peak_busy_workers"] == 4
    assert four["occupancy"] > 0.8
    one = dict(rows)[1].stats.extra
    assert four["snapshots_peak_live"] >= one["snapshots_peak_live"]
    image_frames = 1 + 17 + 64 + 8
    assert four["frames_peak"] < 2 * image_frames


def test_x1_isolation_under_interleaving(benchmark):
    """Fine-grained quanta maximise interleaving; sibling writes to the
    same addresses must never bleed across in-flight executions."""
    from repro.core.sysno import SYS_EXIT, SYS_GUESS

    src = f"""
    mov rbx, 0x600000
    mov rax, {SYS_GUESS:#x}
    mov rdi, 5
    syscall
    mov [rbx], rax
    mov rax, {SYS_GUESS:#x}
    mov rdi, 5
    syscall
    mov rcx, [rbx]
    imul rcx, 5
    add rcx, rax
    mov rdi, rcx
    mov rax, {SYS_EXIT}
    syscall
    """

    def run():
        return ParallelMachineEngine(workers=8, quantum=2).run(src)

    result = benchmark(run)
    assert sorted(v[0] for v in result.solution_values) == list(range(25))
