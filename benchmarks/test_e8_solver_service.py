"""E8 — §3.2's multi-path incremental solver service.

"The service waits for client requests consisting of an opaque reference
to a previously solved problem p and an incremental constraint q, and
returns to the client the solution to p∧q together with an opaque
reference to that new problem."

Workload: a tree of client requests branching each solved problem into
two incremental children (depth 3 -> 15 requests over one shared base).
Compared substrates: solver-state snapshots (clone) vs from-scratch.
The service tree is where the multi-path property matters: siblings
extend the same parent with different constraints and must not interfere.
"""

from repro.bench import Table, fmt_ratio, time_once
from repro.sat.gen import incremental_batches, random_ksat
from repro.sat.service import IncrementalSolverService

VARS = 100
TREE_DEPTH = 3


def clause_tree_requests(seed: int = 3):
    """Base problem plus one clause batch per tree node."""
    nodes = 2 ** (TREE_DEPTH + 1) - 1
    base, steps = incremental_batches(VARS, int(VARS * 4.2), 8, nodes, seed=seed)
    return base, steps


def run_tree(incremental: bool):
    base, steps = clause_tree_requests()
    service = IncrementalSolverService(incremental=incremental)
    root = service.solve(base)
    assert root.sat is True
    level = [root.ref]
    batch_index = 0
    sats = []
    for _ in range(TREE_DEPTH):
        next_level = []
        for ref in level:
            for _child in range(2):
                outcome = service.extend(ref, steps[batch_index])
                batch_index += 1
                sats.append(outcome.sat)
                next_level.append(outcome.ref)
        level = next_level
    return service, sats


def test_e8_service_tree(benchmark, show):
    t_inc, (inc, sats_inc) = time_once(lambda: run_tree(True))
    t_scr, (scr, sats_scr) = time_once(lambda: run_tree(False))

    benchmark(lambda: run_tree(True))

    # Correctness: identical verdicts on every request, all SAT (the
    # batches share one planted model).
    assert sats_inc == sats_scr
    assert all(s is True for s in sats_inc)

    table = Table(
        f"E8: solver service, binary request tree depth {TREE_DEPTH} "
        f"({inc.requests} requests)",
        ["substrate", "total conflicts", "time (s)", "speedup"],
    )
    table.add("snapshot (clone + increment)", inc.total_conflicts, t_inc,
              fmt_ratio(t_scr, t_inc))
    table.add("from scratch per request", scr.total_conflicts, t_scr, "1.0x")
    show(table)

    assert inc.total_conflicts < scr.total_conflicts
    assert t_inc < t_scr


def test_e8_sibling_divergence(benchmark):
    """Two clients extend the same reference with opposite constraints;
    both remain solvable and the parent stays reusable — immutability of
    the partial candidate, at the service level."""
    cnf = random_ksat(40, 100, seed=5, planted=True)

    def run():
        service = IncrementalSolverService()
        p = service.solve(cnf)
        left = service.extend(p.ref, [[1]])
        right = service.extend(p.ref, [[-1]])
        again = service.extend(p.ref, [[2, 3]])
        return p, left, right, again

    p, left, right, again = benchmark(run)
    assert left.sat is not None and right.sat is not None
    if left.sat and right.sat:
        assert left.model[1] != right.model[1]
    assert again.sat is True
