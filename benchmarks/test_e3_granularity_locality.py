"""E3 — §5's granularity/locality crossover.

"Clearly, problems with a trivial instruction count per extension step
are best implemented by hand-coding the backtracking logic on a stack.
But our motivating examples [...] touch dozens or even hundreds of 4-KB
pages during a single extension step.  The execution granularity,
complexity of hand-coded logic, and page-level memory locality will each
play a role."

The synthetic kernel sweeps work-per-step and pages-touched-per-step
over three substrates running the *same guest binary*:

* snapshot engine (COW restore, no re-execution);
* replay engine (no snapshots: re-executes the path prefix per step);
* hand-coded native Python (the §5 upper bound, reference only).

The claim's shape: replay's instruction overhead over snapshots grows
linearly with work-per-step, while snapshot COW cost grows only with
pages touched — coarse-grained steps are exactly where snapshots win.
"""

from repro.baselines.handcoded import handcoded_search  # noqa: F401  (docs)
from repro.bench import Table, fmt_ratio, time_once
from repro.core.machine import MachineEngine
from repro.core.replay_machine import ReplayMachineEngine
from repro.workloads.synthetic import synthetic_asm, synthetic_handcoded

DEPTH, FANOUT = 4, 3
PATHS = FANOUT ** DEPTH


def run_snapshot(work, pages):
    return MachineEngine("dfs").run(synthetic_asm(DEPTH, FANOUT, work, pages))


def run_replay(work, pages):
    return ReplayMachineEngine("dfs").run(synthetic_asm(DEPTH, FANOUT, work, pages))


def test_e3_granularity_sweep(benchmark, show):
    """Replay overhead grows with work-per-step; snapshots' does not."""
    rows = []
    for work in (0, 200, 2000):
        t_snap, snap = time_once(lambda w=work: run_snapshot(w, 2))
        t_rep, rep = time_once(lambda w=work: run_replay(w, 2))
        assert len(snap.solutions) == len(rep.solutions) == PATHS
        rows.append((work, t_snap, snap, t_rep, rep))

    benchmark(lambda: run_snapshot(200, 2))

    table = Table(
        f"E3a: granularity sweep (depth={DEPTH}, fanout={FANOUT}, pages=2)",
        ["work/step", "snap insns", "replay insns", "insn ratio",
         "snap time (s)", "replay time (s)", "time ratio"],
    )
    ratios = []
    for work, t_snap, snap, t_rep, rep in rows:
        si = snap.stats.extra["guest_instructions"]
        ri = rep.stats.extra["guest_instructions"]
        ratios.append(ri / si)
        table.add(work, si, ri, fmt_ratio(ri, si), t_snap, t_rep,
                  fmt_ratio(t_rep, t_snap))
    show(table)

    # Shape: the replay-to-snapshot instruction ratio grows monotonically
    # with granularity and the coarse case shows a clear win.
    assert ratios[0] < ratios[-1]
    assert ratios[-1] > 3.0
    # Wall-clock follows at coarse granularity.
    assert rows[-1][3] > rows[-1][1]


def test_e3_locality_sweep(benchmark, show):
    """Snapshot COW cost scales with pages touched per step."""
    rows = []
    for pages in (1, 8, 32):
        t_snap, snap = time_once(lambda p=pages: run_snapshot(100, p))
        rows.append((pages, t_snap, snap))

    benchmark(lambda: run_snapshot(100, 8))

    # Only internal tree nodes run the dirty loop (leaves exit straight
    # away), so normalise by the internal-node count.
    internal_nodes = sum(FANOUT ** level for level in range(DEPTH))
    table = Table(
        f"E3b: locality sweep (depth={DEPTH}, fanout={FANOUT}, work=100)",
        ["pages/step", "frames copied", "copies per dirtying step",
         "time (s)"],
    )
    per_step = []
    for pages, t_snap, snap in rows:
        copied = snap.stats.extra["frames_copied"]
        per_step.append(copied / internal_nodes)
        table.add(pages, copied, copied / internal_nodes, t_snap)
    show(table)

    # COW copies per dirtying step track the dirty-page count.
    assert per_step[0] < per_step[1] < per_step[2]
    assert per_step[2] > 16  # ~pages touched per step


def test_e3_handcoded_reference(benchmark, show):
    """The §5 upper bound, for the record (native Python, no engine)."""
    count = benchmark(lambda: synthetic_handcoded(DEPTH, FANOUT, 2000, 2))
    assert count == PATHS
    t_hand, _ = time_once(lambda: synthetic_handcoded(DEPTH, FANOUT, 2000, 2))
    t_snap, _ = time_once(lambda: run_snapshot(2000, 2))
    table = Table(
        "E3c: hand-coded reference (work=2000, pages=2)",
        ["implementation", "time (s)", "slowdown vs hand-coded"],
    )
    table.add("hand-coded native", t_hand, 1.0)
    table.add("snapshot engine (simulated CPU)", t_snap, t_snap / t_hand)
    show(table)
    # Hand-coding trivial problems wins — the paper says so explicitly.
    assert t_hand < t_snap
