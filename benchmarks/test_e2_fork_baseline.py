"""E2 — §3's naive-fork strawman vs COW snapshots.

"The large performance overheads of this naive approach would likely
dwarf any benefit in most circumstances."  Same engine, same guest; the
only difference is the snapshot substrate: eager full copies (fork
semantics) vs page-table COW.  The gap must grow with address-space
size, because eager forking copies ballast it never touches.
"""

import pytest

from repro.bench import Table, fmt_ratio, time_once
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm

N = 5
BALLASTS = [0, 256, 1024]  # extra heap pages (0 / 1 MiB / 4 MiB)


def run_mode(mode: str, ballast: int):
    engine = MachineEngine("dfs", snapshot_mode=mode)
    result = engine.run(nqueens_asm(N, ballast_pages=ballast))
    assert len(result.solutions) == KNOWN_SOLUTION_COUNTS[N]
    return result


def test_e2_cow_vs_eager_sweep(benchmark, show):
    rows = []
    for ballast in BALLASTS:
        t_cow, cow = time_once(lambda b=ballast: run_mode("cow", b))
        t_eager, eager = time_once(lambda b=ballast: run_mode("eager", b))
        rows.append((ballast, t_cow, cow, t_eager, eager))

    benchmark(lambda: run_mode("cow", BALLASTS[-1]))

    table = Table(
        f"E2: n-queens N={N}, COW snapshots vs naive fork (eager copy)",
        ["ballast pages", "cow time (s)", "cow pages copied",
         "eager time (s)", "eager pages copied", "eager/cow time",
         "peak frames cow", "peak frames eager"],
    )
    for ballast, t_cow, cow, t_eager, eager in rows:
        table.add(
            ballast, t_cow, cow.stats.extra["frames_copied"],
            t_eager, eager.stats.extra["frames_copied"],
            fmt_ratio(t_eager, t_cow),
            cow.stats.extra["frames_peak"], eager.stats.extra["frames_peak"],
        )
    show(table)

    # Shape: eager always copies far more, and its cost grows with the
    # ballast while COW's does not.
    for ballast, t_cow, cow, t_eager, eager in rows:
        assert (
            eager.stats.extra["frames_copied"]
            > 20 * cow.stats.extra["frames_copied"]
        )
    copies_small = rows[0][4].stats.extra["frames_copied"]
    copies_large = rows[-1][4].stats.extra["frames_copied"]
    assert copies_large > 5 * copies_small
    cow_small = rows[0][2].stats.extra["frames_copied"]
    cow_large = rows[-1][2].stats.extra["frames_copied"]
    assert cow_large <= cow_small + BALLASTS[-1] + 16  # touched once at boot
    # Wall-clock: eager loses, and loses worse with ballast.
    assert rows[-1][3] > rows[-1][1]


def test_e2_footprint(benchmark):
    """COW keeps the whole DFS frontier within ~one image of frames."""
    result = benchmark(lambda: run_mode("cow", 64))
    extra = result.stats.extra
    # Peak frames stay near the single-image size (code+data+stack+
    # ballast), despite dozens of live snapshots over the run.
    image_frames = 1 + 17 + 64 + 64 + 8  # text+data+stack+ballast+slack
    assert extra["frames_peak"] < 2 * image_frames
