"""E9 — §5's system-call interposition design point.

"This interposition logic can easily be made sound by supporting only
the minimal required set of conditions (e.g., only open regular files
but not devices) and failing all others."

Claims: (a) file writes inside an extension are contained — siblings and
the parent never observe them; (b) device/socket opens and unknown
syscalls are refused; (c) containment is recorded in the audit log (the
"logged and reversed" brk case included).
"""

from repro.bench import Table
from repro.core.machine import MachineEngine
from repro.core.sysno import SYS_EXIT, SYS_GUESS
from repro.interpose import Containment, SoundMinimalPolicy, Verdict
from repro.libos import HostFS

WRITER_GUEST = f"""
.data
path: .asciz "/scratch/log"
buf:  .zero 2
.text
    mov rax, 2            ; open("/scratch/log", O_RDWR|O_CREAT)
    mov rdi, path
    mov rsi, 66
    syscall
    mov rbx, rax
    mov rax, {SYS_GUESS:#x}
    mov rdi, 3
    syscall
    mov r12, rax
    add rax, 'A'
    mov rcx, buf
    movb [rcx], rax
    mov rax, 1            ; write(fd, buf, 1) -- per-path side effect
    mov rdi, rbx
    mov rsi, buf
    mov rdx, 1
    syscall
    mov rax, 12           ; brk(grow) -- must be contained too
    mov rdi, 0
    syscall
    mov rdi, rax
    add rdi, 4096
    mov rax, 12
    syscall
    mov rdi, r12
    mov rax, {SYS_EXIT}
    syscall
"""

FORBIDDEN_GUEST = f"""
.data
dev: .asciz "/dev/mem"
.text
    mov rax, {SYS_GUESS:#x}
    mov rdi, 2
    syscall
    cmp rax, 0
    jne socketish
    mov rax, 2            ; open("/dev/mem") -> refused with -EACCES
    mov rdi, dev
    mov rsi, 0
    syscall
    mov rdi, rax
    mov rax, {SYS_EXIT}
    syscall
socketish:
    mov rax, 41           ; socket(2): not interposable -> path killed
    syscall
    mov rdi, 0
    mov rax, {SYS_EXIT}
    syscall
"""


def test_e9_file_writes_contained(benchmark, show):
    def run():
        engine = MachineEngine(policy=SoundMinimalPolicy(), hostfs=HostFS())
        return engine, engine.run(WRITER_GUEST)

    engine, result = benchmark(run)
    # Three sibling extensions, each exiting with its own guess value.
    assert sorted(v[0] for v in result.solution_values) == [0, 1, 2]
    audit = engine.libos.audit
    writes = [r for r in audit.records
              if r.syscall == "write" and "scratch" in r.detail]
    assert len(writes) >= 3
    assert all(r.containment is Containment.COW for r in writes)
    brks = [r for r in audit.records if r.syscall == "brk"]
    assert brks and all(r.containment is Containment.LOGGED for r in brks)

    table = Table(
        "E9: interposition audit (sound-minimal policy)",
        ["syscall class", "events", "verdict", "containment"],
    )
    table.add("open (regular file)", audit.count("open"), "allow", "COW file layer")
    table.add("write (file)", len(writes), "allow", "COW file layer")
    table.add("brk", len(brks), "allow", "logged + COW")
    show(table)


def test_e9_refusals(benchmark, show):
    def run():
        engine = MachineEngine(policy=SoundMinimalPolicy(), hostfs=HostFS())
        return engine, engine.run(FORBIDDEN_GUEST)

    engine, result = benchmark(run)
    # Path 0: open /dev/mem returned -EACCES (13) and the guest exited
    # with that errno; path 1: unknown syscall killed by policy.
    eacces = (-13) & 0xFFFFFFFF
    statuses = [v[0] for v in result.solution_values]
    assert statuses == [-13]
    assert result.stats.kills == 1
    denials = engine.libos.audit.denials
    assert any(r.syscall == "open" for r in denials)
    assert any(r.syscall == "syscall" for r in denials)

    table = Table(
        "E9b: refused operations under the sound-minimal policy",
        ["operation", "outcome"],
    )
    table.add("open /dev/mem", "-EACCES to guest")
    table.add("socket(2) [#41]", "extension killed (fail-all-others)")
    show(table)
