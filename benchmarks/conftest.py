"""Shared configuration for the experiment benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module regenerates one experiment from DESIGN.md §4, printing the
rows EXPERIMENTS.md records and asserting the claim's *shape* (who wins,
by roughly what factor) rather than absolute numbers.
"""

import pytest


@pytest.fixture(scope="session")
def show():
    """Print a table even under captured output (teardown prints last)."""

    def _show(table):
        print(table.render())

    return _show
