"""Shared configuration for the experiment benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each module regenerates one experiment from DESIGN.md §4, printing the
rows EXPERIMENTS.md records and asserting the claim's *shape* (who wins,
by roughly what factor) rather than absolute numbers.

Pass ``--obs-trace=PATH`` to record the full observability event stream
(snapshot lifecycle, COW faults, syscalls, search decisions) of every
benchmark into one JSONL file, then summarize it with::

    python -m repro.tools.trace_report PATH
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace",
        action="store",
        default=None,
        metavar="PATH",
        help="record the observability event trace of the whole run "
        "to PATH as JSONL (see repro.obs and repro.tools.trace_report)",
    )


@pytest.fixture(scope="session", autouse=True)
def obs_trace(request):
    """Attach a JSONL sink to the process tracer for the whole session.

    The default-None ``getoption`` keeps this conftest harmless when the
    option was never registered (e.g. a bare ``pytest`` run from the
    repository root, where this is not an initial conftest).
    """
    path = request.config.getoption("--obs-trace", default=None)
    if not path:
        yield None
        return
    from repro.obs.trace import TRACER, JsonlSink

    sink = JsonlSink(path)
    TRACER.attach(sink)
    try:
        yield sink
    finally:
        TRACER.detach(sink)
        sink.close()


@pytest.fixture(scope="session")
def show():
    """Print a table even under captured output (teardown prints last)."""

    def _show(table):
        print(table.render())

    return _show
