"""X7 (extension) — analysis-guided crash-search pruning.

The static file-effect analysis proves most crash points of a
well-barriered workload redundant: an image set reachable at point
``p`` embeds into a neighbour's whenever ``log[p]`` is a data/ns
effect (subset, same bytes) or ``log[p-1]`` is a barrier (retired
dimensions pinned full).  ``run_crashfind(prune=True)`` therefore
visits only the kept points and synthesizes survivors for the pruned
ones from their representatives.

This bench runs every corpus plan both ways on the snapshot engine and
records ``BENCH_crashprune.json`` at the repository root.  The
assertions pin the two claims the docs make:

* **zero cost to fidelity** — identical survivor multisets, identical
  blame, identical verdicts, plan by plan;
* **real work saved** — on every clean plan the pruned search explores
  strictly fewer crash images, with exact expected counts pinned for
  the four clean families (the log is deterministic, so these are not
  hardware-dependent).
"""

import json
from pathlib import Path

from repro.bench import Table
from repro.crashsim import run_crashfind, simulate
from repro.workloads.crashfs import CORPUS

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_crashprune.json"

#: (images_explored, images_total) per clean plan — properties of the
#: deterministic write log, pinned exactly.
EXPECTED_CLEAN = {
    "journaled_append_clean": (9, 14),
    "rename_update_clean": (7, 11),
    "torn_update_clean": (3, 4),
    "block_alloc_clean": (5, 7),
}


def test_x7_crashprune(show):
    table = Table(
        "X7: analysis-guided crash-point pruning (snapshot engine)",
        ["plan", "points", "pruned", "images", "explored", "evals", "fidelity"],
    )
    rows = []
    for name in sorted(CORPUS):
        plan = CORPUS[name]
        plain = run_crashfind(plan, engine="snapshot")
        pruned = run_crashfind(plan, engine="snapshot", prune=True)

        same_paths = (pruned.survivor_multiset()
                      == plain.survivor_multiset())
        same_blame = (
            sorted(tuple(sorted(s.blame)) for s in pruned.survivors)
            == sorted(tuple(sorted(s.blame)) for s in plain.survivors)
        )
        assert same_paths and same_blame, f"{name}: fidelity lost"
        assert pruned.verdict_ok == plain.verdict_ok
        assert plain.verdict_ok, f"{name}: corpus baseline regressed"

        stats = pruned.stats
        assert stats["pruned"], f"{name}: analysis declined to prune"
        assert stats["images_explored"] < stats["images_total"], name
        assert stats["evaluations"] <= plain.stats["evaluations"], name
        if name in EXPECTED_CLEAN:
            assert (stats["images_explored"], stats["images_total"]) \
                == EXPECTED_CLEAN[name], (
                    f"{name}: expected {EXPECTED_CLEAN[name]}, got "
                    f"({stats['images_explored']}, {stats['images_total']})"
                )

        synthesized = sum(1 for s in pruned.survivors if s.synthesized)
        table.add(
            name,
            stats["points_total"],
            stats["points_pruned"],
            stats["images_total"],
            stats["images_explored"],
            f"{plain.stats['evaluations']}->{stats['evaluations']}",
            "exact",
        )
        rows.append({
            "plan": name,
            "expect_bug": plan.expect_bug,
            "crash_points": stats["points_total"],
            "points_pruned": stats["points_pruned"],
            "images_total": stats["images_total"],
            "images_explored": stats["images_explored"],
            "evaluations_unpruned": plain.stats["evaluations"],
            "evaluations_pruned": stats["evaluations"],
            "survivors": len(pruned.survivors),
            "survivors_synthesized": synthesized,
            "log_len": simulate(plan).K,
        })
    show(table)

    total = sum(r["images_total"] for r in rows)
    explored = sum(r["images_explored"] for r in rows)
    record = {
        "engine": "snapshot",
        "plans": rows,
        "images_total": total,
        "images_explored": explored,
        "images_saved_pct": round(100.0 * (total - explored) / total, 1),
        "fidelity": "exact (survivor multisets, blame and verdicts "
                    "identical to the unpruned search on every plan)",
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The corpus-wide headline: pruning saves a meaningful fraction of
    # the image space without touching the result.
    assert explored < total
