"""X6 (extension) — the price of live telemetry.

One measurement into ``BENCH_live.json``: the same find-all n-queens
run with telemetry off, and fully instrumented (heartbeats + status
server + status log).  The design claim is that in-flight visibility is
nearly free: heartbeats are rate-limited registry snapshots (a dict of
a few dozen scalars, shipped over a pipe that is already hot with task
traffic), and the exporters run on their own threads and only read.
The acceptance budget is 5 % wall-clock overhead.

Shared CI hardware makes wall-clock ratios noisy, so each configuration
takes the best of three runs, and the overhead assertion is gated on
having at least 2 usable cores (on one core, the exporter threads and
workers genuinely contend — the number is recorded but not judged).
The telemetry run also re-checks the exactness criterion end to end:
the final status snapshot's metrics must equal the engine registry.
"""

import json
import time
from pathlib import Path

from benchmarks._gates import gates_forced, record_gate, usable_cores
from repro.bench import Table
from repro.core.cluster import ProcessParallelEngine
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

N = 7
WORKERS = 2
TASK_STEP_BUDGET = 8_000
REPS = 3
OVERHEAD_BUDGET = 0.05
#: Forced-gate bound for serial hardware, where exporter threads and
#: workers genuinely contend: telemetry must not double the wall clock.
OVERHEAD_BUDGET_SERIAL = 1.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_live.json"


def _best_of(reps, run):
    best, result, engine = None, None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        result, engine = run()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result, engine


def test_x6_live_telemetry_overhead(show, tmp_path):
    guest = nqueens_asm(N)
    forced = gates_forced() and usable_cores() < 2
    transport = "tcp" if forced else "pipe"

    def run_plain():
        engine = ProcessParallelEngine(
            workers=WORKERS, task_step_budget=TASK_STEP_BUDGET,
            transport=transport,
        )
        return engine.run(guest), engine

    def run_instrumented():
        engine = ProcessParallelEngine(
            workers=WORKERS, task_step_budget=TASK_STEP_BUDGET,
            transport=transport,
            status_port=0,
            status_log=str(tmp_path / "status.jsonl"),
            status_interval=0.25,
            flight_dir=str(tmp_path / "flight"),
        )
        return engine.run(guest), engine

    base_s, base, _ = _best_of(REPS, run_plain)
    expected = sorted(boards_from_result(base))
    assert len(expected) == KNOWN_SOLUTION_COUNTS[N]

    live_s, live, engine = _best_of(REPS, run_instrumented)
    assert sorted(boards_from_result(live)) == expected
    assert live.exhausted

    # Telemetry must not bend the numbers it reports: final snapshot
    # metrics equal the end-of-run registry exactly.
    final = engine.status.snapshot()
    assert final["done"]
    assert final["metrics"] == engine.registry.as_dict()
    assert final["coverage"]["fraction"] == 1.0
    heartbeats = live.stats.extra["heartbeats"]
    assert heartbeats > 0

    cores = usable_cores()
    overhead = live_s / base_s - 1.0 if base_s else 0.0

    table = Table(
        f"X6: live-telemetry overhead, n-queens N={N} find-all",
        ["config", "wall s", "overhead", "heartbeats"],
    )
    table.add("telemetry off", f"{base_s:.3f}", "—", 0)
    table.add(
        f"heartbeats + server + log ({cores} cores)",
        f"{live_s:.3f}", f"{overhead * 100:+.1f}%", heartbeats,
    )
    show(table)

    record = {
        "workload": f"nqueens-{N}-find-all",
        "workers": WORKERS,
        "task_step_budget": TASK_STEP_BUDGET,
        "reps": REPS,
        "cores": cores,
        "baseline_s": round(base_s, 4),
        "telemetry_s": round(live_s, 4),
        "overhead": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "heartbeats": heartbeats,
        "metrics_exact": final["metrics"] == engine.registry.as_dict(),
        "transport": transport,
    }
    gate_ran = cores >= 2 or gates_forced()
    record_gate(
        record, "overhead", gate_ran, forced, transport=transport,
        budget=(OVERHEAD_BUDGET if cores >= 2 else OVERHEAD_BUDGET_SERIAL),
    )
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if cores >= 2:
        assert overhead < OVERHEAD_BUDGET, (
            f"live telemetry costs {overhead:.1%}, over the "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )
    elif gates_forced():
        assert overhead < OVERHEAD_BUDGET_SERIAL, (
            f"forced gate: telemetry over {transport} costs "
            f"{overhead:.1%} on {cores} core(s)"
        )
