"""Benchmark harness: one module per paper figure/claim (see DESIGN.md §4)."""
