"""Hardware-gated bench assertions, forceable for 1-core CI.

Several benches assert hardware-dependent bars (speedup, overhead) that
are only honest with real parallel cores, so on a 1-core container they
historically skipped — silently, leaving CI with no evidence the gate
code even runs.  ``REPRO_BENCH_FORCE_GATES=1`` changes the contract:

* the gated assertion *runs* regardless of core count, against the
  serial-appropriate bound the bench declares (a bounded-slowdown or
  generous-overhead bar instead of the multi-core one);
* the measured leg runs over **loopback TCP workers** — the forced mode
  doubles as an end-to-end exercise of the distributed transport;
* every bench records which gates ran (and whether they were forced)
  inside its BENCH JSON, so a skipped gate is visible in the artifact.
"""

import os


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def gates_forced() -> bool:
    return os.environ.get("REPRO_BENCH_FORCE_GATES") == "1"


def record_gate(record: dict, name: str, ran: bool, forced: bool,
                **info) -> None:
    """Note in the BENCH JSON whether gate *name* actually asserted."""
    record.setdefault("gates", {})[name] = {
        "ran": bool(ran), "forced": bool(forced), **info,
    }
