"""E7 — §3.1's flexible search strategies.

The same guest, unchanged, runs under DFS, BFS and A*; informed
strategies consume the goal-distance hints of the extended guess call.
Claims: (a) strategy choice is pure policy — the solution sets agree;
(b) A* with an admissible heuristic finds minimum-length solutions while
evaluating far fewer candidates than BFS.
"""

import pytest

from repro.bench import Table, fmt_ratio
from repro.core import ReplayEngine
from repro.workloads.coloring import (
    PETERSEN_EDGES,
    PETERSEN_NODES,
    coloring_guest,
    is_proper_coloring,
)
from repro.workloads.puzzle8 import manhattan, puzzle_guest, scramble

SCRAMBLE_STEPS = 14
MAX_MOVES = 16


def solve_puzzle(strategy: str, use_hints: bool):
    start = scramble(SCRAMBLE_STEPS, seed=3)
    engine = ReplayEngine(strategy, max_solutions=1, max_evaluations=500_000)
    result = engine.run(puzzle_guest, start, MAX_MOVES, use_hints)
    return start, result


def test_e7_astar_beats_bfs(benchmark, show):
    start, astar = benchmark(lambda: solve_puzzle("astar", True))
    _, bfs = solve_puzzle("bfs", False)

    assert astar.first is not None and bfs.first is not None
    astar_len = len(astar.first.value) - 1
    bfs_len = len(bfs.first.value) - 1
    optimal = bfs_len  # BFS is optimal in moves
    assert astar_len == optimal, "A* with admissible h must stay optimal"
    assert astar.first.value[-1] == (1, 2, 3, 4, 5, 6, 7, 8, 0)

    table = Table(
        f"E7a: 8-puzzle (scramble {SCRAMBLE_STEPS}, h0={manhattan(start)})",
        ["strategy", "hints", "solution moves", "evaluations",
         "vs A* evaluations"],
    )
    table.add("astar", "manhattan", astar_len, astar.stats.evaluations, "1.0x")
    table.add("bfs", "none", bfs_len, bfs.stats.evaluations,
              fmt_ratio(bfs.stats.evaluations, astar.stats.evaluations))
    show(table)

    assert astar.stats.evaluations * 3 < bfs.stats.evaluations, (
        "A* should expand several times fewer candidates than BFS"
    )


@pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
def test_e7_strategies_same_solution_set(benchmark, strategy, show):
    """Policy/mechanism split: colorings found are identical across
    strategies (Petersen graph, 3 colors, first 30 solutions)."""

    def run():
        engine = ReplayEngine(strategy, max_solutions=30)
        return engine.run(
            coloring_guest, PETERSEN_NODES, PETERSEN_EDGES, 3
        )

    result = benchmark(run)
    assert len(result.solutions) == 30
    for coloring in result.solution_values:
        assert is_proper_coloring(coloring, PETERSEN_EDGES)


def test_e7_sma_bounded_memory(benchmark, show):
    """SM-A* respects a hard frontier bound and still solves."""
    from repro.search import SMAStarStrategy

    def run():
        start = scramble(10, seed=5)
        strategy = SMAStarStrategy(capacity=64)
        engine = ReplayEngine(strategy, max_solutions=1,
                              max_evaluations=200_000)
        return strategy, engine.run(puzzle_guest, start, 14, True)

    strategy, result = benchmark(run)
    assert result.first is not None
    assert strategy.stats.peak_frontier <= 64
    table = Table(
        "E7b: SM-A* under a 64-extension frontier bound",
        ["peak frontier", "dropped", "evaluations", "solved"],
    )
    table.add(strategy.stats.peak_frontier, strategy.stats.dropped,
              result.stats.evaluations, bool(result))
    show(table)
