"""E6 — snapshot take/restore microbenchmark (the §4 Dune claim).

Dune's evaluation "showed that memory protection events and forks can be
implemented via a specialized libOS with an order of magnitude better
performance than corresponding Linux abstractions"; §6 adds that unlike
classic checkpoints, lightweight snapshots are "designed to both take and
restore snapshots with very high frequency".

We measure take+restore against image size for three substrates:

* COW snapshots  — O(1) take/restore, cost deferred to pages dirtied;
* eager fork     — O(image) physical copy at take *and* restore;
* checkpointing  — O(image) serialize at take, O(image) rebuild at
  restore (libckpt style).

Shape: COW flat across image sizes; the others scale linearly; the gap
reaches an order of magnitude well before 16 MiB images.
"""

from repro.baselines import Checkpointer, EagerSnapshotManager
from repro.bench import Table, fmt_ratio, time_once
from repro.mem import AddressSpace, FramePool, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager

BASE = 0x40_0000
SIZES_PAGES = [16, 256, 4096]  # 64 KiB / 1 MiB / 16 MiB
ROUNDS = 10


def make_space(pool, pages):
    space = AddressSpace(pool, name="bench")
    space.map_region(BASE, pages * PAGE_SIZE, Permission.RW, eager=True)
    space.write(BASE, b"seed")
    return space


def cycle_snap(mgr, space):
    """The measured kernel: take + restore + dirty one page, ROUNDS x.

    Image construction happens outside the timed region — this measures
    the snapshot operations themselves, as §6's "take and restore with
    very high frequency" demands.
    """
    for _ in range(ROUNDS):
        snap = mgr.take(space)
        _, restored, _ = mgr.restore(snap)
        restored.write(BASE, b"dirty one page")
        restored.free()
        mgr.discard(snap)


def cycle_ckpt(ck, pool, space):
    for _ in range(ROUNDS):
        blob = ck.checkpoint(space)
        restored = ck.restore(blob, pool)
        restored.write(BASE, b"dirty one page")
        restored.free()


def test_e6_take_restore_scaling(benchmark, show):
    rows = []
    for pages in SIZES_PAGES:
        cow_mgr = SnapshotManager()
        cow_space = make_space(cow_mgr.pool, pages)
        t_cow, _ = time_once(lambda: cycle_snap(cow_mgr, cow_space))
        cow_space.free()

        eager_mgr = EagerSnapshotManager()
        eager_space = make_space(eager_mgr.pool, pages)
        t_eager, _ = time_once(lambda: cycle_snap(eager_mgr, eager_space))
        eager_space.free()

        pool = FramePool()
        ck = Checkpointer()
        ckpt_space = make_space(pool, pages)
        t_ckpt, _ = time_once(lambda: cycle_ckpt(ck, pool, ckpt_space))
        ckpt_space.free()

        rows.append((pages, t_cow, t_eager, t_ckpt))

    bench_mgr = SnapshotManager()
    bench_space = make_space(bench_mgr.pool, SIZES_PAGES[0])
    benchmark(lambda: cycle_snap(bench_mgr, bench_space))

    table = Table(
        f"E6: {ROUNDS}x take+restore+1-page-dirty vs image size",
        ["image (pages)", "cow (s)", "eager fork (s)", "checkpoint (s)",
         "eager/cow", "ckpt/cow"],
    )
    for pages, t_cow, t_eager, t_ckpt in rows:
        table.add(pages, t_cow, t_eager, t_ckpt,
                  fmt_ratio(t_eager, t_cow), fmt_ratio(t_ckpt, t_cow))
    show(table)

    # COW stays roughly flat (allow generous jitter); the others scale.
    assert rows[-1][1] < rows[0][1] * 8
    assert rows[-1][2] > rows[0][2] * 20
    assert rows[-1][3] > rows[0][3] * 20
    # Order-of-magnitude gap at the largest image.
    assert rows[-1][2] > 10 * rows[-1][1]
    assert rows[-1][3] > 10 * rows[-1][1]


def test_e6_cow_work_proportional_to_dirty(benchmark, show):
    """Ablation (DESIGN.md §5): with COW, cost follows the dirty set."""
    pages = 1024

    def run(dirty_pages):
        mgr = SnapshotManager()
        space = make_space(mgr.pool, pages)
        snap = mgr.take(space)
        _, restored, _ = mgr.restore(snap)
        for i in range(dirty_pages):
            restored.write_u64(BASE + i * PAGE_SIZE, i)
        copied = restored.faults.pages_copied
        restored.free()
        mgr.discard(snap)
        space.free()
        return copied

    table = Table(
        "E6b: COW cost vs dirty fraction (1024-page image)",
        ["pages dirtied", "pages copied"],
    )
    for dirty in (1, 64, 512, 1024):
        copied = run(dirty)
        table.add(dirty, copied)
        assert copied == dirty
    show(table)
    benchmark(lambda: run(64))


def test_e6_node_sharing_ablation(benchmark, show):
    """Ablation: persistent page-table node sharing is what makes `take`
    O(1) — count radix nodes copied on first dirty write vs image size."""
    rows = []
    for pages in (64, 1024, 16384):
        mgr = SnapshotManager()
        space = make_space(mgr.pool, pages)
        snap = mgr.take(space)
        _, restored, _ = mgr.restore(snap)
        before = restored.table.nodes_copied
        restored.write(BASE, b"x")
        nodes = restored.table.nodes_copied - before
        rows.append((pages, nodes))
        restored.free()
        mgr.discard(snap)
        space.free()

    table = Table(
        "E6c: radix nodes copied on first write after restore",
        ["image (pages)", "nodes copied (path length)"],
    )
    for pages, nodes in rows:
        table.add(pages, nodes)
    show(table)
    # Path-copy only: bounded by tree depth (4), regardless of size.
    assert all(nodes <= 4 for _pages, nodes in rows)
    mgr = SnapshotManager()
    space = make_space(mgr.pool, 64)
    benchmark(lambda: cycle_snap(mgr, space))
