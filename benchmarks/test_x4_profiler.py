"""X4 (extension) — profiler overhead and merged-trace attribution.

The search-tree profiler is only usable if (a) tracing a run does not
distort what it measures and (b) the merged multi-worker trace accounts
for every retired instruction.  This bench runs find-all 8-queens on the
process engine untraced and traced, profiles the merged trace, and
records ``BENCH_profile.json`` at the repository root with the overhead
percentage and the attribution cross-check (folded flamegraph root
total == the run's explore-instruction counter, asserted exact).

Like X3's speedup bar, the < 15% overhead bar is hardware-dependent: on
a multi-core box the coordinator's segment merge and JSONL encode
overlap with worker compute, but on a single core every merged event is
pure serial overhead on top of a guest whose ~14-instruction extension
runs emit ~4 events each — the densest per-instruction event rate any
workload here produces.  So the strict assertion is gated on >= 2
usable cores; a generous absolute bound and the exactness assertions
hold on any hardware, and the recorded JSON always carries the honest
measurement plus the core count it was measured on.

Wall-clock overhead on a loaded CI box is noisy, so the traced run gets
one retry before the assertion fires.
"""

import json
import time
from pathlib import Path

from benchmarks._gates import gates_forced, record_gate, usable_cores
from repro.bench import Table
from repro.core.cluster import ProcessParallelEngine
from repro.obs.profile import build_profile, folded_stacks
from repro.obs.trace import TRACER
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

N = 8
WORKERS = 4
TASK_STEP_BUDGET = 8_000
MAX_OVERHEAD_PCT = 15.0       # parallel hardware (>= 2 cores)
MAX_OVERHEAD_PCT_SERIAL = 150.0  # any hardware: tracing never dominates
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_profile.json"


def _run(guest, trace_path=None, transport="pipe"):
    engine = ProcessParallelEngine(
        workers=WORKERS, task_step_budget=TASK_STEP_BUDGET,
        transport=transport,
    )
    t0 = time.perf_counter()
    if trace_path is None:
        result = engine.run(guest)
    else:
        with TRACER.to_file(str(trace_path)):
            result = engine.run(guest)
    return result, time.perf_counter() - t0


def test_x4_profiler_overhead(show, tmp_path):
    guest = nqueens_asm(N)
    trace_path = tmp_path / "x4_trace.jsonl"

    cores = usable_cores()
    budget = MAX_OVERHEAD_PCT if cores >= 2 else MAX_OVERHEAD_PCT_SERIAL
    # Forced gates: measure over loopback TCP workers so the 1-core CI
    # leg exercises the distributed transport under trace pressure.
    forced = gates_forced() and cores < 2
    transport = "tcp" if forced else "pipe"

    untraced, untraced_s = _run(guest, transport=transport)
    assert len(untraced.solutions) == KNOWN_SOLUTION_COUNTS[N]

    traced, traced_s = _run(guest, trace_path, transport=transport)
    overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s
    if overhead_pct >= budget:
        # One retry: a single scheduler hiccup on a shared box should
        # not fail the build.  A real regression fails both times.
        traced, traced_s = _run(guest, trace_path, transport=transport)
        overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s
    assert sorted(boards_from_result(traced)) == \
        sorted(boards_from_result(untraced))

    # Profile the merged trace and cross-check attribution.
    t0 = time.perf_counter()
    events = [
        json.loads(line)
        for line in trace_path.read_text().splitlines() if line
    ]
    profile = build_profile(events)
    profile_s = time.perf_counter() - t0
    extra = traced.stats.extra

    assert extra["trace_dropped"] == 0
    assert extra["trace_events_merged"] > 0
    assert set(profile.workers) == set(range(WORKERS))

    folded = folded_stacks(profile, metric="steps")
    folded_total = sum(int(line.rsplit(" ", 1)[1]) for line in folded)
    # The acceptance bar: the flamegraph's root total IS the run's
    # retired-instruction counter, exactly.
    assert folded_total == profile.total_steps == \
        extra["guest_instructions"]
    assert profile.total_replay_steps == extra["replay_steps"]

    table = Table(
        f"X4: profiler overhead, n-queens N={N}, {WORKERS} workers",
        ["config", "wall s", "overhead", "events", "insns attributed"],
    )
    table.add("untraced", f"{untraced_s:.3f}", "-", 0, "-")
    table.add("traced+merged", f"{traced_s:.3f}", f"{overhead_pct:+.1f}%",
              len(events), folded_total)
    table.add("profile build", f"{profile_s:.3f}", "-", len(events),
              folded_total)
    show(table)

    record = {
        "workload": f"nqueens-{N}-find-all",
        "workers": WORKERS,
        "cores_available": cores,
        "task_step_budget": TASK_STEP_BUDGET,
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "overhead_budget_applied": budget,
        "profile_build_s": round(profile_s, 4),
        "trace_events": len(events),
        "trace_events_merged": extra["trace_events_merged"],
        "trace_dropped": extra["trace_dropped"],
        "attributed_steps": folded_total,
        "explore_steps": extra["guest_instructions"],
        "replay_steps": extra["replay_steps"],
        "replay_overhead": round(profile.replay_overhead(), 4),
        "tree_nodes": len(profile.nodes),
        "solutions": len(traced.solutions),
        "transport": transport,
    }
    record_gate(
        record, "overhead", True, forced,
        budget_pct=budget, strict=(cores >= 2), transport=transport,
    )
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The < 15% claim needs the merge to overlap worker compute; on a
    # single core only the absolute "never dominates" bound applies.
    assert overhead_pct < budget, (
        f"tracing added {overhead_pct:.1f}% on {cores} core(s) "
        f"(budget {budget}%)"
    )
