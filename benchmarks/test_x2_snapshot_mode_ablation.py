"""X2 (extension) — snapshot-substrate ablation (DESIGN.md §5).

Three ways to keep a snapshot immutable against future writes, measured
on the same engine and guests:

* ``cow``          — fault-per-page, pay only for pages actually rewritten;
* ``dirty-eager``  — pre-copy the dirty working set at take time
                     (predicts the next extension rewrites it);
* ``eager``        — copy the whole image (the naive-fork strawman).

Finding (and the reason the paper's design faults per page): the eager
dirty-set prediction overcopies on *search* workloads — extension steps
that fail (or exit) before rewriting the working set still pay the
pre-copy.  The loop kernel (which rewrites its whole set at every
internal step, but whose leaves write nothing) overcopies ~3x; n-queens
with its early-failing extensions ~4x; full-image eager 80-400x.  COW's
lazy faults are the only substrate that never copies a page the path
does not write.
"""

from repro.bench import Table, fmt_ratio, time_once
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import KNOWN_SOLUTION_COUNTS, nqueens_asm
from repro.workloads.synthetic import synthetic_asm

MODES = ("cow", "dirty-eager", "eager")


def run_mode(mode, guest):
    engine = MachineEngine(snapshot_mode=mode)
    result = engine.run(guest)
    return result


def test_x2_mode_ablation(benchmark, show):
    loopy = synthetic_asm(4, 3, 30, 4)  # rewrites the same 4 pages/step
    queens = nqueens_asm(5)

    table = Table(
        "X2: pages copied by snapshot substrate",
        ["workload", "cow", "dirty-eager", "eager", "eager/cow"],
    )
    copies = {}
    for name, guest, expected in (
        ("synthetic loop", loopy, 81),
        ("n-queens N=5", queens, KNOWN_SOLUTION_COUNTS[5]),
    ):
        per_mode = {}
        for mode in MODES:
            result = run_mode(mode, guest)
            assert len(result.solutions) == expected, (name, mode)
            per_mode[mode] = result.stats.extra["frames_copied"]
        copies[name] = per_mode
        table.add(name, per_mode["cow"], per_mode["dirty-eager"],
                  per_mode["eager"],
                  fmt_ratio(per_mode["eager"], per_mode["cow"]))
    show(table)

    benchmark(lambda: run_mode("cow", queens))

    for name, per_mode in copies.items():
        # Full-image eager is worst everywhere by a wide margin.
        assert per_mode["eager"] > 5 * per_mode["cow"]
        assert per_mode["eager"] > 5 * per_mode["dirty-eager"]
        # The dirty-set prediction overcopies, but stays within an
        # order of magnitude of COW (it copies working sets, not images).
        assert per_mode["cow"] < per_mode["dirty-eager"] < 10 * per_mode["cow"]
    # Early-failing search overcopies at least as badly as the loop.
    loop = copies["synthetic loop"]
    nq = copies["n-queens N=5"]
    assert (nq["dirty-eager"] / nq["cow"]) > (
        loop["dirty-eager"] / loop["cow"]
    ) * 0.9


def test_x2_cost_moves_to_restore(benchmark):
    """Mechanism check: under dirty-eager nearly every copy happens at
    restore time (the eager pre-fault), not as a later write fault."""
    engine = MachineEngine(snapshot_mode="dirty-eager")

    def run():
        return engine.run(synthetic_asm(3, 3, 10, 4))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    total = result.stats.extra["frames_copied"]
    eager = engine.manager.eager_copies
    assert eager >= 0.9 * total


def test_x2_wall_clock(benchmark, show):
    guest = nqueens_asm(5, ballast_pages=256)
    rows = []
    for mode in MODES:
        elapsed, result = time_once(lambda m=mode: run_mode(m, guest))
        rows.append((mode, elapsed, result.stats.extra["frames_copied"]))
    benchmark(lambda: run_mode("cow", guest))

    table = Table(
        "X2b: wall clock with 1 MiB ballast (n-queens N=5)",
        ["mode", "time (s)", "pages copied"],
    )
    for mode, elapsed, copied in rows:
        table.add(mode, elapsed, copied)
    show(table)

    by_mode = {mode: elapsed for mode, elapsed, _ in rows}
    assert by_mode["cow"] < by_mode["eager"]
    assert by_mode["dirty-eager"] < by_mode["eager"]
