"""F1 — Figure 1: n-queens against the three-syscall API.

Reproduces the executable claim of Figure 1: an n-queens program written
as a single path to the solution, with no undo logic, enumerates every
solution under system-level backtracking; "the implementation appears to
execute in linear time" from the guest's perspective (guest path length
is linear in N even though the search is exponential).
"""

import pytest

from repro.bench import Table
from repro.core.machine import MachineEngine
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    is_valid_board,
    nqueens_asm,
)


@pytest.mark.parametrize("n", [4, 5, 6])
def test_f1_nqueens_enumeration(benchmark, n, show):
    """All solutions found, all valid, no duplicate boards."""

    def run():
        return MachineEngine("dfs").run(nqueens_asm(n))

    result = benchmark(run)
    boards = boards_from_result(result)
    assert len(boards) == KNOWN_SOLUTION_COUNTS[n]
    assert len(set(boards)) == len(boards)
    assert all(is_valid_board(b) for b in boards)

    table = Table(
        f"F1: n-queens via sys_guess (N={n})",
        ["N", "solutions", "candidates", "evaluations", "guest insns",
         "snapshots", "peak live snaps"],
    )
    extra = result.stats.extra
    table.add(
        n, len(boards), result.stats.candidates, result.stats.evaluations,
        extra["guest_instructions"], extra["snapshots_taken"],
        extra["snapshots_peak_live"],
    )
    show(table)


def test_f1_guest_path_is_linear(benchmark):
    """The single-path illusion: every solution path has exactly N guesses
    (linear in N), independent of the exponential search behind it."""

    def run():
        return MachineEngine("dfs").run(nqueens_asm(6))

    result = benchmark(run)
    assert all(s.depth == 6 for s in result.solutions)


def test_f1_fig1_print_then_fail(benchmark):
    """The literal Figure 1 pattern: printboard then sys_guess_fail
    'to print all answers'."""

    def run():
        engine = MachineEngine("dfs")
        engine.run(nqueens_asm(5, fig1_style=True))
        return engine

    engine = benchmark(run)
    boards = [t.strip() for t in engine.failed_output()]
    assert len(boards) == KNOWN_SOLUTION_COUNTS[5]
    assert all(is_valid_board(b) for b in boards)
