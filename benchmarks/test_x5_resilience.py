"""X5 (extension) — the price of crash tolerance.

Two measurements into ``BENCH_resilience.json``:

1. **Journal overhead** — the same find-all n-queens run with no
   journal, and journaled under each fsync policy.  The design claim is
   that durability rides on the paper's replay lever almost for free:
   journal records are decision prefixes (a few hundred bytes), so with
   ``fsync=batch`` (the default) the overhead must stay under 10 %.
   ``always`` is recorded honestly — it pays one fsync per record and
   is expected to cost real time on spinning storage.
2. **Recovery time vs frontier size** — :func:`repro.core.journal.recover`
   over synthetic journals with pending frontiers of growing size.  The
   scan is one pass with a CRC per line; recovery of even a 5000-task
   frontier must be far below the cost of re-running anything.

Wall-clock ratios are noisy on shared CI hardware, so each engine
configuration takes the best of three runs before the ratio is formed.
"""

import json
import time
from pathlib import Path

from repro.bench import Table
from repro.core.cluster import ProcessParallelEngine
from repro.core.journal import JournalWriter, recover
from repro.search.shard import PrefixTask
from repro.workloads.nqueens import (
    KNOWN_SOLUTION_COUNTS,
    boards_from_result,
    nqueens_asm,
)

N = 7
WORKERS = 2
TASK_STEP_BUDGET = 8_000
REPS = 3
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_resilience.json"


def _best_of(reps, run):
    best, result = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_x5_journal_overhead_and_recovery(show, tmp_path):
    guest = nqueens_asm(N)

    def run(journal=None, fsync="batch"):
        engine = ProcessParallelEngine(
            workers=WORKERS, task_step_budget=TASK_STEP_BUDGET,
            journal=journal, fsync=fsync,
        )
        return engine.run(guest)

    base_s, base = _best_of(REPS, run)
    expected = sorted(boards_from_result(base))
    assert len(expected) == KNOWN_SOLUTION_COUNTS[N]

    rows = {}
    for fsync in ("off", "batch", "always"):
        path = str(tmp_path / f"{fsync}.journal")
        wall, result = _best_of(
            REPS, lambda p=path, f=fsync: run(journal=p, fsync=f)
        )
        assert sorted(boards_from_result(result)) == expected
        rows[fsync] = {
            "wall_s": round(wall, 4),
            "overhead": round(wall / base_s - 1.0, 4),
            "records": result.stats.extra["journal_records"],
            "fsyncs": result.stats.extra["journal_fsyncs"],
        }

    table = Table(
        f"X5: journal overhead, n-queens N={N} find-all",
        ["config", "wall s", "overhead", "records", "fsyncs"],
    )
    table.add("no journal", f"{base_s:.3f}", "—", 0, 0)
    for fsync, row in rows.items():
        table.add(f"fsync={fsync}", f"{row['wall_s']:.3f}",
                  f"{row['overhead'] * 100:+.1f}%", row["records"],
                  row["fsyncs"])
    show(table)

    # -- recovery time vs frontier size --------------------------------
    recovery = []
    for frontier in (100, 1000, 5000):
        path = str(tmp_path / f"recover{frontier}.journal")
        with JournalWriter(path, fsync="off") as journal:
            journal.append(
                "run_begin", version=1, program="b" * 64,
                root=PrefixTask().to_record(),
            )
            for i in range(frontier):
                task = PrefixTask(
                    prefix=(i % 7, i // 7 % 7, i // 49),
                    fanouts=(7, 7, 7),
                )
                journal.append("dispatch", task=task.to_record(), worker=0)
        t0 = time.perf_counter()
        recovered = recover(path)
        elapsed = time.perf_counter() - t0
        # The root is pending too; the distinct dispatched prefixes are
        # fewer than `frontier` because the synthetic keys wrap.
        assert len(recovered.pending) == len(
            {(i % 7, i // 7 % 7, i // 49) for i in range(frontier)}
        ) + 1
        recovery.append({
            "frontier": frontier,
            "records": recovered.records,
            "recover_ms": round(elapsed * 1e3, 3),
        })

    rtable = Table(
        "X5: journal recovery scan",
        ["journaled tasks", "records", "recover ms"],
    )
    for row in recovery:
        rtable.add(row["frontier"], row["records"],
                   f"{row['recover_ms']:.2f}")
    show(rtable)

    record = {
        "workload": f"nqueens-{N}-find-all",
        "workers": WORKERS,
        "task_step_budget": TASK_STEP_BUDGET,
        "reps": REPS,
        "baseline_s": round(base_s, 4),
        "journal": rows,
        "recovery": recovery,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The headline claim: batch-fsync durability costs < 10 %.
    assert rows["batch"]["overhead"] < 0.10, (
        f"journal overhead {rows['batch']['overhead']:.1%} with "
        f"fsync=batch exceeds the 10% budget"
    )
    # Recovery is a linear scan: even the largest frontier recovers in
    # well under a second on any hardware this runs on.
    assert recovery[-1]["recover_ms"] < 1000.0
