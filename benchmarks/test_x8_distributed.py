"""X8 (extension) — the distributed transport's vital signs.

Three measurements into ``BENCH_distributed.json`` at the repository
root, all over loopback TCP:

* **steal latency** — round-trip of a worker's steal announcement to a
  granted work batch, measured at the transport layer (median and p90
  over many round trips).  This is the idle-worker refill cost the
  work-stealing scheduler pays instead of the old push model's queue
  imbalance.
* **reconnect time** — how long a worker that lost its socket takes to
  be heard again (backoff reconnect + rewelcome + resend).
* **scaling** — find-all n-queens over TCP with 1 vs 2 workers.  On a
  1-core container the two-worker leg cannot win, so the strict gate
  needs >= 4 cores; ``REPRO_BENCH_FORCE_GATES=1`` asserts the serial
  bounded-slowdown bar instead of skipping (see ``_gates``).

The latency/reconnect gates are hardware-independent (generous loopback
bounds) and always run.
"""

import json
import statistics
import time
from pathlib import Path

from benchmarks._gates import gates_forced, record_gate, usable_cores
from repro.bench import Table
from repro.core.cluster import ProcessParallelEngine
from repro.core.machine import MachineEngine
from repro.core.transport import TcpTransport, TcpWorkerConnection
from repro.workloads.nqueens import boards_from_result, nqueens_asm

N = 6
TASK_STEP_BUDGET = 3_000
STEAL_ROUNDS = 40
MAX_STEAL_MEDIAN_S = 0.25   # loopback round trip, generous for CI
MAX_RECONNECT_S = 5.0       # first backoff retry is near-immediate
SERIAL_SLOWDOWN_CAP = 8.0   # forced gate: 2 workers on 1 core
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_distributed.json"


def _poll_for_msg(transport, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for ev in transport.poll(0.2):
            if ev.kind == "msg":
                return ev
    raise AssertionError("transport delivered no message in time")


def _measure_steal_and_reconnect():
    transport = TcpTransport(host="127.0.0.1", port=0)
    transport.start(program="X8", config={})
    rtts = []
    try:
        conn = TcpWorkerConnection(transport.address)
        try:
            events = transport.poll(2.0)
            ep = next(ev.endpoint for ev in events if ev.kind == "join")
            for _ in range(STEAL_ROUNDS):
                t0 = time.perf_counter()
                conn.send(("steal", conn.wid, 1))
                _poll_for_msg(transport)
                ep.send(("work", [], None, []))
                assert conn.poll(5.0)
                conn.recv()
                rtts.append(time.perf_counter() - t0)
            # Reconnect: sever the socket under the worker and time how
            # long until the coordinator hears from it again.
            conn._sock.close()
            t0 = time.perf_counter()
            conn.send(("steal", conn.wid, 1))
            _poll_for_msg(transport)
            reconnect_s = time.perf_counter() - t0
            assert transport.stats["reconnects"] >= 1
        finally:
            conn.close()
    finally:
        transport.close()
    return rtts, reconnect_s


def _run_tcp(guest, workers):
    engine = ProcessParallelEngine(
        workers=workers, task_step_budget=TASK_STEP_BUDGET,
        transport="tcp",
    )
    t0 = time.perf_counter()
    result = engine.run(guest)
    return result, time.perf_counter() - t0


def test_x8_distributed_vitals(show):
    guest = nqueens_asm(N)
    cores = usable_cores()
    forced = gates_forced() and cores < 4

    rtts, reconnect_s = _measure_steal_and_reconnect()
    steal_median = statistics.median(rtts)
    steal_p90 = sorted(rtts)[int(len(rtts) * 0.9)]

    expected = sorted(boards_from_result(MachineEngine().run(guest)))
    one, one_s = _run_tcp(guest, workers=1)
    two, two_s = _run_tcp(guest, workers=2)
    assert sorted(boards_from_result(one)) == expected
    assert sorted(boards_from_result(two)) == expected
    speedup = one_s / two_s if two_s else float("inf")

    table = Table(
        f"X8: distributed vitals, loopback TCP ({cores} cores)",
        ["metric", "value"],
    )
    table.add("steal RTT median", f"{steal_median * 1e3:.2f} ms")
    table.add("steal RTT p90", f"{steal_p90 * 1e3:.2f} ms")
    table.add("reconnect", f"{reconnect_s * 1e3:.1f} ms")
    table.add("1 worker wall", f"{one_s:.3f} s")
    table.add("2 workers wall", f"{two_s:.3f} s ({speedup:.2f}x)")
    show(table)

    record = {
        "workload": f"nqueens-{N}-find-all",
        "cores_available": cores,
        "task_step_budget": TASK_STEP_BUDGET,
        "steal_rounds": STEAL_ROUNDS,
        "steal_rtt_median_s": round(steal_median, 6),
        "steal_rtt_p90_s": round(steal_p90, 6),
        "reconnect_s": round(reconnect_s, 4),
        "one_worker_s": round(one_s, 4),
        "two_workers_s": round(two_s, 4),
        "speedup_2w": round(speedup, 3),
        "steals_2w": two.stats.extra["steals"],
    }
    record_gate(record, "steal_latency", True, False,
                bound_s=MAX_STEAL_MEDIAN_S)
    record_gate(record, "reconnect", True, False, bound_s=MAX_RECONNECT_S)
    scaling_ran = cores >= 4 or gates_forced()
    record_gate(
        record, "scaling", scaling_ran, forced,
        bound=(1.0 if cores >= 4 else f"<= {SERIAL_SLOWDOWN_CAP}x slowdown"),
    )
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert steal_median < MAX_STEAL_MEDIAN_S, (
        f"steal round trip {steal_median * 1e3:.1f} ms over loopback"
    )
    assert reconnect_s < MAX_RECONNECT_S
    assert two.stats.extra["steals"] > 0
    if cores >= 4:
        assert speedup >= 1.0, (
            f"2 TCP workers slower than 1 on {cores} cores "
            f"({speedup:.2f}x)"
        )
    elif gates_forced():
        assert two_s <= one_s * SERIAL_SLOWDOWN_CAP, (
            f"forced gate: 2-worker leg {two_s:.2f}s vs {one_s:.2f}s"
        )
