"""E10 — §3.1 immutability / §5 "immutable data structures".

"Lightweight snapshots provide a very coarse, yet very simple to use,
immutable type: the entire address space of the program."

Claims under test, at scale: (a) a parent snapshot's entire address
space is bit-identical before and after any number of child extensions
run; (b) sibling extensions never observe each other's writes; (c) the
snapshot tree shares untouched pages, so N live snapshots cost far less
than N images.
"""

import hashlib

from repro.bench import Table
from repro.mem import AddressSpace, PAGE_SIZE, Permission
from repro.snapshot import SnapshotManager

BASE = 0x40_0000
IMAGE_PAGES = 128


def image_hash(space) -> str:
    digest = hashlib.sha256()
    for addr, page in space.iter_pages():
        digest.update(addr.to_bytes(8, "little"))
        digest.update(page)
    return digest.hexdigest()


def build_parent(mgr):
    space = AddressSpace(mgr.pool, name="root")
    space.map_region(BASE, IMAGE_PAGES * PAGE_SIZE, Permission.RW)
    for i in range(IMAGE_PAGES):
        space.write_u64(BASE + i * PAGE_SIZE, 0xBA5E0000 + i)
    return space


def test_e10_address_space_as_immutable_value(benchmark, show):
    def run():
        mgr = SnapshotManager()
        space = build_parent(mgr)
        snap = mgr.take(space)
        before = image_hash(snap.space)
        children = []
        for k in range(8):
            _, child, _ = mgr.restore(snap)
            # Each child rewrites a sliding window of pages.
            for i in range(16):
                child.write_u64(BASE + ((k * 16 + i) % IMAGE_PAGES) * PAGE_SIZE,
                                0xC0FFEE00 + k)
            children.append(child)
        after = image_hash(snap.space)
        return mgr, snap, children, before, after

    mgr, snap, children, before, after = benchmark(run)
    assert before == after, "snapshot image must be bit-identical"

    # Sibling isolation: each child sees only its own tag.
    for k, child in enumerate(children):
        assert child.read_u64(BASE + (k * 16 % IMAGE_PAGES) * PAGE_SIZE) \
            == 0xC0FFEE00 + k

    # Sharing: 9 logical images (snapshot + 8 children) cost far less
    # than 9 physical ones.
    frames = mgr.pool.live_frames
    naive = 9 * IMAGE_PAGES
    table = Table(
        "E10: 8 divergent children over one 128-page snapshot",
        ["logical images", "physical frames", "naive frames", "sharing"],
    )
    table.add(9, frames, naive, f"{naive / frames:.1f}x")
    show(table)
    assert frames < naive / 2


def test_e10_deep_snapshot_chain(benchmark):
    """A deep take->dirty->take chain keeps every ancestor intact (the
    space-efficient parent-delta encoding of §3.1)."""

    def run():
        mgr = SnapshotManager()
        space = build_parent(mgr)
        hashes = []
        snaps = []
        for level in range(12):
            snap = mgr.take(space)
            snaps.append(snap)
            hashes.append(image_hash(snap.space))
            space.write_u64(BASE + (level % IMAGE_PAGES) * PAGE_SIZE, level)
        return mgr, snaps, hashes

    mgr, snaps, hashes = benchmark(run)
    for snap, expected in zip(snaps, hashes):
        assert image_hash(snap.space) == expected
    # Delta encoding: 12 snapshots of a 128-page image, each differing by
    # one page, must cost ~image + deltas, not 12 images.
    assert mgr.pool.live_frames < 2 * IMAGE_PAGES
